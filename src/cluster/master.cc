#include "src/cluster/master.h"

#include <algorithm>

#include "src/cluster/kv_wire.h"
#include "src/cluster/stats_wire.h"
#include "src/common/logging.h"
#include "src/net/rpc_client.h"
#include "src/net/wire.h"

namespace tebis {
namespace {

constexpr char kElectionPath[] = "/master-election";
constexpr char kRegionMapPath[] = "/region_map";
// Recovery-intent journal: one znode per in-flight reconfiguration.
constexpr char kIntentsPath[] = "/recovery";
// Unilateral-detach records published by primaries (health policy, §3.5).
constexpr char kDetachedPath[] = "/detached";

std::string IntentPath(uint32_t region_id) {
  return std::string(kIntentsPath) + "/r" + std::to_string(region_id);
}

void EnsurePath(Coordinator* coordinator, const char* path) {
  if (!coordinator->Exists(path)) {
    (void)coordinator->Create(Coordinator::kNoSession, path, "", {});
  }
}

}  // namespace

Master::Master(Coordinator* coordinator, std::string name,
               std::map<std::string, RegionServer*> directory)
    : coordinator_(coordinator), name_(std::move(name)), directory_(std::move(directory)) {}

bool Master::IsLeader() const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return leader_ && !failed_;
}

std::shared_ptr<const RegionMap> Master::current_map() const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return map_;
}

void Master::set_step_hook(StepHook hook) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  step_hook_ = std::move(hook);
}

bool Master::Step(const std::string& point) {
  if (!step_hook_) {
    return true;
  }
  return step_hook_(point);
}

Status Master::Campaign() {
  session_ = coordinator_->CreateSession();
  if (!coordinator_->Exists(kElectionPath)) {
    (void)coordinator_->Create(Coordinator::kNoSession, kElectionPath, "", {});
  }
  TEBIS_RETURN_IF_ERROR(coordinator_->Create(session_, std::string(kElectionPath) + "/m-",
                                             name_,
                                             {.ephemeral = true, .sequential = true},
                                             &election_node_));
  // Leader check: am I the lowest sequence? Otherwise watch my predecessor.
  auto check = [this]() {
    auto children = coordinator_->List(kElectionPath);
    if (!children.ok() || children->empty()) {
      return;
    }
    const std::string mine = election_node_.substr(strlen(kElectionPath) + 1);
    std::sort(children->begin(), children->end());
    if (children->front() == mine) {
      OnBecameLeader();
      return;
    }
    // Watch the candidate immediately before us.
    auto it = std::lower_bound(children->begin(), children->end(), mine);
    const std::string predecessor = *(it - 1);
    coordinator_->Exists(std::string(kElectionPath) + "/" + predecessor,
                         [this](const WatchEvent& event) {
                           if (event.type == WatchEventType::kDeleted) {
                             RecheckLeadership();
                           }
                         });
  };
  recheck_ = check;
  check();
  return Status::Ok();
}

void Master::RecheckLeadership() {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (failed_) {
    return;
  }
  if (recheck_) {
    recheck_();
  }
}

void Master::OnBecameLeader() {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (leader_ || failed_) {
    return;
  }
  leader_ = true;
  TEBIS_LOG(kInfo) << "master " << name_ << " became leader";
  EnsurePath(coordinator_, kIntentsPath);
  EnsurePath(coordinator_, kDetachedPath);
  // Recover the map from the coordinator if a previous leader installed one,
  // then reconcile: first roll forward any reconfiguration the old leader
  // journaled but did not finish, then treat servers that are in the map but
  // no longer members as failed, then replace unilaterally detached replicas.
  auto stored = coordinator_->Get(kRegionMapPath);
  if (stored.ok()) {
    auto map = RegionMap::Deserialize(*stored);
    if (map.ok()) {
      map_ = std::make_shared<const RegionMap>(*map);
    }
  }
  ArmServerWatch();
  ArmDetachWatch();
  if (map_ != nullptr) {
    ResumeRecoveryIntents();
    HandleMembershipChange();
    ReconcileDetachRecords();
  }
}

void Master::ArmServerWatch() {
  (void)coordinator_->List("/servers", [this](const WatchEvent&) {
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    if (!leader_ || failed_) {
      return;
    }
    ArmServerWatch();  // one-shot watches must be re-armed first
    HandleMembershipChange();
  });
}

void Master::ArmDetachWatch() {
  (void)coordinator_->List(kDetachedPath, [this](const WatchEvent&) {
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    if (!leader_ || failed_) {
      return;
    }
    ArmDetachWatch();
    ReconcileDetachRecords();
  });
}

bool Master::ServerAlive(const std::string& name) const {
  return coordinator_->Exists("/servers/" + name);
}

void Master::HandleMembershipChange() {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (map_ == nullptr) {
    return;
  }
  // Find servers referenced by the map that are gone.
  std::vector<std::string> failed;
  for (const auto& region : map_->regions()) {
    if (!ServerAlive(region.primary)) {
      failed.push_back(region.primary);
    }
    for (const auto& backup : region.backups) {
      if (!ServerAlive(backup)) {
        failed.push_back(backup);
      }
    }
  }
  std::sort(failed.begin(), failed.end());
  failed.erase(std::unique(failed.begin(), failed.end()), failed.end());
  for (const auto& server : failed) {
    Status s = HandleServerFailure(server);
    if (!s.ok()) {
      TEBIS_LOG(kError) << "failure handling for " << server << ": " << s.ToString();
    }
  }
}

Status Master::HandleServerFailure(const std::string& failed) {
  TEBIS_LOG(kInfo) << "master " << name_ << " handling failure of " << failed;
  RegionMap updated = *map_;  // copy, then bump + publish
  std::vector<uint32_t> region_ids;
  for (const auto& region : updated.regions()) {
    region_ids.push_back(region.region_id);
  }
  // Primary failures first: promotion restores availability (§3.5). The
  // promotion leaves `failed` in the region's backup list so the second pass
  // replaces that replica like any other lost backup.
  std::vector<uint32_t> journaled;
  for (uint32_t id : region_ids) {
    if (updated.FindById(id)->primary == failed) {
      TEBIS_RETURN_IF_ERROR(HandlePrimaryFailure(&updated, id, failed));
      journaled.push_back(id);
    }
  }
  for (uint32_t id : region_ids) {
    const RegionInfo* region = updated.FindById(id);
    if (std::find(region->backups.begin(), region->backups.end(), failed) !=
        region->backups.end()) {
      TEBIS_RETURN_IF_ERROR(HandleBackupFailure(&updated, id, failed));
    }
  }
  updated.BumpVersion();
  TEBIS_RETURN_IF_ERROR(PushMap(updated));
  // The published map now reflects the new configurations; the intents are no
  // longer needed. (Deleting before the push would let a leader that dies in
  // between strand a half-finished failover.)
  for (uint32_t id : journaled) {
    DeleteIntent(id);
  }
  return Status::Ok();
}

StatusOr<std::string> Master::PickReplacement(const RegionInfo& region,
                                              const std::vector<std::string>& exclude) const {
  for (const auto& [name, server] : directory_) {
    if (!ServerAlive(name)) {
      continue;
    }
    if (name == region.primary) {
      continue;
    }
    if (std::find(region.backups.begin(), region.backups.end(), name) != region.backups.end()) {
      continue;
    }
    if (std::find(exclude.begin(), exclude.end(), name) != exclude.end()) {
      continue;
    }
    return name;
  }
  return Status::ResourceExhausted("no replacement server available");
}

Status Master::HandleBackupFailure(RegionMap* map, uint32_t region_id,
                                   const std::string& failed) {
  RegionInfo* region = map->MutableFindById(region_id);
  if (region == nullptr) {
    return Status::NotFound("region " + std::to_string(region_id));
  }
  RegionServer* primary = directory_.at(region->primary);
  const uint64_t epoch = region->epoch + 1;
  // Stop replicating to the lost node immediately; the bumped epoch fences
  // it out should it come back with stale state.
  (void)primary->DetachBackup(region_id, failed, epoch);
  std::erase(region->backups, failed);
  // Revoke the read lease (PR 6) with the detach: clients must stop routing
  // reads to a replica the primary no longer replicates to.
  std::erase(region->read_leases, failed);
  // Replace the failed backup with a fresh node and transfer the region data
  // (§3.5: "the master instructs the rest of the region servers in the group
  // to transfer their region data to the new backup"). A replacement that
  // dies mid-transfer is skipped and the next candidate tried; `failed`
  // itself is excluded so a slow-but-alive detached replica is never chosen
  // as its own replacement.
  std::vector<std::string> tried = {failed};
  while (true) {
    auto replacement = PickReplacement(*region, tried);
    if (!replacement.ok()) {
      // Degraded but available: drop the replica.
      TEBIS_LOG(kWarn) << "region " << region_id << " degraded to " << region->backups.size()
                       << " backups: " << replacement.status().ToString();
      region->epoch = epoch;
      return Status::Ok();
    }
    tried.push_back(*replacement);
    RegionServer* new_backup = directory_.at(*replacement);
    Status s = new_backup->OpenBackupRegion(region_id, epoch);
    if (s.IsAlreadyExists()) {
      // Half-synced leftovers from a dead leader's attempt: start over.
      s = new_backup->CloseRegion(region_id);
      if (s.ok()) {
        s = new_backup->OpenBackupRegion(region_id, epoch);
      }
    }
    if (s.ok()) {
      s = primary->AttachBackupWithFullSync(region_id, new_backup, epoch);
    }
    if (s.ok()) {
      region->backups.push_back(*replacement);
      // The full sync completed, so the replacement is caught up: grant its
      // read lease (PR 6) in the same map push that announces it.
      region->read_leases.push_back(*replacement);
      region->epoch = epoch;
      return Status::Ok();
    }
    TEBIS_LOG(kWarn) << "replacement " << *replacement << " for region " << region_id
                     << " failed (" << s.ToString() << "); trying next candidate";
    (void)primary->DetachBackup(region_id, *replacement, epoch);
    (void)new_backup->CloseRegion(region_id);
  }
}

Status Master::HandlePrimaryFailure(RegionMap* map, uint32_t region_id,
                                    const std::string& failed) {
  RegionInfo* region = map->MutableFindById(region_id);
  if (region == nullptr) {
    return Status::NotFound("region " + std::to_string(region_id));
  }
  if (region->backups.empty()) {
    return Status::Internal("region " + std::to_string(region_id) + " lost all replicas");
  }
  // Promote the first surviving backup.
  std::string promoted;
  for (const auto& backup : region->backups) {
    if (ServerAlive(backup)) {
      promoted = backup;
      break;
    }
  }
  if (promoted.empty()) {
    return Status::Internal("region " + std::to_string(region_id) + " lost all replicas");
  }
  // Journal the intent under the bumped epoch before mutating anything: if
  // this master dies mid-failover, the next leader resumes from here.
  const uint64_t epoch = region->epoch + 1;
  RecoveryIntent intent;
  intent.kind = RecoveryIntent::Kind::kPrimaryFailover;
  intent.region_id = region_id;
  intent.old_primary = failed;
  intent.new_primary = promoted;
  intent.epoch = epoch;
  TEBIS_RETURN_IF_ERROR(WriteIntent(intent));
  return ExecutePrimaryFailover(map, region_id, failed, promoted, epoch);
}

Status Master::ExecutePrimaryFailover(RegionMap* map, uint32_t region_id,
                                      const std::string& failed, const std::string& promoted,
                                      uint64_t epoch) {
  RegionInfo* region = map->MutableFindById(region_id);
  if (region == nullptr) {
    return Status::NotFound("region " + std::to_string(region_id));
  }
  RegionServer* new_primary = directory_.at(promoted);
  SegmentMap new_primary_log_map;
  if (!new_primary->IsPrimaryFor(region_id)) {
    TEBIS_RETURN_IF_ERROR(new_primary->PromoteRegion(region_id, &new_primary_log_map, epoch));
  } else {
    // A previous leader already promoted this server; re-fetch the log map it
    // produced and continue from the re-attach step.
    TEBIS_ASSIGN_OR_RETURN(new_primary_log_map, new_primary->GetPromotionLogMap(region_id));
  }
  if (!Step("failover-promoted:" + std::to_string(region_id))) {
    return Status::Unavailable("master died at failpoint failover-promoted");
  }
  // Remaining backups re-key their log maps (§3.2) and re-attach to the new
  // primary; then the new primary replays the unflushed buffer, replicated.
  // Every step is an equal-epoch no-op when a resumed intent repeats it.
  for (const auto& backup : region->backups) {
    if (backup == promoted || backup == failed || !ServerAlive(backup)) {
      continue;
    }
    RegionServer* server = directory_.at(backup);
    TEBIS_RETURN_IF_ERROR(server->AdoptNewPrimaryLogMap(region_id, new_primary_log_map, epoch));
    TEBIS_RETURN_IF_ERROR(new_primary->AttachBackup(region_id, server, epoch));
  }
  TEBIS_RETURN_IF_ERROR(new_primary->ReplayPromotionBuffer(region_id));

  std::erase(region->backups, promoted);
  if (std::find(region->backups.begin(), region->backups.end(), failed) ==
      region->backups.end()) {
    region->backups.push_back(failed);  // now a (failed) backup slot: handled next
  }
  // Leases (PR 6): the promoted server is the primary now, and the failed
  // server must never serve reads again; surviving backups re-attached above
  // kept their state and stay leased.
  std::erase(region->read_leases, promoted);
  std::erase(region->read_leases, failed);
  region->primary = promoted;
  region->epoch = epoch;
  return Status::Ok();
}

Status Master::WriteIntent(const RecoveryIntent& intent) {
  EnsurePath(coordinator_, kIntentsPath);
  WireWriter w;
  w.U8(static_cast<uint8_t>(intent.kind))
      .U32(intent.region_id)
      .Bytes(intent.old_primary)
      .Bytes(intent.new_primary)
      .U64(intent.epoch);
  const std::string path = IntentPath(intent.region_id);
  if (coordinator_->Exists(path)) {
    return coordinator_->Set(path, w.str());
  }
  return coordinator_->Create(Coordinator::kNoSession, path, w.str(), {});
}

void Master::DeleteIntent(uint32_t region_id) {
  (void)coordinator_->Delete(Coordinator::kNoSession, IntentPath(region_id));
}

void Master::ResumeRecoveryIntents() {
  auto children = coordinator_->List(kIntentsPath);
  if (!children.ok() || children->empty() || map_ == nullptr) {
    return;
  }
  for (const auto& child : *children) {
    const std::string path = std::string(kIntentsPath) + "/" + child;
    auto data = coordinator_->Get(path);
    if (!data.ok()) {
      continue;
    }
    WireReader r{Slice(*data)};
    uint8_t kind = 0;
    RecoveryIntent intent;
    if (!r.U8(&kind).ok() || !r.U32(&intent.region_id).ok() ||
        !r.Bytes(&intent.old_primary).ok() || !r.Bytes(&intent.new_primary).ok() ||
        !r.U64(&intent.epoch).ok()) {
      TEBIS_LOG(kError) << "malformed recovery intent " << child << "; deleting";
      (void)coordinator_->Delete(Coordinator::kNoSession, path);
      continue;
    }
    intent.kind = static_cast<RecoveryIntent::Kind>(kind);
    if (!ServerAlive(intent.new_primary)) {
      // The chosen server died too; abandon the intent — the membership pass
      // that follows redoes recovery from scratch under a fresh epoch.
      TEBIS_LOG(kWarn) << "abandoning intent " << child << ": promoted server "
                       << intent.new_primary << " is gone";
      (void)coordinator_->Delete(Coordinator::kNoSession, path);
      continue;
    }
    TEBIS_LOG(kInfo) << "master " << name_ << " resuming recovery intent " << child
                     << " (epoch " << intent.epoch << ")";
    RegionMap updated = *map_;
    Status s;
    if (intent.kind == RecoveryIntent::Kind::kMovePrimary) {
      s = ExecuteMovePrimary(&updated, intent.region_id, intent.old_primary,
                             intent.new_primary, intent.epoch);
    } else {
      s = ExecutePrimaryFailover(&updated, intent.region_id, intent.old_primary,
                                 intent.new_primary, intent.epoch);
    }
    if (s.ok()) {
      updated.BumpVersion();
      s = PushMap(updated);
    }
    if (s.ok()) {
      (void)coordinator_->Delete(Coordinator::kNoSession, path);
    } else {
      TEBIS_LOG(kError) << "resume of intent " << child << ": " << s.ToString();
    }
  }
}

void Master::ReconcileDetachRecords() {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (map_ == nullptr) {
    return;
  }
  auto children = coordinator_->List(kDetachedPath);
  if (!children.ok()) {
    return;
  }
  for (const auto& child : *children) {
    const std::string path = std::string(kDetachedPath) + "/" + child;
    auto data = coordinator_->Get(path);
    if (!data.ok()) {
      continue;
    }
    WireReader r{Slice(*data)};
    uint32_t region_id = 0;
    std::string backup_name;
    uint64_t detach_epoch = 0;
    std::string primary_name;
    uint32_t stream = 0;  // shipping stream that struck out (PR 4)
    if (!r.U32(&region_id).ok() || !r.Bytes(&backup_name).ok() || !r.U64(&detach_epoch).ok() ||
        !r.Bytes(&primary_name).ok() || !r.U32(&stream).ok()) {
      (void)coordinator_->Delete(Coordinator::kNoSession, path);
      continue;
    }
    RegionMap updated = *map_;
    RegionInfo* region = updated.MutableFindById(region_id);
    if (region == nullptr || detach_epoch < region->epoch ||
        std::find(region->backups.begin(), region->backups.end(), backup_name) ==
            region->backups.end()) {
      // Stale record: a newer configuration already superseded the detach.
      (void)coordinator_->Delete(Coordinator::kNoSession, path);
      continue;
    }
    TEBIS_LOG(kInfo) << "master " << name_ << " reconciling unilateral detach of "
                     << backup_name << " from region " << region_id << " (stream "
                     << stream << ")";
    // The primary already dropped the replica; replace it like a failed
    // backup (the stalled server is excluded as its own replacement).
    Status s = HandleBackupFailure(&updated, region_id, backup_name);
    if (s.ok()) {
      updated.BumpVersion();
      s = PushMap(updated);
    }
    if (s.ok()) {
      (void)coordinator_->Delete(Coordinator::kNoSession, path);
    } else {
      TEBIS_LOG(kError) << "reconciling detach record " << child << ": " << s.ToString();
    }
  }
}

Status Master::PushMap(const RegionMap& map) {
  auto shared = std::make_shared<const RegionMap>(map);
  {
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    map_ = shared;
  }
  const std::string serialized = map.Serialize();
  if (coordinator_->Exists(kRegionMapPath)) {
    TEBIS_RETURN_IF_ERROR(coordinator_->Set(kRegionMapPath, serialized));
  } else {
    TEBIS_RETURN_IF_ERROR(
        coordinator_->Create(Coordinator::kNoSession, kRegionMapPath, serialized, {}));
  }
  for (auto& [name, server] : directory_) {
    if (ServerAlive(name)) {
      server->SetRegionMap(shared);
    }
  }
  return Status::Ok();
}

Status Master::Bootstrap(const RegionMap& map) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (!leader_) {
    return Status::FailedPrecondition("only the leader bootstraps");
  }
  for (const auto& region : map.regions()) {
    auto primary_it = directory_.find(region.primary);
    if (primary_it == directory_.end()) {
      return Status::NotFound("unknown server " + region.primary);
    }
    TEBIS_RETURN_IF_ERROR(
        primary_it->second->OpenPrimaryRegion(region.region_id, region.epoch));
    for (const auto& backup : region.backups) {
      auto backup_it = directory_.find(backup);
      if (backup_it == directory_.end()) {
        return Status::NotFound("unknown server " + backup);
      }
      TEBIS_RETURN_IF_ERROR(backup_it->second->OpenBackupRegion(region.region_id, region.epoch));
      TEBIS_RETURN_IF_ERROR(primary_it->second->AttachBackup(region.region_id,
                                                             backup_it->second, region.epoch));
    }
  }
  return PushMap(map);
}

Status Master::MovePrimary(uint32_t region_id, const std::string& new_primary) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (!leader_) {
    return Status::FailedPrecondition("only the leader balances load");
  }
  if (map_ == nullptr) {
    return Status::FailedPrecondition("no region map installed");
  }
  RegionMap updated = *map_;
  RegionInfo* region = updated.MutableFindById(region_id);
  if (region == nullptr) {
    return Status::NotFound("region " + std::to_string(region_id));
  }
  if (region->primary == new_primary) {
    return Status::Ok();
  }
  if (std::find(region->backups.begin(), region->backups.end(), new_primary) ==
      region->backups.end()) {
    return Status::InvalidArgument(new_primary + " is not a backup of the region");
  }
  if (!ServerAlive(region->primary) || !ServerAlive(new_primary)) {
    return Status::Unavailable("both ends of the handover must be alive");
  }
  const std::string old_primary = region->primary;
  RegionServer* old_server = directory_.at(old_primary);

  // 1) Seal the log so the backup holds everything (acked data is already in
  //    its buffer; the flush also persists and maps it).
  TEBIS_RETURN_IF_ERROR(old_server->FlushRegionTail(region_id));
  // 2) Journal the handover before the first irreversible step; a standby
  //    taking over mid-move rolls it forward.
  const uint64_t epoch = region->epoch + 1;
  RecoveryIntent intent;
  intent.kind = RecoveryIntent::Kind::kMovePrimary;
  intent.region_id = region_id;
  intent.old_primary = old_primary;
  intent.new_primary = new_primary;
  intent.epoch = epoch;
  TEBIS_RETURN_IF_ERROR(WriteIntent(intent));
  TEBIS_RETURN_IF_ERROR(
      ExecuteMovePrimary(&updated, region_id, old_primary, new_primary, epoch));
  updated.BumpVersion();
  TEBIS_RETURN_IF_ERROR(PushMap(updated));
  DeleteIntent(region_id);
  return Status::Ok();
}

Status Master::ExecuteMovePrimary(RegionMap* map, uint32_t region_id,
                                  const std::string& old_primary,
                                  const std::string& new_primary, uint64_t epoch) {
  RegionInfo* region = map->MutableFindById(region_id);
  if (region == nullptr) {
    return Status::NotFound("region " + std::to_string(region_id));
  }
  RegionServer* old_server = directory_.at(old_primary);
  RegionServer* new_server = directory_.at(new_primary);

  // Promote the chosen backup under the bumped epoch. From this instant the
  // old primary is fenced: the promoted buffer rejects its one-sided writes,
  // so a write racing the handover fails un-acked and the client retries
  // against the refreshed map.
  SegmentMap new_primary_log_map;
  if (!new_server->IsPrimaryFor(region_id)) {
    TEBIS_RETURN_IF_ERROR(new_server->PromoteRegion(region_id, &new_primary_log_map, epoch));
  } else {
    TEBIS_ASSIGN_OR_RETURN(new_primary_log_map, new_server->GetPromotionLogMap(region_id));
  }
  if (!Step("move-promoted:" + std::to_string(region_id))) {
    return Status::Unavailable("master died at failpoint move-promoted");
  }
  // Remaining backups re-key and re-attach, adopting the new epoch.
  for (const auto& backup : region->backups) {
    if (backup == new_primary || !ServerAlive(backup)) {
      continue;
    }
    RegionServer* server = directory_.at(backup);
    TEBIS_RETURN_IF_ERROR(server->AdoptNewPrimaryLogMap(region_id, new_primary_log_map, epoch));
    TEBIS_RETURN_IF_ERROR(new_server->AttachBackup(region_id, server, epoch));
  }
  // Demote the old primary to a backup. A write that raced the handover may
  // have landed in its tail after the seal; it was never acked (the promoted
  // buffer fenced its replication), so when the demotion refuses the dirty
  // tail the old engine is simply discarded and rebuilt with a full sync.
  bool old_resynced = false;
  if (ServerAlive(old_primary) && old_server->IsPrimaryFor(region_id)) {
    Status s = old_server->DemoteRegion(region_id, new_primary_log_map, epoch);
    if (s.IsFailedPrecondition()) {
      TEBIS_RETURN_IF_ERROR(old_server->CloseRegion(region_id));
      TEBIS_RETURN_IF_ERROR(old_server->OpenBackupRegion(region_id, epoch));
      TEBIS_RETURN_IF_ERROR(new_server->AttachBackupWithFullSync(region_id, old_server, epoch));
      old_resynced = true;
    } else if (!s.ok()) {
      return s;
    }
  }
  if (!old_resynced && ServerAlive(old_primary)) {
    TEBIS_RETURN_IF_ERROR(new_server->AttachBackup(region_id, old_server, epoch));
  }
  // Replay the promotion buffer through the new primary (replicated).
  TEBIS_RETURN_IF_ERROR(new_server->ReplayPromotionBuffer(region_id));

  std::erase(region->backups, new_primary);
  std::erase(region->read_leases, new_primary);
  if (ServerAlive(old_primary) &&
      std::find(region->backups.begin(), region->backups.end(), old_primary) ==
          region->backups.end()) {
    region->backups.push_back(old_primary);
    // Leased immediately (PR 6): whether it demoted cleanly or was rebuilt
    // with a full sync, the old primary holds the complete region state.
    region->read_leases.push_back(old_primary);
  }
  region->primary = new_primary;
  region->epoch = epoch;
  return Status::Ok();
}

void Master::Fail() {
  {
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    failed_ = true;
    leader_ = false;
  }
  coordinator_->ExpireSession(session_);
}

// --- metrics federation (PR 10) --------------------------------------------

void Master::set_scrape_fetcher(ClusterScraper::FetchFn fetch) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  scrape_fetch_ = std::move(fetch);
}

StatusOr<std::string> Master::FetchNodeScrape(const std::string& server) {
  RegionServer* rs = nullptr;
  {
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    auto it = directory_.find(server);
    if (it == directory_.end()) {
      return Status::NotFound("unknown server " + server);
    }
    rs = it->second;
  }
  if (rs->crashed()) {
    return Status::Unavailable(server + " crashed");
  }
  // A fresh connection per round keeps the fetch stateless across server
  // restarts; scrape pacing makes the setup cost irrelevant.
  RpcClient client(rs->fabric(), name_ + ">scrape>" + server, rs->client_endpoint(),
                   kDefaultConnectionBufferSize);
  const std::string request = EncodeScrapeRequest(kScrapeFormatBinary);
  size_t alloc = 16384;
  for (int attempt = 0; attempt < 3; ++attempt) {
    TEBIS_ASSIGN_OR_RETURN(RpcReply reply, client.Call(MessageType::kStatsScrape, 0, request,
                                                       alloc, /*map_version=*/0));
    if (reply.header.flags & kFlagTruncatedReply) {
      uint64_t needed;
      TEBIS_RETURN_IF_ERROR(DecodeTruncatedReply(reply.payload, &needed));
      alloc = needed + 64;
      continue;
    }
    if (reply.header.flags & kFlagError) {
      return Status::Internal(server + " rejected scrape: " + reply.payload);
    }
    return std::move(reply.payload);
  }
  return Status::Unavailable(server + "'s scrape kept outgrowing the allocation");
}

StatusOr<ClusterScraper*> Master::EnsureScraper(uint64_t period_ms) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (scraper_ != nullptr) {
    return scraper_.get();
  }
  if (!leader_ || failed_) {
    return Status::FailedPrecondition("not the leader");
  }
  std::vector<std::string> servers;
  servers.reserve(directory_.size());
  for (const auto& [server, unused] : directory_) {
    servers.push_back(server);
  }
  ClusterScraper::FetchFn fetch = scrape_fetch_;
  if (fetch == nullptr) {
    fetch = [this](const std::string& server) { return FetchNodeScrape(server); };
  }
  ClusterScraper::Options options;
  options.period_ms = period_ms;
  scraper_ = std::make_unique<ClusterScraper>(std::move(servers), std::move(fetch), options);
  return scraper_.get();
}

Status Master::ScrapeCluster() {
  TEBIS_ASSIGN_OR_RETURN(ClusterScraper * scraper, EnsureScraper());
  // Unlocked: the fan-out RPCs must not run under the master mutex.
  return scraper->ScrapeOnce();
}

Status Master::EnableClusterScrape(uint64_t period_ms) {
  TEBIS_ASSIGN_OR_RETURN(ClusterScraper * scraper, EnsureScraper(period_ms));
  scraper->Start();
  return Status::Ok();
}

void Master::DisableClusterScrape() {
  ClusterScraper* scraper;
  {
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    scraper = scraper_.get();
  }
  if (scraper != nullptr) {
    scraper->Stop();
  }
}

std::string Master::ClusterStatsJson() const {
  const ClusterScraper* scraper;
  {
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    scraper = scraper_.get();
  }
  return scraper == nullptr ? "" : scraper->ClusterJson();
}

}  // namespace tebis
