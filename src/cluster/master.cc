#include "src/cluster/master.h"

#include <algorithm>

#include "src/common/logging.h"

namespace tebis {
namespace {

constexpr char kElectionPath[] = "/master-election";
constexpr char kRegionMapPath[] = "/region_map";

}  // namespace

Master::Master(Coordinator* coordinator, std::string name,
               std::map<std::string, RegionServer*> directory)
    : coordinator_(coordinator), name_(std::move(name)), directory_(std::move(directory)) {}

bool Master::IsLeader() const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return leader_ && !failed_;
}

std::shared_ptr<const RegionMap> Master::current_map() const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return map_;
}

Status Master::Campaign() {
  session_ = coordinator_->CreateSession();
  if (!coordinator_->Exists(kElectionPath)) {
    (void)coordinator_->Create(Coordinator::kNoSession, kElectionPath, "", {});
  }
  TEBIS_RETURN_IF_ERROR(coordinator_->Create(session_, std::string(kElectionPath) + "/m-",
                                             name_,
                                             {.ephemeral = true, .sequential = true},
                                             &election_node_));
  // Leader check: am I the lowest sequence? Otherwise watch my predecessor.
  auto check = [this]() {
    auto children = coordinator_->List(kElectionPath);
    if (!children.ok() || children->empty()) {
      return;
    }
    const std::string mine = election_node_.substr(strlen(kElectionPath) + 1);
    std::sort(children->begin(), children->end());
    if (children->front() == mine) {
      OnBecameLeader();
      return;
    }
    // Watch the candidate immediately before us.
    auto it = std::lower_bound(children->begin(), children->end(), mine);
    const std::string predecessor = *(it - 1);
    coordinator_->Exists(std::string(kElectionPath) + "/" + predecessor,
                         [this](const WatchEvent& event) {
                           if (event.type == WatchEventType::kDeleted) {
                             RecheckLeadership();
                           }
                         });
  };
  recheck_ = check;
  check();
  return Status::Ok();
}

void Master::RecheckLeadership() {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (failed_) {
    return;
  }
  if (recheck_) {
    recheck_();
  }
}

void Master::OnBecameLeader() {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (leader_ || failed_) {
    return;
  }
  leader_ = true;
  TEBIS_LOG(kInfo) << "master " << name_ << " became leader";
  // Recover the map from the coordinator if a previous leader installed one,
  // then reconcile: any server in the map that is no longer a member failed
  // while there was no leader.
  auto stored = coordinator_->Get(kRegionMapPath);
  if (stored.ok()) {
    auto map = RegionMap::Deserialize(*stored);
    if (map.ok()) {
      map_ = std::make_shared<const RegionMap>(*map);
    }
  }
  ArmServerWatch();
  if (map_ != nullptr) {
    HandleMembershipChange();
  }
}

void Master::ArmServerWatch() {
  (void)coordinator_->List("/servers", [this](const WatchEvent&) {
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    if (!leader_ || failed_) {
      return;
    }
    ArmServerWatch();  // one-shot watches must be re-armed first
    HandleMembershipChange();
  });
}

bool Master::ServerAlive(const std::string& name) const {
  return coordinator_->Exists("/servers/" + name);
}

void Master::HandleMembershipChange() {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (map_ == nullptr) {
    return;
  }
  // Find servers referenced by the map that are gone.
  std::vector<std::string> failed;
  for (const auto& region : map_->regions()) {
    if (!ServerAlive(region.primary)) {
      failed.push_back(region.primary);
    }
    for (const auto& backup : region.backups) {
      if (!ServerAlive(backup)) {
        failed.push_back(backup);
      }
    }
  }
  std::sort(failed.begin(), failed.end());
  failed.erase(std::unique(failed.begin(), failed.end()), failed.end());
  for (const auto& server : failed) {
    Status s = HandleServerFailure(server);
    if (!s.ok()) {
      TEBIS_LOG(kError) << "failure handling for " << server << ": " << s.ToString();
    }
  }
}

Status Master::HandleServerFailure(const std::string& failed) {
  TEBIS_LOG(kInfo) << "master " << name_ << " handling failure of " << failed;
  RegionMap updated = *map_;  // copy, then bump + publish
  std::vector<uint32_t> region_ids;
  for (const auto& region : updated.regions()) {
    region_ids.push_back(region.region_id);
  }
  // Primary failures first: promotion restores availability (§3.5). The
  // promotion leaves `failed` in the region's backup list so the second pass
  // replaces that replica like any other lost backup.
  for (uint32_t id : region_ids) {
    if (updated.FindById(id)->primary == failed) {
      TEBIS_RETURN_IF_ERROR(HandlePrimaryFailure(&updated, id, failed));
    }
  }
  for (uint32_t id : region_ids) {
    const RegionInfo* region = updated.FindById(id);
    if (std::find(region->backups.begin(), region->backups.end(), failed) !=
        region->backups.end()) {
      TEBIS_RETURN_IF_ERROR(HandleBackupFailure(&updated, id, failed));
    }
  }
  updated.BumpVersion();
  TEBIS_RETURN_IF_ERROR(PushMap(updated));
  return Status::Ok();
}

StatusOr<std::string> Master::PickReplacement(const RegionInfo& region) const {
  for (const auto& [name, server] : directory_) {
    if (!ServerAlive(name)) {
      continue;
    }
    if (name == region.primary) {
      continue;
    }
    if (std::find(region.backups.begin(), region.backups.end(), name) != region.backups.end()) {
      continue;
    }
    return name;
  }
  return Status::ResourceExhausted("no replacement server available");
}

Status Master::HandleBackupFailure(RegionMap* map, uint32_t region_id,
                                   const std::string& failed) {
  RegionInfo* region = map->MutableFindById(region_id);
  if (region == nullptr) {
    return Status::NotFound("region " + std::to_string(region_id));
  }
  RegionServer* primary = directory_.at(region->primary);
  // Stop replicating to the dead node immediately.
  (void)primary->DetachBackup(region_id, failed);
  // Replace the failed backup with a fresh node and transfer the region data
  // (§3.5: "the master instructs the rest of the region servers in the group
  // to transfer their region data to the new backup").
  auto replacement = PickReplacement(*region);
  if (!replacement.ok()) {
    // Degraded but available: drop the replica.
    std::erase(region->backups, failed);
    return Status::Ok();
  }
  RegionServer* new_backup = directory_.at(*replacement);
  TEBIS_RETURN_IF_ERROR(new_backup->OpenBackupRegion(region_id));
  TEBIS_RETURN_IF_ERROR(primary->AttachBackupWithFullSync(region_id, new_backup));
  std::erase(region->backups, failed);
  region->backups.push_back(*replacement);
  return Status::Ok();
}

Status Master::HandlePrimaryFailure(RegionMap* map, uint32_t region_id,
                                    const std::string& failed) {
  RegionInfo* region = map->MutableFindById(region_id);
  if (region == nullptr) {
    return Status::NotFound("region " + std::to_string(region_id));
  }
  if (region->backups.empty()) {
    return Status::Internal("region " + std::to_string(region_id) + " lost all replicas");
  }
  // Promote the first surviving backup.
  std::string promoted;
  for (const auto& backup : region->backups) {
    if (ServerAlive(backup)) {
      promoted = backup;
      break;
    }
  }
  if (promoted.empty()) {
    return Status::Internal("region " + std::to_string(region_id) + " lost all replicas");
  }
  RegionServer* new_primary = directory_.at(promoted);
  SegmentMap new_primary_log_map;
  TEBIS_RETURN_IF_ERROR(new_primary->PromoteRegion(region_id, &new_primary_log_map));

  // Remaining backups re-key their log maps (§3.2) and re-attach to the new
  // primary; then the new primary replays the unflushed buffer, replicated.
  for (const auto& backup : region->backups) {
    if (backup == promoted || !ServerAlive(backup)) {
      continue;
    }
    RegionServer* server = directory_.at(backup);
    TEBIS_RETURN_IF_ERROR(server->AdoptNewPrimaryLogMap(region_id, new_primary_log_map));
    TEBIS_RETURN_IF_ERROR(new_primary->AttachBackup(region_id, server));
  }
  TEBIS_RETURN_IF_ERROR(new_primary->ReplayPromotionBuffer(region_id));

  std::erase(region->backups, promoted);
  region->backups.push_back(failed);  // now a (failed) backup slot: handled next
  region->primary = promoted;
  return Status::Ok();
}

Status Master::PushMap(const RegionMap& map) {
  auto shared = std::make_shared<const RegionMap>(map);
  {
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    map_ = shared;
  }
  const std::string serialized = map.Serialize();
  if (coordinator_->Exists(kRegionMapPath)) {
    TEBIS_RETURN_IF_ERROR(coordinator_->Set(kRegionMapPath, serialized));
  } else {
    TEBIS_RETURN_IF_ERROR(
        coordinator_->Create(Coordinator::kNoSession, kRegionMapPath, serialized, {}));
  }
  for (auto& [name, server] : directory_) {
    if (ServerAlive(name)) {
      server->SetRegionMap(shared);
    }
  }
  return Status::Ok();
}

Status Master::Bootstrap(const RegionMap& map) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (!leader_) {
    return Status::FailedPrecondition("only the leader bootstraps");
  }
  for (const auto& region : map.regions()) {
    auto primary_it = directory_.find(region.primary);
    if (primary_it == directory_.end()) {
      return Status::NotFound("unknown server " + region.primary);
    }
    TEBIS_RETURN_IF_ERROR(primary_it->second->OpenPrimaryRegion(region.region_id));
    for (const auto& backup : region.backups) {
      auto backup_it = directory_.find(backup);
      if (backup_it == directory_.end()) {
        return Status::NotFound("unknown server " + backup);
      }
      TEBIS_RETURN_IF_ERROR(backup_it->second->OpenBackupRegion(region.region_id));
      TEBIS_RETURN_IF_ERROR(
          primary_it->second->AttachBackup(region.region_id, backup_it->second));
    }
  }
  return PushMap(map);
}

Status Master::MovePrimary(uint32_t region_id, const std::string& new_primary) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (!leader_) {
    return Status::FailedPrecondition("only the leader balances load");
  }
  if (map_ == nullptr) {
    return Status::FailedPrecondition("no region map installed");
  }
  RegionMap updated = *map_;
  RegionInfo* region = updated.MutableFindById(region_id);
  if (region == nullptr) {
    return Status::NotFound("region " + std::to_string(region_id));
  }
  if (region->primary == new_primary) {
    return Status::Ok();
  }
  if (std::find(region->backups.begin(), region->backups.end(), new_primary) ==
      region->backups.end()) {
    return Status::InvalidArgument(new_primary + " is not a backup of the region");
  }
  if (!ServerAlive(region->primary) || !ServerAlive(new_primary)) {
    return Status::Unavailable("both ends of the handover must be alive");
  }
  RegionServer* old_server = directory_.at(region->primary);
  RegionServer* new_server = directory_.at(new_primary);

  // 1) Seal the log so the backup holds everything (acked data is already in
  //    its buffer; the flush also persists and maps it).
  TEBIS_RETURN_IF_ERROR(old_server->FlushRegionTail(region_id));
  // 2) Promote the chosen backup.
  SegmentMap new_primary_log_map;
  TEBIS_RETURN_IF_ERROR(new_server->PromoteRegion(region_id, &new_primary_log_map));
  // 3) Remaining backups re-key and re-attach; the old primary demotes and
  //    attaches as a backup.
  for (const auto& backup : region->backups) {
    if (backup == new_primary || !ServerAlive(backup)) {
      continue;
    }
    RegionServer* server = directory_.at(backup);
    TEBIS_RETURN_IF_ERROR(server->AdoptNewPrimaryLogMap(region_id, new_primary_log_map));
    TEBIS_RETURN_IF_ERROR(new_server->AttachBackup(region_id, server));
  }
  TEBIS_RETURN_IF_ERROR(old_server->DemoteRegion(region_id, new_primary_log_map));
  TEBIS_RETURN_IF_ERROR(new_server->AttachBackup(region_id, old_server));
  // 4) Replay the promotion buffer through the new primary (replicated).
  TEBIS_RETURN_IF_ERROR(new_server->ReplayPromotionBuffer(region_id));

  std::erase(region->backups, new_primary);
  region->backups.push_back(region->primary);
  region->primary = new_primary;
  updated.BumpVersion();
  return PushMap(updated);
}

void Master::Fail() {
  {
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    failed_ = true;
    leader_ = false;
  }
  coordinator_->ExpireSession(session_);
}

}  // namespace tebis
