#include "src/cluster/client.h"

#include <functional>

#include "src/cluster/kv_wire.h"
#include "src/cluster/stats_wire.h"
#include "src/common/clock.h"
#include "src/common/logging.h"

namespace tebis {
namespace {

constexpr int kMaxAttempts = 8;

}  // namespace

TebisClient::TebisClient(Fabric* fabric, std::string name, ServerResolver resolver,
                         std::vector<std::string> seed_servers, size_t buffer_size)
    : fabric_(fabric),
      name_(std::move(name)),
      resolver_(std::move(resolver)),
      seed_servers_(std::move(seed_servers)),
      buffer_size_(buffer_size),
      source_hash_(std::hash<std::string>{}(name_)) {}

TraceId TebisClient::MaybeSampleTrace() {
  if (sample_every_ == 0) {
    return kNoTrace;
  }
  if (++sample_counter_ % sample_every_ != 0) {
    return kNoTrace;
  }
  return MakeRequestTraceId(source_hash_, trace_seq_++);
}

void TebisClient::RecordClientSpan(TraceId trace, uint64_t start_ns, uint64_t bytes) {
  if (trace == kNoTrace || telemetry_ == nullptr) {
    return;
  }
  TraceBuffer* traces = telemetry_->traces();
  if (!traces->enabled()) {
    return;
  }
  SpanRecord span;
  span.trace = trace;
  span.name = "client";
  span.node = name_;
  span.start_ns = start_ns;
  span.end_ns = NowNanos();
  span.bytes = bytes;
  traces->Record(std::move(span));
}

StatusOr<RpcClient*> TebisClient::ClientFor(const std::string& server) {
  ServerEndpoint* endpoint = resolver_(server);
  if (endpoint == nullptr) {
    // The server is gone; drop any cached connection so we never wait on it.
    connections_.erase(server);
    return Status::Unavailable("server " + server + " unreachable");
  }
  auto it = connections_.find(server);
  if (it != connections_.end()) {
    return it->second.get();
  }
  auto client = std::make_unique<RpcClient>(fabric_, name_, endpoint, buffer_size_);
  RpcClient* raw = client.get();
  connections_[server] = std::move(client);
  return raw;
}

Status TebisClient::RefreshMap() {
  stats_.map_refreshes++;
  size_t alloc = 4096;
  for (const auto& seed : seed_servers_) {
    auto client = ClientFor(seed);
    if (!client.ok()) {
      continue;
    }
    for (int attempt = 0; attempt < 3; ++attempt) {
      auto reply =
          (*client)->Call(MessageType::kGetRegionMap, 0, Slice(), alloc, 0, rpc_timeout_ns_);
      if (!reply.ok()) {
        break;  // try the next seed
      }
      if (reply->header.flags & kFlagTruncatedReply) {
        uint64_t needed;
        TEBIS_RETURN_IF_ERROR(DecodeTruncatedReply(reply->payload, &needed));
        alloc = needed + 64;
        continue;
      }
      if (reply->header.flags & kFlagError) {
        break;
      }
      auto map = RegionMap::Deserialize(reply->payload);
      if (!map.ok()) {
        return map.status();
      }
      map_ = std::make_shared<const RegionMap>(std::move(*map));
      return Status::Ok();
    }
  }
  return Status::Unavailable("could not fetch region map from any seed server");
}

Status TebisClient::Connect() { return RefreshMap(); }

StatusOr<std::string> TebisClient::ScrapeStats(const std::string& server) {
  TEBIS_ASSIGN_OR_RETURN(RpcClient * client, ClientFor(server));
  size_t alloc = 16384;
  for (int attempt = 0; attempt < 3; ++attempt) {
    TEBIS_ASSIGN_OR_RETURN(
        RpcReply reply,
        client->Call(MessageType::kStatsScrape, 0, Slice(), alloc, 0, rpc_timeout_ns_));
    if (reply.header.flags & kFlagTruncatedReply) {
      uint64_t needed;
      TEBIS_RETURN_IF_ERROR(DecodeTruncatedReply(reply.payload, &needed));
      alloc = needed + 64;
      continue;
    }
    if (reply.header.flags & kFlagError) {
      return Status::Internal("scrape rejected: " + reply.payload);
    }
    return std::move(reply.payload);
  }
  return Status::Unavailable("scrape reply kept outgrowing the allocation");
}

StatusOr<std::string> TebisClient::ScrapeStatsBinary(const std::string& server) {
  TEBIS_ASSIGN_OR_RETURN(RpcClient * client, ClientFor(server));
  const std::string request = EncodeScrapeRequest(kScrapeFormatBinary);
  size_t alloc = 16384;
  for (int attempt = 0; attempt < 3; ++attempt) {
    TEBIS_ASSIGN_OR_RETURN(
        RpcReply reply,
        client->Call(MessageType::kStatsScrape, 0, request, alloc, 0, rpc_timeout_ns_));
    if (reply.header.flags & kFlagTruncatedReply) {
      uint64_t needed;
      TEBIS_RETURN_IF_ERROR(DecodeTruncatedReply(reply.payload, &needed));
      alloc = needed + 64;
      continue;
    }
    if (reply.header.flags & kFlagError) {
      return Status::Internal("scrape rejected: " + reply.payload);
    }
    return std::move(reply.payload);
  }
  return Status::Unavailable("scrape reply kept outgrowing the allocation");
}

Status TebisClient::Issue(PendingOp* op) {
  if (map_ == nullptr) {
    TEBIS_RETURN_IF_ERROR(RefreshMap());
  }
  if (!batch_queues_.empty() &&
      (op->type == MessageType::kGet || op->type == MessageType::kScan)) {
    // Writes parked behind the batch threshold must not be overtaken by this
    // client's own reads (the seed pipelined path preserved per-connection
    // FIFO); push them onto the wire first.
    TEBIS_RETURN_IF_ERROR(FlushAllBatches());
  }
  // Scans route by start key; everything else by exact key. If the cached
  // map routes to an unreachable server, refresh and re-route (§3.1).
  const RegionInfo* region = nullptr;
  RpcClient* client = nullptr;
  std::string target;
  const bool replica_eligible =
      (read_mode_ != ReadMode::kPrimaryOnly || op->force_replica) && !op->force_primary &&
      (op->type == MessageType::kGet || op->type == MessageType::kScan);
  for (int attempt = 0; attempt < 3; ++attempt) {
    region = map_->FindRegion(op->key);
    if (region == nullptr) {
      return Status::Internal("no region owns key " + op->key);
    }
    target = region->primary;
    op->replica = false;
    if (replica_eligible && !region->read_leases.empty()) {
      // Rotate across the backups the master currently leases for reads;
      // an unresolvable (failed) lease falls through to the next, then to
      // the primary. The master revokes leases of detached/degraded
      // replicas, so a leased backup is expected to satisfy the fence.
      const auto& leases = region->read_leases;
      for (size_t i = 0; i < leases.size(); ++i) {
        const std::string& candidate = leases[(replica_rr_ + i) % leases.size()];
        if (resolver_(candidate) != nullptr) {
          target = candidate;
          op->replica = true;
          break;
        }
      }
      replica_rr_++;
    }
    auto resolved = ClientFor(target);
    if (resolved.ok()) {
      client = *resolved;
      break;
    }
    stats_.failover_retries++;
    TEBIS_RETURN_IF_ERROR(RefreshMap());
  }
  if (client == nullptr) {
    return Status::Unavailable("primary for " + op->key + " unreachable after retries");
  }
  op->region_id = region->region_id;
  MessageType wire_type = op->type;
  std::string payload;
  if (op->replica) {
    // Read fence (PR 6): the replica must have committed at least
    // {min_epoch, min_seq} or reject with FailedPrecondition.
    const RegionReadState& st = read_state_[region->region_id];
    uint64_t min_epoch;
    uint64_t min_seq = st.observed_seq;  // monotonic reads across replicas
    if (read_mode_ == ReadMode::kReadYourWrites) {
      min_epoch = st.token_epoch;
      min_seq = std::max(min_seq, st.token_seq);
    } else {
      min_epoch = region->epoch > staleness_bound_ ? region->epoch - staleness_bound_ : 0;
    }
    if (op->type == MessageType::kGet) {
      wire_type = MessageType::kReplicaGet;
      payload = EncodeReplicaGetRequest(op->key, min_epoch, min_seq);
    } else {
      wire_type = MessageType::kReplicaScan;
      payload = EncodeReplicaScanRequest(op->key, op->limit, min_epoch, min_seq);
    }
    stats_.replica_reads++;
  } else {
    switch (op->type) {
      case MessageType::kPut:
        payload = EncodePutRequest(op->key, op->value, op->trace);
        break;
      case MessageType::kGet:
      case MessageType::kDelete:
        payload = EncodeKeyRequest(op->key, op->trace);
        break;
      case MessageType::kScan:
        payload = EncodeScanRequest(op->key, op->limit, op->trace);
        break;
      default:
        return Status::Internal("bad op type");
    }
  }
  TEBIS_ASSIGN_OR_RETURN(
      op->request_id,
      client->SendRequest(wire_type, region->region_id, payload, op->reply_alloc,
                          static_cast<uint32_t>(map_->version())));
  op->server = target;
  op->attempts++;
  return Status::Ok();
}

StatusOr<TebisClient::OpHandle> TebisClient::PutAsync(Slice key, Slice value) {
  if (batch_size_ > 1) {
    TEBIS_ASSIGN_OR_RETURN(OpHandle handle, StageWrite(MessageType::kPut, key, value));
    stats_.puts++;
    return handle;
  }
  PendingOp op;
  op.type = MessageType::kPut;
  op.key = key.ToString();
  op.value = value.ToString();
  op.reply_alloc = 16;
  op.trace = MaybeSampleTrace();
  if (op.trace != kNoTrace) {
    op.trace_start_ns = NowNanos();
  }
  TEBIS_RETURN_IF_ERROR(Issue(&op));
  stats_.puts++;
  const OpHandle handle = next_handle_++;
  pending_.emplace(handle, std::move(op));
  return handle;
}

StatusOr<TebisClient::OpHandle> TebisClient::StageWrite(MessageType type, Slice key,
                                                        Slice value) {
  if (map_ == nullptr) {
    TEBIS_RETURN_IF_ERROR(RefreshMap());
  }
  const RegionInfo* region = map_->FindRegion(key);
  if (region == nullptr) {
    return Status::Internal("no region owns key " + key.ToString());
  }
  PendingOp op;
  op.type = type;
  op.key = key.ToString();
  op.value = value.ToString();
  op.reply_alloc = 16;
  op.staged = true;
  op.region_id = region->region_id;
  const OpHandle handle = next_handle_++;
  BatchQueue& queue = batch_queues_[region->region_id];
  queue.handles.push_back(handle);
  queue.bytes += op.key.size() + op.value.size();
  const bool full = queue.handles.size() >= batch_size_ || queue.bytes >= batch_bytes_;
  pending_.emplace(handle, std::move(op));
  if (full) {
    TEBIS_RETURN_IF_ERROR(FlushBatchQueue(region->region_id));
  }
  return handle;
}

Status TebisClient::FlushBatchQueue(uint32_t region_id) {
  auto qit = batch_queues_.find(region_id);
  if (qit == batch_queues_.end()) {
    return Status::Ok();
  }
  std::vector<OpHandle> handles = std::move(qit->second.handles);
  batch_queues_.erase(qit);
  if (handles.empty()) {
    return Status::Ok();
  }
  // Re-issues handles[from..] through the single-op path, which owns routing,
  // retries, and failover; an op that cannot even be issued completes with
  // that error.
  auto fallback = [&](size_t from) {
    for (size_t i = from; i < handles.size(); ++i) {
      auto pit = pending_.find(handles[i]);
      if (pit == pending_.end()) {
        continue;
      }
      PendingOp& op = pit->second;
      op.staged = false;
      op.batch_id = 0;
      if (Status s = Issue(&op); !s.ok()) {
        completed_[handles[i]] = OpResult{s, ""};
        pending_.erase(pit);
      }
    }
  };
  if (handles.size() == 1) {
    // A group of one gains nothing from the batch frame; keep the seed
    // single-op wire shape (byte-compat acceptance of PR 9).
    fallback(0);
    return Status::Ok();
  }
  std::vector<KvBatchOp> ops;
  ops.reserve(handles.size());
  for (OpHandle h : handles) {
    PendingOp& op = pending_.at(h);
    op.staged = false;
    ops.push_back(KvBatchOp{op.type == MessageType::kDelete, Slice(op.key), Slice(op.value)});
  }
  // Route the group by its first key. Staging grouped by region under some map
  // version; if the map moved since, the server answers kFlagWrongRegion and
  // the harvest falls back to per-op re-issue, which re-routes each key.
  const RegionInfo* region = map_ == nullptr ? nullptr : map_->FindRegion(ops.front().key);
  RpcClient* client = nullptr;
  if (region != nullptr) {
    if (auto resolved = ClientFor(region->primary); resolved.ok()) {
      client = *resolved;
    }
  }
  if (client == nullptr) {
    stats_.batch_fallbacks++;
    (void)RefreshMap();
    fallback(0);
    return Status::Ok();
  }
  // Sampled per frame (PR 10): the frame is the unit of work on the wire, so
  // one trace id covers the whole group.
  const TraceId frame_trace = MaybeSampleTrace();
  const uint64_t frame_start_ns = frame_trace != kNoTrace ? NowNanos() : 0;
  const std::string payload = EncodeKvBatchRequest(ops, frame_trace);
  // Success replies carry one small status per op; only failures add message
  // strings. An undersized allocation falls back to single-op re-issue.
  const size_t alloc = 64 + 48 * ops.size();
  auto request = client->SendRequest(MessageType::kKvBatch, region->region_id, payload, alloc,
                                     static_cast<uint32_t>(map_->version()));
  if (!request.ok()) {
    stats_.batch_fallbacks++;
    fallback(0);
    return Status::Ok();
  }
  const uint64_t batch_id = next_batch_id_++;
  InflightBatch batch;
  batch.server = region->primary;
  batch.request_id = *request;
  batch.region_id = region->region_id;
  batch.handles = handles;
  batch.trace = frame_trace;
  batch.trace_start_ns = frame_start_ns;
  if (frame_trace != kNoTrace) {
    for (const KvBatchOp& op : ops) {
      batch.trace_bytes += op.key.size() + op.value.size();
    }
  }
  inflight_batches_.emplace(batch_id, std::move(batch));
  for (OpHandle h : handles) {
    PendingOp& op = pending_.at(h);
    op.batch_id = batch_id;
    op.server = region->primary;
    op.attempts++;
  }
  stats_.batches_sent++;
  stats_.batched_ops += handles.size();
  return Status::Ok();
}

Status TebisClient::FlushAllBatches() {
  Status first;
  while (!batch_queues_.empty()) {
    const uint32_t region_id = batch_queues_.begin()->first;
    if (Status s = FlushBatchQueue(region_id); !s.ok() && first.ok()) {
      first = s;
    }
  }
  return first;
}

void TebisClient::HarvestBatch(uint64_t batch_id) {
  auto bit = inflight_batches_.find(batch_id);
  if (bit == inflight_batches_.end()) {
    return;
  }
  InflightBatch batch = std::move(bit->second);
  inflight_batches_.erase(bit);
  StatusOr<RpcReply> reply = Status::Unavailable("server gone");
  if (auto client = ClientFor(batch.server); client.ok()) {
    reply = (*client)->WaitReply(batch.request_id, rpc_timeout_ns_);
  }
  std::vector<KvBatchOpStatus> statuses;
  uint64_t token_epoch = 0;
  uint64_t token_seq = 0;
  bool per_op = false;
  if (reply.ok() &&
      (reply->header.flags & (kFlagError | kFlagWrongRegion | kFlagTruncatedReply)) == 0) {
    per_op = DecodeKvBatchReply(reply->payload, &statuses, &token_epoch, &token_seq).ok() &&
             statuses.size() == batch.handles.size();
  }
  if (!per_op) {
    // The frame failed as a unit — dead server, stale map, fenced primary, or
    // an undersized reply allocation. The single-op path already owns every
    // one of those retries, so re-issue each carried write through it.
    stats_.batch_fallbacks++;
    if (!reply.ok()) {
      stats_.failover_retries++;
      (void)RefreshMap();
    } else if (reply->header.flags & kFlagWrongRegion) {
      stats_.wrong_region_retries++;
      (void)RefreshMap();
    } else if ((reply->header.flags & kFlagError) &&
               reply->payload.rfind("FailedPrecondition", 0) == 0) {
      // A fenced (deposed) primary, §3.5: nothing in the group replicated.
      stats_.failover_retries++;
      (void)RefreshMap();
    }
    for (OpHandle h : batch.handles) {
      auto pit = pending_.find(h);
      if (pit == pending_.end()) {
        continue;
      }
      PendingOp& op = pit->second;
      op.batch_id = 0;
      if (op.attempts >= kMaxAttempts) {
        completed_[h] = OpResult{Status::Unavailable("batched write failed after retries"), ""};
        pending_.erase(pit);
        continue;
      }
      if (Status s = Issue(&op); !s.ok()) {
        completed_[h] = OpResult{s, ""};
        pending_.erase(pit);
      }
    }
    return;
  }
  RecordClientSpan(batch.trace, batch.trace_start_ns, batch.trace_bytes);
  // Fold the commit token (PR 6) once for the whole group.
  RegionReadState& st = read_state_[batch.region_id];
  if (token_epoch > st.token_epoch ||
      (token_epoch == st.token_epoch && token_seq > st.token_seq)) {
    st.token_epoch = token_epoch;
    st.token_seq = token_seq;
  }
  for (size_t i = 0; i < batch.handles.size(); ++i) {
    const KvBatchOpStatus& s = statuses[i];
    Status status =
        s.code == 0 ? Status::Ok() : Status(static_cast<StatusCode>(s.code), s.message);
    completed_[batch.handles[i]] = OpResult{std::move(status), ""};
    pending_.erase(batch.handles[i]);
  }
}

StatusOr<TebisClient::OpHandle> TebisClient::GetAsync(Slice key) {
  PendingOp op;
  op.type = MessageType::kGet;
  op.key = key.ToString();
  op.reply_alloc = default_value_alloc_;
  op.trace = MaybeSampleTrace();
  if (op.trace != kNoTrace) {
    op.trace_start_ns = NowNanos();
  }
  TEBIS_RETURN_IF_ERROR(Issue(&op));
  stats_.gets++;
  const OpHandle handle = next_handle_++;
  pending_.emplace(handle, std::move(op));
  return handle;
}

StatusOr<TebisClient::OpHandle> TebisClient::DeleteAsync(Slice key) {
  if (batch_size_ > 1) {
    TEBIS_ASSIGN_OR_RETURN(OpHandle handle, StageWrite(MessageType::kDelete, key, Slice()));
    stats_.deletes++;
    return handle;
  }
  PendingOp op;
  op.type = MessageType::kDelete;
  op.key = key.ToString();
  op.reply_alloc = 16;
  op.trace = MaybeSampleTrace();
  if (op.trace != kNoTrace) {
    op.trace_start_ns = NowNanos();
  }
  TEBIS_RETURN_IF_ERROR(Issue(&op));
  stats_.deletes++;
  const OpHandle handle = next_handle_++;
  pending_.emplace(handle, std::move(op));
  return handle;
}

TebisClient::OpResult TebisClient::Complete(OpHandle handle) {
  if (auto done = completed_.find(handle); done != completed_.end()) {
    OpResult result = std::move(done->second);
    completed_.erase(done);
    return result;
  }
  auto it = pending_.find(handle);
  if (it == pending_.end()) {
    return OpResult{Status::NotFound("unknown op handle"), ""};
  }
  if (it->second.staged) {
    // Still parked in a batch queue: push the group onto the wire now.
    (void)FlushBatchQueue(it->second.region_id);
    it = pending_.find(handle);
  }
  if (it != pending_.end() && it->second.batch_id != 0) {
    // Rode a kKvBatch frame: harvest it. Either the per-op status lands in
    // completed_, or the fallback re-issued this op through the single-op
    // path and the loop below drives it home.
    HarvestBatch(it->second.batch_id);
    it = pending_.find(handle);
  }
  if (auto done = completed_.find(handle); done != completed_.end()) {
    OpResult result = std::move(done->second);
    completed_.erase(done);
    return result;
  }
  if (it == pending_.end()) {
    return OpResult{Status::NotFound("unknown op handle"), ""};
  }
  PendingOp& op = it->second;
  while (true) {
    auto client = ClientFor(op.server);
    StatusOr<RpcReply> reply = Status::Unavailable("server gone");
    if (client.ok()) {
      reply = (*client)->WaitReply(op.request_id, rpc_timeout_ns_);
    }
    if (!reply.ok()) {
      // The server likely failed before replying. Refresh the map and
      // re-route to the (possibly promoted) new primary (§3.5).
      stats_.failover_retries++;
      if (op.attempts >= kMaxAttempts) {
        pending_.erase(it);
        return OpResult{reply.status(), ""};
      }
      Status s = RefreshMap();
      if (s.ok()) {
        s = Issue(&op);
      }
      if (!s.ok()) {
        pending_.erase(it);
        return OpResult{s, ""};
      }
      continue;
    }
    if (reply->header.flags & kFlagWrongRegion) {
      // Stale map (§3.1): refresh and re-issue.
      stats_.wrong_region_retries++;
      if (op.attempts >= kMaxAttempts) {
        pending_.erase(it);
        return OpResult{Status::Unavailable("too many wrong-region retries"), ""};
      }
      Status s = RefreshMap();
      if (s.ok()) {
        s = Issue(&op);
      }
      if (!s.ok()) {
        pending_.erase(it);
        return OpResult{s, ""};
      }
      continue;
    }
    if (reply->header.flags & kFlagTruncatedReply) {
      // §3.4.1: grow the allocation (persistently) and retry once more.
      stats_.truncated_retries++;
      uint64_t needed = 0;
      if (Status s = DecodeTruncatedReply(reply->payload, &needed); !s.ok()) {
        pending_.erase(it);
        return OpResult{s, ""};
      }
      op.reply_alloc = needed + 64;
      if (op.type == MessageType::kGet) {
        default_value_alloc_ = std::max(default_value_alloc_, op.reply_alloc);
      }
      if (Status s = Issue(&op); !s.ok()) {
        pending_.erase(it);
        return OpResult{s, ""};
      }
      continue;
    }
    if (reply->header.flags & kFlagError) {
      // The payload carries the status string; map NotFound back.
      const std::string& message = reply->payload;
      if (op.replica && message.rfind("FailedPrecondition", 0) == 0) {
        // The replica rejected the read fence (it has not committed up to
        // the client's epoch/sequence yet). Retry against the primary,
        // which by definition satisfies any fence this client could hold.
        stats_.replica_fallbacks++;
        if (op.attempts >= kMaxAttempts) {
          pending_.erase(it);
          return OpResult{Status::Unavailable(message), ""};
        }
        op.force_primary = true;
        if (Status s = Issue(&op); !s.ok()) {
          pending_.erase(it);
          return OpResult{s, ""};
        }
        continue;
      }
      if (message.rfind("Corruption", 0) == 0 && !op.corruption_retried &&
          op.attempts < kMaxAttempts &&
          (op.type == MessageType::kGet || op.type == MessageType::kScan)) {
        // The serving replica hit rotten bytes on its device (PR 8). The same
        // shape as the fenced-primary failover: flip the read to the other
        // side — a replica's corruption retries on the primary; the primary's
        // retries on a leased replica (healthy copies are byte-identical in
        // primary space, so any peer can answer). One flip only: if both
        // sides are rotten, surface the error so repair can be driven.
        stats_.corruption_retries++;
        op.corruption_retried = true;
        if (op.replica) {
          op.force_primary = true;
        } else {
          op.force_replica = true;
        }
        if (Status s = Issue(&op); !s.ok()) {
          pending_.erase(it);
          return OpResult{s, ""};
        }
        continue;
      }
      if (message.rfind("FailedPrecondition", 0) == 0) {
        // A fenced (deposed) primary, §3.5: it still answers, but its epoch
        // is stale and the write was not replicated. Re-route like a failover.
        stats_.failover_retries++;
        if (op.attempts >= kMaxAttempts) {
          pending_.erase(it);
          return OpResult{Status::Unavailable(message), ""};
        }
        Status s = RefreshMap();
        if (s.ok()) {
          s = Issue(&op);
        }
        if (!s.ok()) {
          pending_.erase(it);
          return OpResult{s, ""};
        }
        continue;
      }
      Status status = message.rfind("NotFound", 0) == 0     ? Status::NotFound(message)
                      : message.rfind("Corruption", 0) == 0 ? Status::Corruption(message)
                                                            : Status::Internal(message);
      pending_.erase(it);
      return OpResult{status, ""};
    }
    OpResult result{Status::Ok(), std::move(reply->payload)};
    if (op.replica) {
      // Unwrap the replica reply and fold the replica's visible sequence
      // into the monotonic-reads fence.
      RegionReadState& st = read_state_[op.region_id];
      uint64_t visible_seq = 0;
      if (op.type == MessageType::kGet) {
        Slice value;
        if (Status s = DecodeReplicaGetReply(result.value, &value, &visible_seq); !s.ok()) {
          pending_.erase(it);
          return OpResult{s, ""};
        }
        result.value = value.ToString();
      } else {
        std::vector<KvPair> pairs;
        if (Status s = DecodeReplicaScanReply(result.value, &pairs, &visible_seq); !s.ok()) {
          pending_.erase(it);
          return OpResult{s, ""};
        }
        // Re-encode in the primary scan-reply shape so Scan() decodes
        // uniformly regardless of which replica served.
        result.value = EncodeScanReply(pairs);
      }
      st.observed_seq = std::max(st.observed_seq, visible_seq);
    } else if (op.type == MessageType::kPut || op.type == MessageType::kDelete) {
      // Write replies carry the commit token (PR 6); keep the per-region
      // high-water mark for read-your-writes fences. Absent/short payloads
      // (a pre-token server) leave the state untouched.
      uint64_t token_epoch = 0, token_seq = 0;
      if (DecodeCommitToken(result.value, &token_epoch, &token_seq).ok()) {
        RegionReadState& st = read_state_[op.region_id];
        if (token_epoch > st.token_epoch ||
            (token_epoch == st.token_epoch && token_seq > st.token_seq)) {
          st.token_epoch = token_epoch;
          st.token_seq = token_seq;
        }
      }
    }
    RecordClientSpan(op.trace, op.trace_start_ns, op.key.size() + op.value.size());
    pending_.erase(it);
    return result;
  }
}

TebisClient::OpResult TebisClient::Wait(OpHandle handle) { return Complete(handle); }

Status TebisClient::WaitAll() {
  (void)FlushAllBatches();
  Status first;
  while (!pending_.empty() || !completed_.empty()) {
    const OpHandle handle =
        pending_.empty() ? completed_.begin()->first : pending_.begin()->first;
    OpResult result = Complete(handle);
    if (!result.status.ok() && !result.status.IsNotFound() && first.ok()) {
      first = result.status;
    }
  }
  return first;
}

Status TebisClient::Put(Slice key, Slice value) {
  TEBIS_ASSIGN_OR_RETURN(OpHandle handle, PutAsync(key, value));
  return Wait(handle).status;
}

StatusOr<std::string> TebisClient::Get(Slice key) {
  TEBIS_ASSIGN_OR_RETURN(OpHandle handle, GetAsync(key));
  OpResult result = Wait(handle);
  if (!result.status.ok()) {
    return result.status;
  }
  return std::move(result.value);
}

Status TebisClient::Delete(Slice key) {
  TEBIS_ASSIGN_OR_RETURN(OpHandle handle, DeleteAsync(key));
  return Wait(handle).status;
}

StatusOr<std::vector<KvPair>> TebisClient::Scan(Slice start, uint32_t limit) {
  // A range may span regions: scan region by region, following each region's
  // end key, until the limit is filled or the key space ends.
  std::vector<KvPair> out;
  std::string cursor = start.ToString();
  while (out.size() < limit) {
    PendingOp op;
    op.type = MessageType::kScan;
    op.key = cursor;
    op.limit = limit - static_cast<uint32_t>(out.size());
    op.reply_alloc = std::max<size_t>(default_value_alloc_ * op.limit / 4, 4096);
    op.trace = MaybeSampleTrace();
    if (op.trace != kNoTrace) {
      op.trace_start_ns = NowNanos();
    }
    TEBIS_RETURN_IF_ERROR(Issue(&op));
    stats_.scans++;
    const OpHandle handle = next_handle_++;
    pending_.emplace(handle, std::move(op));
    OpResult result = Complete(handle);
    if (!result.status.ok()) {
      return result.status;
    }
    std::vector<KvPair> pairs;
    TEBIS_RETURN_IF_ERROR(DecodeScanReply(result.value, &pairs));
    out.insert(out.end(), std::make_move_iterator(pairs.begin()),
               std::make_move_iterator(pairs.end()));
    // Continue into the next region, if any.
    const RegionInfo* region = map_->FindRegion(cursor);
    if (region == nullptr || region->end_key.empty()) {
      break;  // last region
    }
    cursor = region->end_key;
  }
  return out;
}

}  // namespace tebis
