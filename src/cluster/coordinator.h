// In-process coordination service standing in for ZooKeeper (paper §3.1,
// §3.5): a hierarchical znode store with sessions, ephemeral nodes (deleted
// when their session expires — the failure detector), sequential nodes (used
// for master election) and one-shot watches.
#ifndef TEBIS_CLUSTER_COORDINATOR_H_
#define TEBIS_CLUSTER_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace tebis {

enum class WatchEventType {
  kCreated,
  kDeleted,
  kDataChanged,
  kChildrenChanged,
};

struct WatchEvent {
  WatchEventType type;
  std::string path;
};

using Watcher = std::function<void(const WatchEvent&)>;

class Coordinator {
 public:
  using SessionId = uint64_t;
  static constexpr SessionId kNoSession = 0;

  Coordinator() = default;
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  SessionId CreateSession();

  // Simulates a client crash / heartbeat loss: all ephemeral nodes of the
  // session are deleted and their watches fire. Idempotent.
  void ExpireSession(SessionId session);
  bool SessionAlive(SessionId session) const;

  struct CreateOptions {
    bool ephemeral = false;
    bool sequential = false;
  };

  // Creates a znode. Parent must exist (except for the root's children).
  // Sequential nodes get a monotonically increasing 10-digit suffix; the
  // actual path is returned through `created_path`.
  Status Create(SessionId session, const std::string& path, const std::string& data,
                const CreateOptions& options, std::string* created_path = nullptr);

  Status Delete(SessionId session, const std::string& path);
  Status Set(const std::string& path, const std::string& data);
  StatusOr<std::string> Get(const std::string& path, Watcher watcher = nullptr);
  bool Exists(const std::string& path, Watcher watcher = nullptr);

  // Children names (not full paths), sorted. `watcher` fires once on the next
  // child create/delete under `path`.
  StatusOr<std::vector<std::string>> List(const std::string& path, Watcher watcher = nullptr);

 private:
  struct Node {
    std::string data;
    SessionId owner = kNoSession;  // non-zero => ephemeral
    uint64_t next_sequence = 0;
  };

  static std::string ParentOf(const std::string& path);
  // Must hold mutex_. Collects watch callbacks to fire after unlock.
  void QueueNodeWatches(const std::string& path, WatchEventType type,
                        std::vector<std::pair<Watcher, WatchEvent>>* out);
  void QueueChildWatches(const std::string& parent,
                         std::vector<std::pair<Watcher, WatchEvent>>* out);
  Status DeleteLocked(const std::string& path,
                      std::vector<std::pair<Watcher, WatchEvent>>* callbacks);
  static void Fire(std::vector<std::pair<Watcher, WatchEvent>>* callbacks);

  mutable std::mutex mutex_;
  std::map<std::string, Node> nodes_;  // sorted: children are a range scan
  std::multimap<std::string, Watcher> node_watches_;
  std::multimap<std::string, Watcher> child_watches_;
  std::map<SessionId, bool> sessions_;
  SessionId next_session_ = 1;
  uint64_t root_sequence_ = 0;
};

}  // namespace tebis

#endif  // TEBIS_CLUSTER_COORDINATOR_H_
