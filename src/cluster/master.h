// The Tebis master (paper §3.1, §3.5): reads the region map, issues open
// region commands with primary/backup roles, watches the coordinator's
// membership (ephemeral nodes) to detect failures, and orchestrates recovery:
//   backup failure  -> replacement backup + full region transfer
//   primary failure -> promote a backup (log-map re-keying, L0 replay),
//                      update the map, then treat as a backup failure
// Multiple Master instances race in a leader election; only the leader acts.
//
// Recovery is crash-safe: every reconfiguration bumps the region's epoch and
// is journaled as a recovery-intent znode *before* the master acts, so a
// standby that wins the election mid-failover rolls the intent forward
// (idempotently — promotion, re-keying and re-attach all tolerate repeats)
// instead of leaving the region half-recovered.
#ifndef TEBIS_CLUSTER_MASTER_H_
#define TEBIS_CLUSTER_MASTER_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/cluster/cluster_scraper.h"
#include "src/cluster/coordinator.h"
#include "src/cluster/region_map.h"
#include "src/cluster/region_server.h"

namespace tebis {

class Master {
 public:
  // `directory` resolves server names to in-process instances (the admin
  // control plane); replacement backups are chosen from it.
  Master(Coordinator* coordinator, std::string name,
         std::map<std::string, RegionServer*> directory);

  Master(const Master&) = delete;
  Master& operator=(const Master&) = delete;

  // Joins the leader election. The lowest sequence node leads; the others
  // watch their predecessor and take over on its death (§3.5 master failure).
  Status Campaign();
  bool IsLeader() const;

  // Leader-only: installs the initial region map — opens all regions with
  // their roles, wires replication channels, distributes the map.
  Status Bootstrap(const RegionMap& map);

  // Leader-only load balancing (§3.1): gracefully moves a region's primary
  // role to one of its current backups. The old primary flushes its tail, the
  // backup is promoted under a bumped epoch (fencing the old primary), and
  // the old primary is demoted to a backup — no data loss. The handover
  // window is not quiesced: a write racing the move fails un-acked (fenced)
  // and is retried by the client against the refreshed map.
  Status MovePrimary(uint32_t region_id, const std::string& new_primary);

  // Simulates master death: expires the session (standbys take over).
  void Fail();

  std::shared_ptr<const RegionMap> current_map() const;

  const std::string& name() const { return name_; }

  // --- metrics federation (PR 10) ---

  // Leader-only: one synchronous scrape fan-out round over every directory
  // server's kStatsScrape RPC (binary format). Builds the scraper on first
  // use. Per-node fetch failures become staleness markers, not errors.
  Status ScrapeCluster();
  // Leader-only: paced background federation at `period_ms`. Idempotent.
  Status EnableClusterScrape(uint64_t period_ms = 1000);
  // Stops the paced thread (keeps the last federated state readable).
  void DisableClusterScrape();
  // The federated cluster document; "" before the scraper ever ran.
  std::string ClusterStatsJson() const;
  // nullptr before the first ScrapeCluster/EnableClusterScrape.
  ClusterScraper* cluster_scraper() { return scraper_.get(); }
  // Test seam: replaces the default RPC fetch. Must be set before the scraper
  // is built (i.e. before the first ScrapeCluster/EnableClusterScrape).
  void set_scrape_fetcher(ClusterScraper::FetchFn fetch);

  // Test support: invoked at named recovery failpoints (e.g.
  // "failover-promoted:<region>", "move-promoted:<region>"). Returning false
  // aborts the recovery at that point, simulating the leader dying with the
  // intent journaled but the reconfiguration unfinished.
  using StepHook = std::function<bool(const std::string&)>;
  void set_step_hook(StepHook hook);

 private:
  // Journaled reconfiguration, persisted under /recovery/r<region_id> before
  // the first mutating step. `epoch` is the generation the new configuration
  // runs at; equal-epoch repeats are accepted by every server-side step, so a
  // resumed intent converges without double-applying destructive work.
  struct RecoveryIntent {
    enum class Kind : uint8_t { kPrimaryFailover = 1, kMovePrimary = 2 };
    Kind kind = Kind::kPrimaryFailover;
    uint32_t region_id = 0;
    std::string old_primary;  // failed (failover) or demoting (move)
    std::string new_primary;  // the server being promoted
    uint64_t epoch = 0;
  };

  void OnBecameLeader();
  void RecheckLeadership();
  void ArmServerWatch();
  void ArmDetachWatch();
  void HandleMembershipChange();
  Status HandleServerFailure(const std::string& failed);
  Status HandlePrimaryFailure(RegionMap* map, uint32_t region_id, const std::string& failed);
  Status HandleBackupFailure(RegionMap* map, uint32_t region_id, const std::string& failed);
  // The promote/re-key/re-attach/replay sequence, written to be idempotent so
  // both the original leader and a resuming standby can run it.
  Status ExecutePrimaryFailover(RegionMap* map, uint32_t region_id, const std::string& failed,
                                const std::string& promoted, uint64_t epoch);
  Status ExecuteMovePrimary(RegionMap* map, uint32_t region_id, const std::string& old_primary,
                            const std::string& new_primary, uint64_t epoch);
  // Rolls forward (or abandons) intents left by a dead leader. Called on
  // leadership acquisition, before membership reconciliation.
  void ResumeRecoveryIntents();
  // Replaces replicas that a primary unilaterally detached (health policy),
  // consuming the /detached records the region servers publish.
  void ReconcileDetachRecords();
  StatusOr<std::string> PickReplacement(const RegionInfo& region,
                                        const std::vector<std::string>& exclude) const;
  Status WriteIntent(const RecoveryIntent& intent);
  void DeleteIntent(uint32_t region_id);
  Status PushMap(const RegionMap& map);
  bool ServerAlive(const std::string& name) const;
  bool Step(const std::string& point);
  // Builds scraper_ (leader-gated) if it does not exist yet; returns it.
  // `period_ms` only applies when this call constructs the scraper.
  StatusOr<ClusterScraper*> EnsureScraper(uint64_t period_ms = 1000);
  // The default fetch: kStatsScrape with the binary format byte over the
  // server's client endpoint, growing the allocation on truncated replies.
  StatusOr<std::string> FetchNodeScrape(const std::string& server);

  Coordinator* const coordinator_;
  const std::string name_;
  std::map<std::string, RegionServer*> directory_;

  Coordinator::SessionId session_ = Coordinator::kNoSession;
  std::string election_node_;

  mutable std::recursive_mutex mutex_;
  bool leader_ = false;
  bool failed_ = false;
  std::shared_ptr<const RegionMap> map_;
  std::function<void()> recheck_;
  StepHook step_hook_;
  // Metrics federation (PR 10). scraper_ is built on first use and survives
  // DisableClusterScrape so the last federated state stays readable.
  std::unique_ptr<ClusterScraper> scraper_;
  ClusterScraper::FetchFn scrape_fetch_;  // null = FetchNodeScrape
};

}  // namespace tebis

#endif  // TEBIS_CLUSTER_MASTER_H_
