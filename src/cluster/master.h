// The Tebis master (paper §3.1, §3.5): reads the region map, issues open
// region commands with primary/backup roles, watches the coordinator's
// membership (ephemeral nodes) to detect failures, and orchestrates recovery:
//   backup failure  -> replacement backup + full region transfer
//   primary failure -> promote a backup (log-map re-keying, L0 replay),
//                      update the map, then treat as a backup failure
// Multiple Master instances race in a leader election; only the leader acts.
#ifndef TEBIS_CLUSTER_MASTER_H_
#define TEBIS_CLUSTER_MASTER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/cluster/coordinator.h"
#include "src/cluster/region_map.h"
#include "src/cluster/region_server.h"

namespace tebis {

class Master {
 public:
  // `directory` resolves server names to in-process instances (the admin
  // control plane); replacement backups are chosen from it.
  Master(Coordinator* coordinator, std::string name,
         std::map<std::string, RegionServer*> directory);

  Master(const Master&) = delete;
  Master& operator=(const Master&) = delete;

  // Joins the leader election. The lowest sequence node leads; the others
  // watch their predecessor and take over on its death (§3.5 master failure).
  Status Campaign();
  bool IsLeader() const;

  // Leader-only: installs the initial region map — opens all regions with
  // their roles, wires replication channels, distributes the map.
  Status Bootstrap(const RegionMap& map);

  // Leader-only load balancing (§3.1): gracefully moves a region's primary
  // role to one of its current backups. The old primary flushes its tail, the
  // backup is promoted, and the old primary is demoted to a backup — no data
  // loss and no full region transfer. The handover window is not quiesced:
  // a write racing the move may fail and must be retried by the client
  // (reads/writes before and after are unaffected).
  Status MovePrimary(uint32_t region_id, const std::string& new_primary);

  // Simulates master death: expires the session (standbys take over).
  void Fail();

  std::shared_ptr<const RegionMap> current_map() const;

  const std::string& name() const { return name_; }

 private:
  void OnBecameLeader();
  void RecheckLeadership();
  void ArmServerWatch();
  void HandleMembershipChange();
  Status HandleServerFailure(const std::string& failed);
  Status HandlePrimaryFailure(RegionMap* map, uint32_t region_id, const std::string& failed);
  Status HandleBackupFailure(RegionMap* map, uint32_t region_id, const std::string& failed);
  StatusOr<std::string> PickReplacement(const RegionInfo& region) const;
  Status PushMap(const RegionMap& map);
  bool ServerAlive(const std::string& name) const;

  Coordinator* const coordinator_;
  const std::string name_;
  std::map<std::string, RegionServer*> directory_;

  Coordinator::SessionId session_ = Coordinator::kNoSession;
  std::string election_node_;

  mutable std::recursive_mutex mutex_;
  bool leader_ = false;
  bool failed_ = false;
  std::shared_ptr<const RegionMap> map_;
  std::function<void()> recheck_;
};

}  // namespace tebis

#endif  // TEBIS_CLUSTER_MASTER_H_
