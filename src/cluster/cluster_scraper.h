// Metrics federation (PR 10): the master-side scrape fan-out. A ClusterScraper
// owns the node list and a fetch function (in production: the kStatsScrape RPC
// with the binary format byte; in tests: any stand-in), pulls every node's
// structured scrape, and merges the snapshots into one cluster document —
// counters summed, gauges labeled per node, histograms merged bucket-wise via
// the mergeable-histogram support, slow-op rings concatenated, and per-node
// health rolled into a cluster red/yellow/green summary.
//
// A node whose fetch fails keeps its last-good snapshot in the merge but is
// marked stale (with a missed-scrape count) in the document — the federation
// analogue of Prometheus staleness markers. ScrapeOnce() runs one fan-out
// round synchronously (the testable core); Start()/Stop() wrap it in a paced
// background thread.
#ifndef TEBIS_CLUSTER_CLUSTER_SCRAPER_H_
#define TEBIS_CLUSTER_CLUSTER_SCRAPER_H_

#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/cluster/stats_wire.h"
#include "src/common/status.h"
#include "src/telemetry/health.h"

namespace tebis {

class ClusterScraper {
 public:
  // Returns the node's binary scrape payload (EncodeNodeScrape) or an error.
  using FetchFn = std::function<StatusOr<std::string>(const std::string& server)>;

  struct Options {
    uint64_t period_ms = 1000;   // paced-thread scrape interval
    int stale_after_misses = 1;  // consecutive failed rounds before stale
  };

  ClusterScraper(std::vector<std::string> servers, FetchFn fetch)
      : ClusterScraper(std::move(servers), std::move(fetch), Options()) {}
  ClusterScraper(std::vector<std::string> servers, FetchFn fetch, Options options);
  ~ClusterScraper();
  ClusterScraper(const ClusterScraper&) = delete;
  ClusterScraper& operator=(const ClusterScraper&) = delete;

  // One synchronous fan-out round. Per-node fetch failures become staleness,
  // not errors; the only failure is a node replying undecodable bytes.
  Status ScrapeOnce();

  // Paced background scraping. Idempotent; Stop() joins the thread.
  void Start();
  void Stop();

  // The federated cluster document (JSON). Empty-ish but well-formed before
  // the first round.
  std::string ClusterJson() const;

  // Every node's samples in one snapshot, each stamped with a `node` label
  // (added when the sample lacks one). The federation-math tests compare this
  // against per-node snapshots directly.
  MetricsSnapshot MergedSnapshot() const;

  struct NodeState {
    bool ever_scraped = false;
    bool stale = false;
    int missed_scrapes = 0;
  };
  NodeState node_state(const std::string& server) const;

  // max(health.node) across nodes; a stale node forces at least yellow.
  int64_t ClusterHealth() const;

  uint64_t rounds() const;

 private:
  struct PerNode {
    NodeScrape last;  // last-good scrape (valid when ever_scraped)
    bool ever_scraped = false;
    int missed = 0;
  };

  bool NodeStaleLocked(const PerNode& node) const {
    return node.missed >= options_.stale_after_misses;
  }
  int64_t ClusterHealthLocked() const;
  int64_t NodeHealthLocked(const PerNode& node) const;

  const std::vector<std::string> servers_;
  const FetchFn fetch_;
  const Options options_;

  mutable std::mutex mutex_;
  std::map<std::string, PerNode> nodes_;
  uint64_t rounds_ = 0;

  std::mutex thread_mutex_;
  std::condition_variable stop_cv_;
  std::thread thread_;
  bool stop_ = false;
};

}  // namespace tebis

#endif  // TEBIS_CLUSTER_CLUSTER_SCRAPER_H_
