// Slow-op log (PR 10): a bounded ring of structured records for any client op
// that exceeded its per-type latency threshold. Each record keeps enough
// context to chase the outlier after the fact — key prefix, region, epoch,
// trace id (when the op was sampled), and the per-stage breakdown from the
// request-trace scope — and the whole ring is exposed through ScrapeJson so
// the stats tool and the federated cluster document can surface it.
//
// Thresholds live in relaxed atomics so the per-op check is a single load;
// a threshold of 0 disables that op type. Recording takes the ring mutex,
// which only happens for ops already slow enough to care about.
#ifndef TEBIS_TELEMETRY_SLOW_OP_H_
#define TEBIS_TELEMETRY_SLOW_OP_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/telemetry/request_trace.h"
#include "src/telemetry/trace.h"

namespace tebis {

enum class SlowOpType : uint8_t { kPut = 0, kGet = 1, kDelete = 2, kScan = 3, kBatch = 4 };
inline constexpr size_t kNumSlowOpTypes = 5;

const char* SlowOpTypeName(SlowOpType type);

// Per-type latency thresholds in nanoseconds; 0 disables the type. Configure
// once at node setup, before traffic.
struct SlowOpPolicy {
  uint64_t put_ns = 0;
  uint64_t get_ns = 0;
  uint64_t delete_ns = 0;
  uint64_t scan_ns = 0;
  uint64_t batch_ns = 0;

  uint64_t ThresholdFor(SlowOpType type) const;
  bool AnyEnabled() const {
    return put_ns != 0 || get_ns != 0 || delete_ns != 0 || scan_ns != 0 || batch_ns != 0;
  }
};

struct SlowOpRecord {
  SlowOpType type = SlowOpType::kPut;
  std::string key_prefix;          // first bytes of the (first) key, for locality triage
  uint32_t region = 0;
  uint64_t epoch = 0;
  TraceId trace = kNoTrace;        // kNoTrace when the op was not sampled
  uint64_t total_ns = 0;
  RequestStageTimings stages;      // zero when the op ran without a trace scope
  uint64_t end_ns = 0;             // NowNanos() when the op completed
};

class SlowOpLog {
 public:
  static constexpr size_t kDefaultCapacity = 128;
  static constexpr size_t kKeyPrefixBytes = 16;

  explicit SlowOpLog(size_t capacity = kDefaultCapacity) : capacity_(capacity) {}
  SlowOpLog(const SlowOpLog&) = delete;
  SlowOpLog& operator=(const SlowOpLog&) = delete;

  void Configure(const SlowOpPolicy& policy);

  // Relaxed per-type threshold; 0 = disabled.
  uint64_t threshold(SlowOpType type) const {
    return thresholds_[static_cast<size_t>(type)].load(std::memory_order_relaxed);
  }

  // Records the op if total_ns exceeded the type's threshold. Returns true
  // when a record was written. `stages` may be nullptr (no trace scope).
  bool MaybeRecord(SlowOpType type, std::string_view key, uint32_t region, uint64_t epoch,
                   TraceId trace, uint64_t total_ns, const RequestStageTimings* stages,
                   uint64_t end_ns);

  std::vector<SlowOpRecord> Snapshot() const;
  uint64_t total() const;    // slow ops ever recorded
  uint64_t dropped() const;  // records overwritten because the ring was full
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  std::atomic<uint64_t> thresholds_[kNumSlowOpTypes] = {};
  mutable std::mutex mutex_;
  std::vector<SlowOpRecord> ring_;
  size_t next_ = 0;
  uint64_t total_ = 0;
};

// JSON array of slow-op records (the "slow_ops" section of ScrapeJson and the
// federated cluster document).
std::string SlowOpsJson(const std::vector<SlowOpRecord>& records);

}  // namespace tebis

#endif  // TEBIS_TELEMETRY_SLOW_OP_H_
