#include "src/telemetry/metrics.h"

#include <algorithm>
#include <cstdio>
#include <functional>

namespace tebis {

std::string CanonicalMetricKey(std::string_view name, const MetricLabels& labels) {
  std::string key(name);
  if (!labels.empty()) {
    MetricLabels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    key += '{';
    for (size_t i = 0; i < sorted.size(); ++i) {
      if (i > 0) {
        key += ',';
      }
      key += sorted[i].first;
      key += '=';
      key += sorted[i].second;
    }
    key += '}';
  }
  return key;
}

namespace {

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
    }
    out->push_back(c);
  }
}

}  // namespace

std::string NodeLabel(const MetricLabels& labels) {
  for (const auto& [key, value] : labels) {
    if (key == "node") {
      return value;
    }
  }
  std::string joined;
  for (const auto& [key, value] : labels) {
    if (!joined.empty()) {
      joined += '/';
    }
    joined += value;
  }
  return joined.empty() ? "local" : joined;
}

bool MetricSample::HasLabel(std::string_view key, std::string_view value_match) const {
  for (const auto& [k, v] : labels) {
    if (k == key && v == value_match) {
      return true;
    }
  }
  return false;
}

uint64_t MetricsSnapshot::Sum(std::string_view name) const {
  uint64_t total = 0;
  for (const MetricSample& sample : samples_) {
    if (sample.name == name) {
      total += static_cast<uint64_t>(sample.value);
    }
  }
  return total;
}

uint64_t MetricsSnapshot::Sum(std::string_view name, std::string_view key,
                              std::string_view value) const {
  uint64_t total = 0;
  for (const MetricSample& sample : samples_) {
    if (sample.name == name && sample.HasLabel(key, value)) {
      total += static_cast<uint64_t>(sample.value);
    }
  }
  return total;
}

const MetricSample* MetricsSnapshot::Find(std::string_view name) const {
  for (const MetricSample& sample : samples_) {
    if (sample.name == name) {
      return &sample;
    }
  }
  return nullptr;
}

const MetricSample* MetricsSnapshot::Find(std::string_view name, std::string_view key,
                                          std::string_view value) const {
  for (const MetricSample& sample : samples_) {
    if (sample.name == name && sample.HasLabel(key, value)) {
      return &sample;
    }
  }
  return nullptr;
}

std::string MetricsSnapshot::Json(int indent) const {
  const std::string pad(static_cast<size_t>(indent), ' ');
  std::string out = "{\n";
  bool first = true;
  auto emit = [&](const std::string& key, const std::string& value_text) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += pad;
    out += '"';
    AppendJsonEscaped(&out, key);
    out += "\": ";
    out += value_text;
  };
  for (const MetricSample& sample : samples_) {
    const std::string key = CanonicalMetricKey(sample.name, sample.labels);
    if (sample.kind == InstrumentKind::kHistogram) {
      emit(key + "_count", std::to_string(sample.histogram.count()));
      if (sample.histogram.count() > 0) {
        emit(key + "_p50", std::to_string(sample.histogram.Percentile(50)));
        emit(key + "_p99", std::to_string(sample.histogram.Percentile(99)));
        emit(key + "_max", std::to_string(sample.histogram.max()));
      }
      if (!sample.exemplars.empty()) {
        // String value ("0x<trace>@<value>,...") so line-oriented consumers
        // (tebis_stats.py) parse it without a full JSON parser.
        std::string text;
        char buf[64];
        for (const HistogramExemplar& e : sample.exemplars) {
          snprintf(buf, sizeof(buf), "%s0x%llx@%llu", text.empty() ? "" : ",",
                   static_cast<unsigned long long>(e.trace),
                   static_cast<unsigned long long>(e.value));
          text += buf;
        }
        emit(key + "_exemplars", "\"" + text + "\"");
      }
    } else {
      emit(key, std::to_string(sample.value));
    }
  }
  out += "\n}";
  return out;
}

MetricsRegistry::Entry* MetricsRegistry::GetOrCreate(std::string_view name,
                                                     const MetricLabels& labels,
                                                     InstrumentKind kind) {
  std::string key = CanonicalMetricKey(name, labels);
  // Kinds share one namespace: suffix the key so a counter and a histogram
  // with the same name cannot alias (a config error, not a crash).
  key += kind == InstrumentKind::kCounter ? "#c"
         : kind == InstrumentKind::kGauge ? "#g"
                                          : "#h";
  Shard& shard = shards_[std::hash<std::string>{}(key) % kShards];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    Entry entry;
    entry.name = std::string(name);
    entry.labels = labels;
    std::sort(entry.labels.begin(), entry.labels.end());
    entry.kind = kind;
    switch (kind) {
      case InstrumentKind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case InstrumentKind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case InstrumentKind::kHistogram:
        entry.histogram = std::make_unique<HistogramInstrument>();
        break;
    }
    it = shard.entries.emplace(std::move(key), std::move(entry)).first;
  }
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(std::string_view name, const MetricLabels& labels) {
  return GetOrCreate(name, labels, InstrumentKind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, const MetricLabels& labels) {
  return GetOrCreate(name, labels, InstrumentKind::kGauge)->gauge.get();
}

HistogramInstrument* MetricsRegistry::GetHistogram(std::string_view name,
                                                   const MetricLabels& labels) {
  return GetOrCreate(name, labels, InstrumentKind::kHistogram)->histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, entry] : shard.entries) {
      MetricSample sample;
      sample.name = entry.name;
      sample.labels = entry.labels;
      sample.kind = entry.kind;
      switch (entry.kind) {
        case InstrumentKind::kCounter:
          sample.value = static_cast<int64_t>(entry.counter->Value());
          break;
        case InstrumentKind::kGauge:
          sample.value = entry.gauge->Value();
          break;
        case InstrumentKind::kHistogram:
          sample.histogram = entry.histogram->Snapshot();
          sample.exemplars = entry.histogram->Exemplars();
          break;
      }
      snapshot.Add(std::move(sample));
    }
  }
  return snapshot;
}

}  // namespace tebis
