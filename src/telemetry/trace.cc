#include "src/telemetry/trace.h"

#include <cinttypes>
#include <cstdio>
#include <map>

namespace tebis {

void TraceBuffer::Record(SpanRecord span) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.size() >= capacity_) {
    EvictOldestTraceLocked();
  }
  trace_counts_[span.trace]++;
  spans_.push_back(std::move(span));
}

void TraceBuffer::EvictOldestTraceLocked() {
  const TraceId victim = spans_.front().trace;
  size_t removed = 0;
  for (auto it = spans_.begin(); it != spans_.end();) {
    if (it->trace == victim) {
      it = spans_.erase(it);
      removed++;
    } else {
      ++it;
    }
  }
  trace_counts_.erase(victim);
  evicted_ += removed;
}

std::vector<SpanRecord> TraceBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<SpanRecord>(spans_.begin(), spans_.end());
}

uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evicted_;
}

std::string ChromeTraceJson(const std::vector<SpanRecord>& spans) {
  std::map<std::string, int> pids;
  for (const SpanRecord& span : spans) {
    pids.emplace(span.node, static_cast<int>(pids.size()) + 1);
  }
  std::string out = "{\"traceEvents\":[\n";
  char buf[512];
  bool first = true;
  for (const auto& [node, pid] : pids) {
    snprintf(buf, sizeof(buf),
             "%s{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
             "\"args\":{\"name\":\"%s\"}}",
             first ? "" : ",\n", pid, node.c_str());
    out += buf;
    first = false;
  }
  for (const SpanRecord& span : spans) {
    const double ts_us = static_cast<double>(span.start_ns) / 1000.0;
    const double dur_us =
        static_cast<double>(span.end_ns > span.start_ns ? span.end_ns - span.start_ns : 0) /
        1000.0;
    snprintf(buf, sizeof(buf),
             "%s{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":1,\"ts\":%.3f,"
             "\"dur\":%.3f,\"args\":{\"trace\":\"0x%" PRIx64 "\",\"compaction\":%" PRIu64
             ",\"src_level\":%d,\"dst_level\":%d,\"bytes\":%" PRIu64 "}}",
             first ? "" : ",\n", span.name, pids[span.node], ts_us, dur_us, span.trace,
             span.compaction_id, span.src_level, span.dst_level, span.bytes);
    out += buf;
    first = false;
  }
  out += "\n]}";
  return out;
}

}  // namespace tebis
