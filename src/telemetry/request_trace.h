// Thread-local request-trace context (PR 10). A sampled client request gets a
// trace id that must reach the engine apply, the group-commit doorbell, and
// the replication fabric without threading a TraceId parameter through every
// signature on the write path. Instead, the dispatch site (RegionServer's op
// handler, or SimCluster's client-facing calls) installs a ScopedRequestTrace
// for the duration of the op; downstream layers read the current trace and
// accumulate per-stage timings through the free functions below.
//
// When no scope is installed (the common case: unsampled ops, standalone
// stores, compaction threads) CurrentRequestTrace() costs one thread-local
// load and returns kNoTrace, so the hot path stays branch-predictable.
//
// Stage timings are *inclusive*, matching the cluster CPU-breakdown
// convention elsewhere in the repo: the doorbell fan-out runs inside the
// engine apply (the value-log observer fires synchronously), so
// engine_ns covers doorbell_ns rather than excluding it.
#ifndef TEBIS_TELEMETRY_REQUEST_TRACE_H_
#define TEBIS_TELEMETRY_REQUEST_TRACE_H_

#include <cstdint>

#include "src/telemetry/trace.h"

namespace tebis {

struct RequestStageTimings {
  uint64_t engine_ns = 0;         // KvStore apply (includes the doorbell)
  uint64_t doorbell_ns = 0;       // replication fan-out on the primary
  uint64_t backup_commit_ns = 0;  // tagged fabric write landing on the backup
};

// RAII: installs `trace` as the calling thread's current request trace and
// restores the previous scope (scopes nest, e.g. a batch frame around a
// per-op fallback) on destruction.
class ScopedRequestTrace {
 public:
  explicit ScopedRequestTrace(TraceId trace);
  ~ScopedRequestTrace();
  ScopedRequestTrace(const ScopedRequestTrace&) = delete;
  ScopedRequestTrace& operator=(const ScopedRequestTrace&) = delete;

  TraceId trace() const { return trace_; }
  const RequestStageTimings& stages() const { return stages_; }
  RequestStageTimings* mutable_stages() { return &stages_; }

 private:
  ScopedRequestTrace* const prev_;
  const TraceId trace_;
  RequestStageTimings stages_;
};

// The calling thread's current request trace id, or kNoTrace when no scope is
// installed (or the installed scope carries kNoTrace — a slow-op-only scope).
TraceId CurrentRequestTrace();

// Stage accumulator of the innermost scope, or nullptr when none is
// installed. Callers use nullness to skip clock reads entirely on untraced
// paths.
RequestStageTimings* CurrentRequestStages();

}  // namespace tebis

#endif  // TEBIS_TELEMETRY_REQUEST_TRACE_H_
