#include "src/telemetry/telemetry.h"

namespace tebis {

void Telemetry::AddCollector(std::function<void(MetricsSnapshot*)> collector) {
  std::lock_guard<std::mutex> lock(collectors_mutex_);
  collectors_.push_back(std::move(collector));
}

void Telemetry::EnableHealthWatchdog(HealthThresholds thresholds) {
  auto watchdog = std::make_unique<HealthWatchdog>(thresholds);
  HealthWatchdog* raw = watchdog.get();
  {
    std::lock_guard<std::mutex> lock(collectors_mutex_);
    if (watchdog_ != nullptr) {
      return;  // already enabled; keep the original baseline
    }
    watchdog_ = std::move(watchdog);
  }
  // The watchdog's baseline is guarded by collectors_mutex_ (collectors run
  // serialized under it in Snapshot).
  AddCollector([raw](MetricsSnapshot* snapshot) { raw->Evaluate(snapshot); });
}

MetricsSnapshot Telemetry::Snapshot() const {
  MetricsSnapshot snapshot = metrics_.Snapshot();
  std::lock_guard<std::mutex> lock(collectors_mutex_);
  for (const auto& collector : collectors_) {
    collector(&snapshot);
  }
  return snapshot;
}

std::string Telemetry::ScrapeJson(const std::string& node) const {
  std::string out = "{\n\"node\": \"" + node + "\",\n\"metrics\": ";
  out += Snapshot().Json();
  out += ",\n\"spans\": ";
  out += ChromeTraceJson(traces_.Snapshot());
  out += ",\n\"slow_ops\": ";
  out += SlowOpsJson(slow_ops_.Snapshot());
  out += "\n}";
  return out;
}

}  // namespace tebis
