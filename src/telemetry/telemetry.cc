#include "src/telemetry/telemetry.h"

namespace tebis {

void Telemetry::AddCollector(std::function<void(MetricsSnapshot*)> collector) {
  std::lock_guard<std::mutex> lock(collectors_mutex_);
  collectors_.push_back(std::move(collector));
}

MetricsSnapshot Telemetry::Snapshot() const {
  MetricsSnapshot snapshot = metrics_.Snapshot();
  std::lock_guard<std::mutex> lock(collectors_mutex_);
  for (const auto& collector : collectors_) {
    collector(&snapshot);
  }
  return snapshot;
}

std::string Telemetry::ScrapeJson(const std::string& node) const {
  std::string out = "{\n\"node\": \"" + node + "\",\n\"metrics\": ";
  out += Snapshot().Json();
  out += ",\n\"spans\": ";
  out += ChromeTraceJson(traces_.Snapshot());
  out += "\n}";
  return out;
}

}  // namespace tebis
