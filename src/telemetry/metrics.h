// Unified metrics plane (PR 5): a lock-sharded registry of named instruments
// — monotonic counters, gauges, and mergeable histograms — each identified by
// (name, labels). Every pre-existing `*Stats` struct in lsm/replication/net/
// cluster is a thin view over these instruments: hot paths update atomics,
// and a scrape walks the registry for a consistent snapshot instead of each
// harness hand-plucking struct fields.
//
// Naming scheme (DESIGN.md §6): dotted `<subsystem>.<counter>` names —
// `kv.puts`, `repl.index_bytes_shipped`, `backup.rewrite_cpu_ns` — with low-
// cardinality labels drawn from {node, region, role, level, stream, backup}.
// Label values must come from configuration-bounded sets (server names,
// level numbers), never from keys or per-operation data.
#ifndef TEBIS_TELEMETRY_METRICS_H_
#define TEBIS_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/histogram.h"
#include "src/telemetry/trace.h"

namespace tebis {

// Ordered (key, value) pairs; kept sorted by key in the registry's canonical
// form so {a=1,b=2} and {b=2,a=1} name the same instrument.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

// The `node` label if present, else all label values joined with '/', else
// "local". Used to stamp trace spans with the emitting node.
std::string NodeLabel(const MetricLabels& labels);

// Canonical instrument key: name + sorted labels, `kv.puts{node=s0,region=r3}`.
// Shared by the registry, the snapshot JSON, and the cluster federation layer
// so one key format names an instrument everywhere.
std::string CanonicalMetricKey(std::string_view name, const MetricLabels& labels);

// Monotonic counter. Relaxed atomics: counters order nothing; the consistency
// a snapshot needs is per-instrument atomicity, which the load provides.
class Counter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time value (queue depths, in-flight bytes, high-water marks).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  // Monotonic high-water mark (CAS loop).
  void SetMax(int64_t value) {
    int64_t seen = value_.load(std::memory_order_relaxed);
    while (value > seen &&
           !value_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Exemplar (PR 10): the trace id of a sampled request that landed a value in
// this histogram, so a tail-latency bucket links back to the trace tree that
// produced it. A small ring keeps the most recent few.
struct HistogramExemplar {
  TraceId trace = kNoTrace;
  uint64_t value = 0;
};

// Mergeable distribution backed by common/Histogram. Mutex-guarded: Record is
// off the put fast path (latencies are recorded by the harness; durations by
// compaction jobs), so a per-instrument lock is cheap and keeps Histogram's
// bucket array coherent.
class HistogramInstrument {
 public:
  static constexpr size_t kMaxExemplars = 4;

  void Record(uint64_t value_ns, TraceId exemplar_trace = kNoTrace) {
    std::lock_guard<std::mutex> lock(mutex_);
    histogram_.Record(value_ns);
    if (exemplar_trace != kNoTrace) {
      exemplars_[next_exemplar_ % kMaxExemplars] = {exemplar_trace, value_ns};
      next_exemplar_++;
    }
  }
  Histogram Snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return histogram_;
  }
  // Most recent exemplars, oldest first (at most kMaxExemplars).
  std::vector<HistogramExemplar> Exemplars() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<HistogramExemplar> out;
    const size_t n = next_exemplar_ < kMaxExemplars ? next_exemplar_ : kMaxExemplars;
    for (size_t i = 0; i < n; ++i) {
      out.push_back(exemplars_[(next_exemplar_ - n + i) % kMaxExemplars]);
    }
    return out;
  }

 private:
  mutable std::mutex mutex_;
  Histogram histogram_;
  HistogramExemplar exemplars_[kMaxExemplars] = {};
  size_t next_exemplar_ = 0;
};

enum class InstrumentKind { kCounter, kGauge, kHistogram };

struct MetricSample {
  std::string name;
  MetricLabels labels;
  InstrumentKind kind = InstrumentKind::kCounter;
  // Counter value or gauge value (gauges may be negative; stored signed).
  int64_t value = 0;
  Histogram histogram;                       // kHistogram only
  std::vector<HistogramExemplar> exemplars;  // kHistogram only; often empty

  bool HasLabel(std::string_view key, std::string_view value_match) const;
};

// A consistent point-in-time walk of the registry: every sample is an atomic
// read of its instrument, and instruments registered before the walk began
// are all present exactly once.
class MetricsSnapshot {
 public:
  void Add(MetricSample sample) { samples_.push_back(std::move(sample)); }
  const std::vector<MetricSample>& samples() const { return samples_; }

  // Sum of `name` across all label sets (0 if absent).
  uint64_t Sum(std::string_view name) const;
  // Sum restricted to samples carrying label `key` == `value`.
  uint64_t Sum(std::string_view name, std::string_view key, std::string_view value) const;
  // First sample matching name (+ optional label filter); nullptr if none.
  const MetricSample* Find(std::string_view name) const;
  const MetricSample* Find(std::string_view name, std::string_view key,
                           std::string_view value) const;

  // {"name{k=v,...}": value, ...} — histograms expand to _count/_p50/_p99/_max
  // plus an `_exemplars` string ("0x<trace>@<value>,...") when exemplars exist.
  std::string Json(int indent = 2) const;

 private:
  std::vector<MetricSample> samples_;
};

// Lock-sharded get-or-create registry. Instrument pointers are stable for the
// registry's lifetime, so call sites resolve once at construction and update
// lock-free afterwards. Shards are keyed by a hash of the canonical
// "name{k=v,...}" string; a snapshot locks one shard at a time.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name, const MetricLabels& labels = {});
  Gauge* GetGauge(std::string_view name, const MetricLabels& labels = {});
  HistogramInstrument* GetHistogram(std::string_view name, const MetricLabels& labels = {});

  MetricsSnapshot Snapshot() const;

 private:
  struct Entry {
    std::string name;
    MetricLabels labels;
    InstrumentKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramInstrument> histogram;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::map<std::string, Entry> entries;  // canonical key -> instrument
  };
  static constexpr size_t kShards = 16;

  Entry* GetOrCreate(std::string_view name, const MetricLabels& labels, InstrumentKind kind);

  Shard shards_[kShards];
};

}  // namespace tebis

#endif  // TEBIS_TELEMETRY_METRICS_H_
