#include "src/telemetry/health.h"

#include <algorithm>

namespace tebis {

const char* HealthColorName(int64_t color) {
  switch (color) {
    case kHealthGreen:
      return "green";
    case kHealthYellow:
      return "yellow";
    default:
      return "red";
  }
}

void HealthWatchdog::Evaluate(MetricsSnapshot* snapshot) {
  Baseline now;
  now.valid = true;
  now.stall_ns = snapshot->Sum("kv.write_stall_ns") + snapshot->Sum("repl.flow_wait_ns");
  now.queue_wait_ns = snapshot->Sum("kv.compaction_queue_wait_ns");
  now.corruptions = snapshot->Sum("integrity.corruptions_found");
  now.detached = snapshot->Sum("repl.backups_detached");
  now.fence_errors = snapshot->Sum("repl.fence_errors");
  const uint64_t quarantined = snapshot->Sum("integrity.quarantined_levels");

  auto delta = [](uint64_t cur, uint64_t prev) { return cur > prev ? cur - prev : 0; };
  // First evaluation: no baseline window, so counter deltas read as zero.
  const Baseline base = prev_.valid ? prev_ : now;

  int64_t flow = kHealthGreen;
  const uint64_t stall_delta = delta(now.stall_ns, base.stall_ns);
  if (stall_delta >= thresholds_.stall_ns_red) {
    flow = kHealthRed;
  } else if (stall_delta >= thresholds_.stall_ns_yellow) {
    flow = kHealthYellow;
  }

  int64_t compaction = kHealthGreen;
  const uint64_t queue_delta = delta(now.queue_wait_ns, base.queue_wait_ns);
  if (queue_delta >= thresholds_.queue_wait_ns_red) {
    compaction = kHealthRed;
  } else if (queue_delta >= thresholds_.queue_wait_ns_yellow) {
    compaction = kHealthYellow;
  }

  // Quarantined levels are an absolute signal (data currently unreadable on
  // this node); new scrub finds alone are yellow — scrub repairs in place.
  int64_t integrity = kHealthGreen;
  if (quarantined > 0) {
    integrity = kHealthRed;
  } else if (delta(now.corruptions, base.corruptions) > 0) {
    integrity = kHealthYellow;
  }

  int64_t replication = kHealthGreen;
  const uint64_t detach_delta = delta(now.detached, base.detached);
  if (detach_delta >= thresholds_.detached_backups_red) {
    replication = kHealthRed;
  } else if (detach_delta > 0 || delta(now.fence_errors, base.fence_errors) > 0) {
    replication = kHealthYellow;
  }

  prev_ = now;

  auto publish = [snapshot](const char* name, int64_t value) {
    MetricSample sample;
    sample.name = name;
    sample.kind = InstrumentKind::kGauge;
    sample.value = value;
    snapshot->Add(std::move(sample));
  };
  publish("health.flow_control", flow);
  publish("health.compaction", compaction);
  publish("health.integrity", integrity);
  publish("health.replication", replication);
  publish("health.node", std::max({flow, compaction, integrity, replication}));
}

}  // namespace tebis
