#include "src/telemetry/request_trace.h"

namespace tebis {

namespace {
thread_local ScopedRequestTrace* tls_scope = nullptr;
}  // namespace

ScopedRequestTrace::ScopedRequestTrace(TraceId trace) : prev_(tls_scope), trace_(trace) {
  tls_scope = this;
}

ScopedRequestTrace::~ScopedRequestTrace() { tls_scope = prev_; }

TraceId CurrentRequestTrace() { return tls_scope == nullptr ? kNoTrace : tls_scope->trace(); }

RequestStageTimings* CurrentRequestStages() {
  return tls_scope == nullptr ? nullptr : tls_scope->mutable_stages();
}

}  // namespace tebis
