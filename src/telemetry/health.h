// Health watchdogs (PR 10): per-node detectors layered over the instruments
// the subsystems already publish, run at scrape time as a Telemetry collector.
// Each detector compares the current registry snapshot against the previous
// evaluation (deltas for counters, absolute values for gauges) and publishes
// a `health.*` gauge: 0 = green, 1 = yellow, 2 = red. The federated cluster
// view rolls per-node `health.node` into one red/yellow/green summary.
//
// Detectors and their inputs:
//   health.flow_control — kv.write_stall_ns + repl.flow_wait_ns delta
//   health.compaction   — kv.compaction_queue_wait_ns delta
//   health.integrity    — integrity.corruptions_found delta (yellow) and
//                         integrity.quarantined_levels gauge (red)
//   health.replication  — repl.backups_detached / repl.fence_errors deltas
//   health.node         — max of the above
#ifndef TEBIS_TELEMETRY_HEALTH_H_
#define TEBIS_TELEMETRY_HEALTH_H_

#include <cstdint>

#include "src/telemetry/metrics.h"

namespace tebis {

inline constexpr int64_t kHealthGreen = 0;
inline constexpr int64_t kHealthYellow = 1;
inline constexpr int64_t kHealthRed = 2;

const char* HealthColorName(int64_t color);

// Thresholds are per evaluation interval (one scrape-to-scrape window).
struct HealthThresholds {
  uint64_t stall_ns_yellow = 1'000'000;         // any meaningful stall time
  uint64_t stall_ns_red = 500'000'000;          // half a second stalled per window
  uint64_t queue_wait_ns_yellow = 100'000'000;  // compactions queueing behind the pool
  uint64_t queue_wait_ns_red = 5'000'000'000;
  uint64_t detached_backups_red = 2;            // detaches this window; 1 detach = yellow
};

// Stateful scrape-time collector. Install exactly once per Telemetry plane
// (Telemetry::EnableHealthWatchdog); Telemetry's collector mutex serializes
// Evaluate, so prev_ needs no lock of its own.
class HealthWatchdog {
 public:
  explicit HealthWatchdog(HealthThresholds thresholds = {}) : thresholds_(thresholds) {}
  HealthWatchdog(const HealthWatchdog&) = delete;
  HealthWatchdog& operator=(const HealthWatchdog&) = delete;

  // Appends the health.* gauge samples computed from `snapshot` (which holds
  // the registry walk that just completed) and the previous evaluation. The
  // first evaluation has no baseline and reports green unless an absolute
  // signal (quarantined levels) is already raised.
  void Evaluate(MetricsSnapshot* snapshot);

 private:
  struct Baseline {
    bool valid = false;
    uint64_t stall_ns = 0;
    uint64_t queue_wait_ns = 0;
    uint64_t corruptions = 0;
    uint64_t detached = 0;
    uint64_t fence_errors = 0;
  };

  const HealthThresholds thresholds_;
  Baseline prev_;
};

}  // namespace tebis

#endif  // TEBIS_TELEMETRY_HEALTH_H_
