#include "src/telemetry/slow_op.h"

#include <cinttypes>
#include <cstdio>

namespace tebis {

const char* SlowOpTypeName(SlowOpType type) {
  switch (type) {
    case SlowOpType::kPut:
      return "put";
    case SlowOpType::kGet:
      return "get";
    case SlowOpType::kDelete:
      return "delete";
    case SlowOpType::kScan:
      return "scan";
    case SlowOpType::kBatch:
      return "batch";
  }
  return "unknown";
}

uint64_t SlowOpPolicy::ThresholdFor(SlowOpType type) const {
  switch (type) {
    case SlowOpType::kPut:
      return put_ns;
    case SlowOpType::kGet:
      return get_ns;
    case SlowOpType::kDelete:
      return delete_ns;
    case SlowOpType::kScan:
      return scan_ns;
    case SlowOpType::kBatch:
      return batch_ns;
  }
  return 0;
}

void SlowOpLog::Configure(const SlowOpPolicy& policy) {
  for (size_t i = 0; i < kNumSlowOpTypes; ++i) {
    thresholds_[i].store(policy.ThresholdFor(static_cast<SlowOpType>(i)),
                         std::memory_order_relaxed);
  }
}

bool SlowOpLog::MaybeRecord(SlowOpType type, std::string_view key, uint32_t region,
                            uint64_t epoch, TraceId trace, uint64_t total_ns,
                            const RequestStageTimings* stages, uint64_t end_ns) {
  const uint64_t limit = threshold(type);
  if (limit == 0 || total_ns < limit || capacity_ == 0) {
    return false;
  }
  SlowOpRecord record;
  record.type = type;
  record.key_prefix.assign(key.substr(0, kKeyPrefixBytes));
  record.region = region;
  record.epoch = epoch;
  record.trace = trace;
  record.total_ns = total_ns;
  if (stages != nullptr) {
    record.stages = *stages;
  }
  record.end_ns = end_ns;
  std::lock_guard<std::mutex> lock(mutex_);
  total_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[next_] = std::move(record);
    next_ = (next_ + 1) % capacity_;
  }
  return true;
}

std::vector<SlowOpRecord> SlowOpLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SlowOpRecord> out;
  out.reserve(ring_.size());
  // Once full, next_ points at the oldest slot.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

uint64_t SlowOpLog::total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

uint64_t SlowOpLog::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

namespace {
void AppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20 || static_cast<unsigned char>(c) >= 0x7f) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned char>(c));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}
}  // namespace

std::string SlowOpsJson(const std::vector<SlowOpRecord>& records) {
  std::string out = "[";
  char buf[320];
  bool first = true;
  for (const SlowOpRecord& r : records) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"op\": \"";
    out += SlowOpTypeName(r.type);
    out += "\", \"key_prefix\": \"";
    AppendEscaped(&out, r.key_prefix);
    snprintf(buf, sizeof(buf),
             "\", \"region\": %" PRIu32 ", \"epoch\": %" PRIu64 ", \"trace\": \"0x%" PRIx64
             "\", \"total_ns\": %" PRIu64 ", \"engine_ns\": %" PRIu64 ", \"doorbell_ns\": %" PRIu64
             ", \"backup_commit_ns\": %" PRIu64 ", \"end_ns\": %" PRIu64 "}",
             r.region, r.epoch, r.trace, r.total_ns, r.stages.engine_ns, r.stages.doorbell_ns,
             r.stages.backup_commit_ns, r.end_ns);
    out += buf;
  }
  out += first ? "]" : "\n]";
  return out;
}

}  // namespace tebis
