// The per-node telemetry plane: one MetricsRegistry + one span TraceBuffer,
// shared by every store/region object a node hosts (each stamped with unique
// labels), plus scrape-time collectors for subsystems whose hot-path counters
// stay native (IoStats, page caches) and are sampled live instead of
// migrated. PR 10 adds a bounded slow-op log and an optional health watchdog
// whose `health.*` gauges ride every snapshot. SimCluster and RegionServer
// each own one; a standalone KvStore creates a private one so its stats()
// view stays per-store.
#ifndef TEBIS_TELEMETRY_TELEMETRY_H_
#define TEBIS_TELEMETRY_TELEMETRY_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/telemetry/health.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/slow_op.h"
#include "src/telemetry/trace.h"

namespace tebis {

class Telemetry {
 public:
  // `trace_capacity` bounds the span ring; 0 disables tracing (standalone
  // default — the overhead A/B's "off" arm).
  explicit Telemetry(size_t trace_capacity = 0) : traces_(trace_capacity) {}
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  MetricsRegistry* metrics() { return &metrics_; }
  TraceBuffer* traces() { return &traces_; }
  SlowOpLog* slow_ops() { return &slow_ops_; }
  const SlowOpLog* slow_ops() const { return &slow_ops_; }

  // Sets the per-type slow-op thresholds. Call at node setup, before traffic.
  void ConfigureSlowOps(const SlowOpPolicy& policy) { slow_ops_.Configure(policy); }

  // Installs the health watchdog as a scrape-time collector. Call at most
  // once per plane, at node setup.
  void EnableHealthWatchdog(HealthThresholds thresholds = {});

  // Collectors run during Snapshot() and append samples for state that lives
  // outside the registry. The owner must guarantee whatever the collector
  // touches outlives this Telemetry (both are owned by the same node object).
  void AddCollector(std::function<void(MetricsSnapshot*)> collector);

  // Registry walk + collectors.
  MetricsSnapshot Snapshot() const;

  // Scrape payload: {"node":..., "metrics":{...}, "spans":[chrome events],
  // "slow_ops":[...]}.
  std::string ScrapeJson(const std::string& node) const;

 private:
  MetricsRegistry metrics_;
  TraceBuffer traces_;
  SlowOpLog slow_ops_;
  mutable std::mutex collectors_mutex_;
  std::vector<std::function<void(MetricsSnapshot*)>> collectors_;
  std::unique_ptr<HealthWatchdog> watchdog_;  // set once by EnableHealthWatchdog
};

}  // namespace tebis

#endif  // TEBIS_TELEMETRY_TELEMETRY_H_
