// Pipeline span tracing (PR 5): every compaction the KvStore scheduler claims
// gets a trace id derived from (replication epoch, shipping stream id) — the
// two values already stamped on every shipped wire message (flush/begin/
// segment/end), so the backup reconstructs the primary's trace id without any
// wire-format change and attaches its rewrite/commit spans to the same trace.
//
// Spans land in a bounded per-node ring buffer (oldest overwritten) and dump
// as chrome://tracing "complete" events. A stream id is reused across
// compactions, so within one epoch a trace id recurs over time; spans carry
// the compaction id to disambiguate when a capture window spans reuse.
#ifndef TEBIS_TELEMETRY_TRACE_H_
#define TEBIS_TELEMETRY_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace tebis {

using TraceId = uint64_t;
inline constexpr TraceId kNoTrace = 0;

// (epoch+1) << 32 | stream: nonzero for every valid stream (epoch 0 is the
// standalone/SimCluster configuration), identical on both ends of the wire.
inline TraceId MakeTraceId(uint64_t epoch, uint32_t stream) {
  return ((epoch + 1) << 32) | stream;
}

struct SpanRecord {
  TraceId trace = kNoTrace;
  uint64_t compaction_id = 0;
  const char* name = "";  // static string ("claim", "merge_build", ...)
  std::string node;       // emitting node (NodeLabel of the owner's labels)
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  int src_level = -1;
  int dst_level = -1;
  uint64_t bytes = 0;  // payload size for ship/rewrite spans
};

// Bounded mutex-guarded ring. Capacity 0 disables recording entirely — the
// telemetry-overhead A/B's "off" arm and the default for standalone stores;
// callers branch on enabled() so a disabled buffer costs one load per span.
class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity) : capacity_(capacity) {}
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  bool enabled() const { return capacity_ != 0; }
  size_t capacity() const { return capacity_; }

  void Record(SpanRecord span);

  // Recorded spans, oldest first. Empty when disabled.
  std::vector<SpanRecord> Snapshot() const;

  // Spans overwritten because the ring was full.
  uint64_t dropped() const;

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;
  size_t next_ = 0;       // slot the next span lands in once the ring is full
  uint64_t total_ = 0;    // spans ever recorded
};

// chrome://tracing JSON ("X" complete events, ts/dur in microseconds). Each
// distinct node becomes a pid with a process_name metadata record; span args
// carry trace id, compaction id, levels, and bytes.
std::string ChromeTraceJson(const std::vector<SpanRecord>& spans);

}  // namespace tebis

#endif  // TEBIS_TELEMETRY_TRACE_H_
