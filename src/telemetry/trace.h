// Pipeline span tracing (PR 5): every compaction the KvStore scheduler claims
// gets a trace id derived from (replication epoch, shipping stream id) — the
// two values already stamped on every shipped wire message (flush/begin/
// segment/end), so the backup reconstructs the primary's trace id without any
// wire-format change and attaches its rewrite/commit spans to the same trace.
//
// Request-scoped tracing (PR 10) extends the same buffer to client requests:
// a sampled put/get/batch gets a request trace id (bit 63 set, so it can
// never collide with a compaction trace id) carried in a trailing wire field,
// and its client / primary-apply / engine / doorbell / backup-commit spans
// all land under that one id.
//
// Spans land in a bounded per-node buffer and dump as chrome://tracing
// "complete" events. When the buffer is full, retention evicts the oldest
// *whole trace tree* (every span sharing the oldest span's trace id), never
// individual spans — a partial tree renders broken in chrome://tracing. A
// stream id is reused across compactions, so within one epoch a compaction
// trace id recurs over time; spans carry the compaction id to disambiguate
// when a capture window spans reuse.
#ifndef TEBIS_TELEMETRY_TRACE_H_
#define TEBIS_TELEMETRY_TRACE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace tebis {

using TraceId = uint64_t;
inline constexpr TraceId kNoTrace = 0;

// (epoch+1) << 32 | stream: nonzero for every valid stream (epoch 0 is the
// standalone/SimCluster configuration), identical on both ends of the wire.
inline TraceId MakeTraceId(uint64_t epoch, uint32_t stream) {
  return ((epoch + 1) << 32) | stream;
}

// Request trace ids set bit 63; compaction ids keep it clear (epochs stay far
// below 2^30), so the two families never collide. The source hash keeps ids
// from distinct clients apart, the sequence number keeps one client's sampled
// requests apart.
inline constexpr TraceId kRequestTraceBit = 1ull << 63;
inline TraceId MakeRequestTraceId(uint64_t source_hash, uint64_t seq) {
  return kRequestTraceBit | ((source_hash & 0x7fff) << 48) | (seq & ((1ull << 48) - 1));
}
inline bool IsRequestTrace(TraceId id) { return (id & kRequestTraceBit) != 0; }

struct SpanRecord {
  TraceId trace = kNoTrace;
  uint64_t compaction_id = 0;
  const char* name = "";  // static string ("claim", "merge_build", ...)
  std::string node;       // emitting node (NodeLabel of the owner's labels)
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  int src_level = -1;
  int dst_level = -1;
  uint64_t bytes = 0;  // payload size for ship/rewrite spans
};

// Bounded mutex-guarded buffer with whole-tree eviction. Capacity 0 disables
// recording entirely — the telemetry-overhead A/B's "off" arm and the default
// for standalone stores; callers branch on enabled() so a disabled buffer
// costs one load per span.
class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity) : capacity_(capacity) {}
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  bool enabled() const { return capacity_ != 0; }
  size_t capacity() const { return capacity_; }

  void Record(SpanRecord span);

  // Recorded spans, oldest first. Empty when disabled.
  std::vector<SpanRecord> Snapshot() const;

  // Spans evicted because the buffer was full.
  uint64_t dropped() const;

 private:
  // Evicts every span sharing the oldest span's trace id. Called with mutex_
  // held when the buffer is at capacity.
  void EvictOldestTraceLocked();

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<SpanRecord> spans_;              // oldest first
  std::map<TraceId, size_t> trace_counts_;    // live span count per trace
  uint64_t evicted_ = 0;                      // spans removed by retention
};

// chrome://tracing JSON ("X" complete events, ts/dur in microseconds). Each
// distinct node becomes a pid with a process_name metadata record; span args
// carry trace id, compaction id, levels, and bytes.
std::string ChromeTraceJson(const std::vector<SpanRecord>& spans);

}  // namespace tebis

#endif  // TEBIS_TELEMETRY_TRACE_H_
