// PR 7 shipped-bloom-filter suite (ctest label `fast-filters`; tools/check.sh
// runs it plain and under TSan):
//   * filter block unit tests — round trip, false-positive bound, prefix
//     probes, corruption rejection
//   * manifest versioning — v3 carries filter bytes, v2 decodes with null
//     filters, checkpoint/recover preserves filters
//   * shipping — the backup installs the primary's exact filter bytes,
//     consults them on reads, and keeps them across promotion and FullSync
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/lsm/bloom_filter.h"
#include "src/lsm/format.h"
#include "src/lsm/kv_store.h"
#include "src/lsm/manifest.h"
#include "src/net/fabric.h"
#include "src/replication/local_backup_channel.h"
#include "src/replication/primary_region.h"
#include "src/replication/send_index_backup.h"
#include "src/storage/block_device.h"

namespace tebis {
namespace {

constexpr uint64_t kSegmentSize = 1 << 16;

std::unique_ptr<BlockDevice> MakeDevice() {
  BlockDeviceOptions opts;
  opts.segment_size = kSegmentSize;
  opts.max_segments = 1 << 16;
  auto dev = BlockDevice::Create(opts);
  EXPECT_TRUE(dev.ok());
  return std::move(*dev);
}

KvStoreOptions SmallOptions() {
  KvStoreOptions opts;
  opts.l0_max_entries = 256;
  opts.growth_factor = 4;
  opts.max_levels = 3;
  return opts;
}

std::string Key(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key%010llu", static_cast<unsigned long long>(i));
  return buf;
}

// --- filter block unit tests -------------------------------------------------

TEST(FilterBlockTest, RoundTripNoFalseNegatives) {
  BloomFilterBuilder builder(/*bits_per_key=*/10);
  for (uint64_t i = 0; i < 4000; ++i) {
    builder.AddKey(Key(i));
  }
  EXPECT_EQ(builder.num_keys(), 4000u);
  std::string block = builder.Finish();
  ASSERT_FALSE(block.empty());

  BloomFilterView view;
  ASSERT_TRUE(BloomFilterView::Parse(block, &view).ok());
  EXPECT_EQ(view.num_keys(), 4000u);
  // Bloom filters never produce false negatives.
  for (uint64_t i = 0; i < 4000; ++i) {
    EXPECT_TRUE(view.MayContain(Key(i))) << i;
    EXPECT_TRUE(view.MayContainPrefix(Key(i))) << i;
  }
}

TEST(FilterBlockTest, FalsePositiveRateBounded) {
  BloomFilterBuilder builder(/*bits_per_key=*/10);
  for (uint64_t i = 0; i < 4000; ++i) {
    builder.AddKey(Key(i));
  }
  std::string block = builder.Finish();
  BloomFilterView view;
  ASSERT_TRUE(BloomFilterView::Parse(block, &view).ok());

  // Disjoint key space: theoretical FPR at 10 bits/key is ~0.9%; assert a
  // loose 3% so hash quality regressions fail loudly without flaking.
  uint64_t false_positives = 0;
  constexpr uint64_t kProbes = 10000;
  for (uint64_t i = 0; i < kProbes; ++i) {
    if (view.MayContain(Key(1'000'000 + i))) {
      ++false_positives;
    }
  }
  EXPECT_LT(false_positives, kProbes * 3 / 100) << "FPR " << false_positives << "/" << kProbes;
}

TEST(FilterBlockTest, PrefixProbesSkipAbsentPrefixes) {
  // All keys share per-thousand prefixes: Key(i) = "key%010u", so the first
  // kPrefixSize (12) bytes fix i / 10.
  static_assert(kPrefixSize == 12, "Key() prefix math assumes 12-byte prefixes");
  BloomFilterBuilder builder(/*bits_per_key=*/10);
  for (uint64_t i = 0; i < 2000; ++i) {
    builder.AddKey(Key(i));
  }
  std::string block = builder.Finish();
  BloomFilterView view;
  ASSERT_TRUE(BloomFilterView::Parse(block, &view).ok());

  // Present prefixes always answer maybe.
  for (uint64_t i = 0; i < 2000; i += 37) {
    std::string key = Key(i);
    EXPECT_TRUE(view.MayContainPrefix(Slice(key.data(), kPrefixSize)));
  }
  // Absent prefixes answer no almost always (they are subject to the same
  // false-positive rate as point probes).
  uint64_t negatives = 0;
  constexpr uint64_t kProbes = 1000;
  for (uint64_t i = 0; i < kProbes; ++i) {
    std::string probe = Key(2'000'000 + i * 10);
    if (!view.MayContainPrefix(Slice(probe.data(), kPrefixSize))) {
      ++negatives;
    }
  }
  EXPECT_GT(negatives, kProbes * 9 / 10);
}

TEST(FilterBlockTest, EmptyBuilderProducesEmptyBlock) {
  BloomFilterBuilder builder;
  EXPECT_TRUE(builder.Finish().empty());
}

TEST(FilterBlockTest, ParseRejectsCorruption) {
  BloomFilterView view;
  // Junk and truncation.
  EXPECT_FALSE(BloomFilterView::Parse(Slice("not a filter block"), &view).ok());
  EXPECT_FALSE(BloomFilterView::Parse(Slice(), &view).ok());

  BloomFilterBuilder builder;
  for (uint64_t i = 0; i < 100; ++i) {
    builder.AddKey(Key(i));
  }
  std::string block = builder.Finish();
  ASSERT_TRUE(BloomFilterView::Parse(block, &view).ok());
  for (size_t cut = 0; cut < block.size(); cut += 7) {
    EXPECT_FALSE(BloomFilterView::Parse(Slice(block.data(), cut), &view).ok()) << cut;
  }

  // A flipped bit in the body fails the CRC check — but is accepted when the
  // caller vouches for the bytes (hot read paths verify once at install).
  std::string corrupt = block;
  corrupt[corrupt.size() / 2] ^= 0x10;
  EXPECT_FALSE(BloomFilterView::Parse(corrupt, &view).ok());
  EXPECT_TRUE(BloomFilterView::Parse(corrupt, &view, /*verify_crc=*/false).ok());
}

// --- manifest versioning -----------------------------------------------------

Manifest MakeManifestWithFilters() {
  Manifest m;
  m.levels.resize(3);
  m.level_crcs.assign(3, 0);
  for (int level = 1; level <= 2; ++level) {
    BuiltTree& tree = m.levels[level];
    tree.root_offset = 0x1000 * level;
    tree.height = 1;
    tree.num_entries = 100 * level;
    tree.segments = {SegmentId(10 * level)};
    tree.bytes_written = 4096;
    BloomFilterBuilder builder;
    for (uint64_t i = 0; i < tree.num_entries; ++i) {
      builder.AddKey(Key(level * 100000 + i));
    }
    tree.filter = std::make_shared<const std::string>(builder.Finish());
    m.level_crcs[level] = 0xabcd + level;
  }
  m.log_flushed_segments = {SegmentId(1), SegmentId(2)};
  m.l0_replay_from = 1;
  return m;
}

TEST(ManifestVersionTest, V3RoundTripsFilterBytes) {
  Manifest m = MakeManifestWithFilters();
  auto decoded = Manifest::Decode(m.Encode());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->levels.size(), 3u);
  EXPECT_EQ(decoded->levels[0].filter, nullptr);
  for (int level = 1; level <= 2; ++level) {
    ASSERT_NE(decoded->levels[level].filter, nullptr) << level;
    EXPECT_EQ(*decoded->levels[level].filter, *m.levels[level].filter) << level;
    EXPECT_EQ(decoded->levels[level].num_entries, m.levels[level].num_entries);
  }
}

TEST(ManifestVersionTest, V2DecodesWithNullFilters) {
  // A pre-filter checkpoint (v2 layout) must still open; its trees just have
  // no filters and reads never skip.
  Manifest m = MakeManifestWithFilters();
  std::string v2 = m.Encode(/*version=*/2);
  std::string v3 = m.Encode();
  EXPECT_LT(v2.size(), v3.size());  // v3 appends the filter bytes

  auto decoded = Manifest::Decode(v2);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->levels.size(), 3u);
  for (const BuiltTree& tree : decoded->levels) {
    EXPECT_EQ(tree.filter, nullptr);
  }
  EXPECT_EQ(decoded->levels[1].root_offset, m.levels[1].root_offset);
  EXPECT_EQ(decoded->log_flushed_segments.size(), 2u);
  EXPECT_EQ(decoded->l0_replay_from, 1u);
}

TEST(ManifestVersionTest, CheckpointRecoverPreservesFilters) {
  // Full restart: only the backing file survives, Recover adopts its segments.
  const std::string file = testing::TempDir() + "/tebis_filters_recovery.img";
  KvStoreOptions opts = SmallOptions();
  std::map<std::string, std::string> model;
  SegmentId checkpoint = kInvalidSegment;
  {
    BlockDeviceOptions dev_opts;
    dev_opts.segment_size = kSegmentSize;
    dev_opts.max_segments = 1 << 16;
    dev_opts.backing_file = file;
    auto device = BlockDevice::Create(dev_opts);
    ASSERT_TRUE(device.ok());
    auto store = KvStore::Create(device->get(), opts);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 3000; ++i) {
      std::string key = Key(i % 900);
      std::string value = "v" + std::to_string(i);
      ASSERT_TRUE((*store)->Put(key, value).ok());
      model[key] = value;
    }
    ASSERT_TRUE((*store)->FlushL0().ok());
    ASSERT_TRUE((*store)->value_log()->FlushTail().ok());
    auto seg = (*store)->Checkpoint();
    ASSERT_TRUE(seg.ok());
    checkpoint = *seg;
  }

  BlockDeviceOptions reopen_opts;
  reopen_opts.segment_size = kSegmentSize;
  reopen_opts.max_segments = 1 << 16;
  reopen_opts.backing_file = file;
  reopen_opts.reopen_existing = true;
  auto device = BlockDevice::Create(reopen_opts);
  ASSERT_TRUE(device.ok());
  auto recovered = KvStore::Recover(device->get(), opts, checkpoint);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  bool saw_filter = false;
  for (uint32_t i = 1; i <= opts.max_levels; ++i) {
    const BuiltTree& tree = (*recovered)->level(i);
    if (tree.empty()) continue;
    ASSERT_NE(tree.filter, nullptr) << "level " << i;
    BloomFilterView view;
    EXPECT_TRUE(BloomFilterView::Parse(Slice(*tree.filter), &view).ok());
    saw_filter = true;
  }
  EXPECT_TRUE(saw_filter);

  for (const auto& [key, value] : model) {
    auto got = (*recovered)->Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, value);
  }
  // Misses on the recovered store are answered by the recovered filters.
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE((*recovered)->Get(Key(5'000'000 + i)).status().IsNotFound());
  }
  EXPECT_GT((*recovered)->stats().filter_negatives, 0u);
}

TEST(ManifestVersionTest, FiltersOffBuildsNullFilters) {
  auto device = MakeDevice();
  KvStoreOptions opts = SmallOptions();
  opts.enable_filters = false;
  auto store = KvStore::Create(device.get(), opts);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE((*store)->Put(Key(i), "v").ok());
  }
  ASSERT_TRUE((*store)->FlushL0().ok());
  for (uint32_t i = 1; i <= opts.max_levels; ++i) {
    EXPECT_EQ((*store)->level(i).filter, nullptr) << i;
  }
  // Reads stay correct, they just never skip.
  EXPECT_TRUE((*store)->Get(Key(17)).ok());
  EXPECT_TRUE((*store)->Get(Key(4'000'000)).status().IsNotFound());
  EXPECT_EQ((*store)->stats().filter_checks, 0u);
}

// --- primary read path -------------------------------------------------------

TEST(PrimaryFilterTest, NegativeGetsSkipLevels) {
  auto device = MakeDevice();
  auto store = KvStore::Create(device.get(), SmallOptions());
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE((*store)->Put(Key(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE((*store)->FlushL0().ok());

  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE((*store)->Get(Key(9'000'000 + i)).status().IsNotFound());
  }
  KvStoreStats stats = (*store)->stats();
  EXPECT_GT(stats.filter_checks, 0u);
  EXPECT_GT(stats.filter_negatives, 0u);
  // Nearly all absent-key probes are answered by the filter.
  EXPECT_GT(stats.filter_negatives * 10, stats.filter_checks * 5);

  // Present keys still resolve (no false negatives through the gate).
  for (int i = 0; i < 3000; i += 97) {
    EXPECT_TRUE((*store)->Get(Key(i)).ok()) << i;
  }
}

TEST(PrimaryFilterTest, ScanPrefixSkipsAbsentPrefixes) {
  auto device = MakeDevice();
  auto store = KvStore::Create(device.get(), SmallOptions());
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE((*store)->Put(Key(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE((*store)->FlushL0().ok());

  // Key(i) fixes the first 12 bytes to "key%09u" of i/10: prefix "key000000012"
  // selects exactly i = 120..129.
  std::string prefix = Key(120).substr(0, kPrefixSize);
  auto rows = (*store)->ScanPrefix(prefix, /*limit=*/100);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ((*rows)[i].key, Key(120 + i));
  }

  // An absent prefix comes back empty and the filters answered some levels.
  KvStoreStats before = (*store)->stats();
  std::string absent = Key(8'000'000).substr(0, kPrefixSize);
  auto empty_rows = (*store)->ScanPrefix(absent, /*limit=*/100);
  ASSERT_TRUE(empty_rows.ok());
  EXPECT_TRUE(empty_rows->empty());
  EXPECT_GT((*store)->stats().filter_checks, before.filter_checks);
}

// --- shipped filters ---------------------------------------------------------

struct SendIndexCluster {
  std::unique_ptr<Fabric> fabric = std::make_unique<Fabric>();
  std::unique_ptr<BlockDevice> primary_device;
  std::vector<std::unique_ptr<BlockDevice>> backup_devices;
  std::unique_ptr<PrimaryRegion> primary;
  std::vector<std::unique_ptr<SendIndexBackupRegion>> backups;
  std::vector<std::shared_ptr<RegisteredBuffer>> buffers;
};

SendIndexCluster MakeSendIndexCluster(int num_backups, KvStoreOptions opts) {
  SendIndexCluster c;
  c.primary_device = MakeDevice();
  auto primary = PrimaryRegion::Create(c.primary_device.get(), opts, ReplicationMode::kSendIndex);
  EXPECT_TRUE(primary.ok());
  c.primary = std::move(*primary);
  for (int i = 0; i < num_backups; ++i) {
    c.backup_devices.push_back(MakeDevice());
    auto buffer =
        c.fabric->RegisterBuffer("backup" + std::to_string(i), "primary0", kSegmentSize);
    c.buffers.push_back(buffer);
    auto backup = SendIndexBackupRegion::Create(c.backup_devices.back().get(), opts, buffer);
    EXPECT_TRUE(backup.ok());
    c.backups.push_back(std::move(*backup));
    c.primary->AddBackup(std::make_unique<LocalBackupChannel>(
        c.fabric.get(), "primary0", buffer, c.backups.back().get(), nullptr));
  }
  return c;
}

void LoadAndFlush(SendIndexCluster* cluster, int num_writes, int key_space) {
  for (int i = 0; i < num_writes; ++i) {
    ASSERT_TRUE(cluster->primary->Put(Key(i % key_space), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(cluster->primary->FlushL0().ok());
}

// Counts levels where primary and backup both carry a filter and the bytes
// are identical; fails if any shipped level differs.
int CountMatchingFilterLevels(const SendIndexCluster& cluster, uint32_t max_levels) {
  int matching = 0;
  for (uint32_t i = 1; i <= max_levels; ++i) {
    const BuiltTree& primary_tree = cluster.primary->store()->level(i);
    const BuiltTree& backup_tree = cluster.backups[0]->level(i);
    EXPECT_EQ(primary_tree.empty(), backup_tree.empty()) << "level " << i;
    if (primary_tree.empty()) continue;
    EXPECT_NE(primary_tree.filter, nullptr) << "level " << i;
    EXPECT_NE(backup_tree.filter, nullptr) << "level " << i;
    if (primary_tree.filter == nullptr || backup_tree.filter == nullptr) continue;
    // Send-Index ships the primary's exact block — byte-identical, not merely
    // equivalent (fingerprints are offset-free, so no rewrite happens).
    EXPECT_EQ(*primary_tree.filter, *backup_tree.filter) << "level " << i;
    ++matching;
  }
  return matching;
}

TEST(ShippedFilterTest, BackupInstallsPrimaryExactFilterBytes) {
  KvStoreOptions opts = SmallOptions();
  auto cluster = MakeSendIndexCluster(1, opts);
  LoadAndFlush(&cluster, 3000, 800);
  ASSERT_GT(cluster.primary->store()->stats().compactions, 0u);

  EXPECT_GT(CountMatchingFilterLevels(cluster, opts.max_levels), 0);
  EXPECT_GT(cluster.backups[0]->stats().filter_blocks_installed, 0u);
}

TEST(ShippedFilterTest, BackupNegativeLookupsUseShippedFilters) {
  KvStoreOptions opts = SmallOptions();
  auto cluster = MakeSendIndexCluster(1, opts);
  LoadAndFlush(&cluster, 3000, 800);

  // Equivalent answers on both sides: hits hit, misses miss.
  for (int i = 0; i < 800; i += 13) {
    auto primary_got = cluster.primary->Get(Key(i));
    auto backup_got = cluster.backups[0]->DebugGet(Key(i));
    ASSERT_TRUE(primary_got.ok()) << i;
    ASSERT_TRUE(backup_got.ok()) << i;
    EXPECT_EQ(*primary_got, *backup_got) << i;
  }
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(cluster.backups[0]->DebugGet(Key(7'000'000 + i)).status().IsNotFound());
  }
  SendIndexBackupStats stats = cluster.backups[0]->stats();
  EXPECT_GT(stats.filter_checks, 0u);
  EXPECT_GT(stats.filter_negatives, 0u);
  EXPECT_GT(stats.filter_negatives * 10, stats.filter_checks * 5);
}

TEST(ShippedFilterTest, PromotedStoreCarriesShippedFilters) {
  KvStoreOptions opts = SmallOptions();
  auto cluster = MakeSendIndexCluster(1, opts);
  LoadAndFlush(&cluster, 3000, 800);

  auto promoted = cluster.backups[0]->Promote();
  ASSERT_TRUE(promoted.ok());
  bool saw_filter = false;
  for (uint32_t i = 1; i <= opts.max_levels; ++i) {
    const BuiltTree& tree = (*promoted)->level(i);
    if (tree.empty()) continue;
    ASSERT_NE(tree.filter, nullptr) << "level " << i;
    saw_filter = true;
  }
  EXPECT_TRUE(saw_filter);

  // The promoted store's own read path consults the shipped filters.
  for (int i = 0; i < 300; ++i) {
    EXPECT_TRUE((*promoted)->Get(Key(6'000'000 + i)).status().IsNotFound());
  }
  EXPECT_GT((*promoted)->stats().filter_negatives, 0u);
  EXPECT_TRUE((*promoted)->Get(Key(5)).ok());
}

TEST(ShippedFilterTest, FullSyncReattachInstallsFilters) {
  // A backup attached after the fact receives existing levels via FullSync's
  // synthetic compactions — filters included.
  KvStoreOptions opts = SmallOptions();
  auto cluster = MakeSendIndexCluster(0, opts);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(cluster.primary->Put(Key(i % 800), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(cluster.primary->FlushL0().ok());

  cluster.backup_devices.push_back(MakeDevice());
  auto buffer = cluster.fabric->RegisterBuffer("late-backup", "primary0", kSegmentSize);
  cluster.buffers.push_back(buffer);
  auto backup = SendIndexBackupRegion::Create(cluster.backup_devices.back().get(), opts, buffer);
  ASSERT_TRUE(backup.ok());
  cluster.backups.push_back(std::move(*backup));
  auto channel = std::make_unique<LocalBackupChannel>(
      cluster.fabric.get(), "primary0", buffer, cluster.backups.back().get(), nullptr);
  ASSERT_TRUE(cluster.primary->FullSync(channel.get()).ok());
  cluster.primary->AddBackup(std::move(channel));

  EXPECT_GT(CountMatchingFilterLevels(cluster, opts.max_levels), 0);
  EXPECT_GT(cluster.backups[0]->stats().filter_blocks_installed, 0u);

  // New traffic keeps shipping filters to the re-attached backup.
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(cluster.primary->Put(Key(1000 + i % 800), "w" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(cluster.primary->FlushL0().ok());
  EXPECT_GT(CountMatchingFilterLevels(cluster, opts.max_levels), 0);
}

TEST(ShippedFilterTest, FiltersOffShipsNothingAndStaysCorrect) {
  KvStoreOptions opts = SmallOptions();
  opts.enable_filters = false;
  auto cluster = MakeSendIndexCluster(1, opts);
  LoadAndFlush(&cluster, 3000, 800);

  for (uint32_t i = 1; i <= opts.max_levels; ++i) {
    EXPECT_EQ(cluster.backups[0]->level(i).filter, nullptr) << i;
  }
  EXPECT_EQ(cluster.backups[0]->stats().filter_blocks_installed, 0u);
  EXPECT_EQ(cluster.primary->replication_stats().filter_blocks_shipped, 0u);

  // Presence-gated reads: no filter, no skip, same answers.
  EXPECT_TRUE(cluster.backups[0]->DebugGet(Key(5)).ok());
  EXPECT_TRUE(cluster.backups[0]->DebugGet(Key(7'000'000)).status().IsNotFound());
  EXPECT_EQ(cluster.backups[0]->stats().filter_checks, 0u);
}

TEST(ShippedFilterTest, ShipCountersTrackFilterTraffic) {
  KvStoreOptions opts = SmallOptions();
  auto cluster = MakeSendIndexCluster(2, opts);
  LoadAndFlush(&cluster, 3000, 800);

  ReplicationStats repl = cluster.primary->replication_stats();
  EXPECT_GT(repl.filter_blocks_shipped, 0u);
  EXPECT_GT(repl.filter_bytes_shipped, 0u);
  // Both backups installed blocks.
  EXPECT_GT(cluster.backups[0]->stats().filter_blocks_installed, 0u);
  EXPECT_GT(cluster.backups[1]->stats().filter_blocks_installed, 0u);
}

}  // namespace
}  // namespace tebis
