#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/net/fabric.h"
#include "src/net/message.h"
#include "src/net/ring_allocator.h"
#include "src/net/rpc_client.h"
#include "src/net/server_endpoint.h"
#include "src/net/wire.h"
#include "src/net/worker_pool.h"

namespace tebis {
namespace {

// --- message format -------------------------------------------------------

TEST(MessageTest, HeaderIs128Bytes) {
  EXPECT_EQ(sizeof(MessageHeader), kMessageHeaderSize);
}

TEST(MessageTest, PaddedPayloadRules) {
  // Non-empty payloads round up to header multiples with room for the end
  // rendezvous.
  EXPECT_EQ(PaddedPayloadSize(1, false), 128u);
  EXPECT_EQ(PaddedPayloadSize(124, false), 128u);
  EXPECT_EQ(PaddedPayloadSize(125, false), 256u);  // 125+4 > 128
  EXPECT_EQ(PaddedPayloadSize(128, false), 256u);
  // Empty payloads: minimum one block for KV messages (256 B min message),
  // zero for NOOP fillers.
  EXPECT_EQ(PaddedPayloadSize(0, false), 128u);
  EXPECT_EQ(PaddedPayloadSize(0, true), 0u);
}

TEST(MessageTest, EncodeDecodeRoundTrip) {
  std::string payload = "the payload bytes";
  MessageHeader h{};
  h.payload_size = static_cast<uint32_t>(payload.size());
  h.padded_payload_size = static_cast<uint32_t>(PaddedPayloadSize(payload.size(), false));
  h.type = static_cast<uint16_t>(MessageType::kPut);
  h.region_id = 7;
  h.request_id = 42;
  h.reply_offset = 4096;
  h.reply_alloc_size = 256;

  std::vector<char> buf(MessageWireSize(h.padded_payload_size), 0);
  MessageHeader out;
  EXPECT_FALSE(TryDecodeHeader(buf.data(), &out));  // nothing there yet
  EncodeMessage(buf.data(), h, payload);
  ASSERT_TRUE(TryDecodeHeader(buf.data(), &out));
  ASSERT_TRUE(PayloadComplete(buf.data(), out));
  EXPECT_EQ(out.payload_size, payload.size());
  EXPECT_EQ(out.request_id, 42u);
  EXPECT_EQ(out.region_id, 7u);
  EXPECT_EQ(std::string(buf.data() + kMessageHeaderSize, out.payload_size), payload);
}

TEST(MessageTest, ScrubPreventsRedetection) {
  MessageHeader h{};
  h.payload_size = 0;
  h.padded_payload_size = 128;
  h.type = static_cast<uint16_t>(MessageType::kPutReply);
  std::vector<char> buf(MessageWireSize(h.padded_payload_size), 0);
  EncodeMessage(buf.data(), h, Slice());
  MessageHeader out;
  ASSERT_TRUE(TryDecodeHeader(buf.data(), &out));
  ScrubRendezvous(buf.data(), MessageWireSize(h.padded_payload_size));
  EXPECT_FALSE(TryDecodeHeader(buf.data(), &out));
  // The payload-area rendezvous position is also scrubbed.
  EXPECT_FALSE(PayloadComplete(buf.data(), h));
}

TEST(MessageTest, AllTypesHaveNames) {
  std::set<std::string> names;
  for (int t = 0; t <= static_cast<int>(MessageType::kSetReplayStartReply); ++t) {
    names.insert(MessageTypeName(static_cast<MessageType>(t)));
  }
  EXPECT_FALSE(names.contains("?"));
  EXPECT_EQ(names.size(), static_cast<size_t>(MessageType::kSetReplayStartReply) + 1);
}

// --- wire codec ------------------------------------------------------------

TEST(WireTest, WriterReaderRoundTrip) {
  WireWriter w;
  w.U8(7).U16(300).U32(70000).U64(1ull << 40).Bytes("hello");
  WireReader r(w.slice());
  uint8_t a;
  uint16_t b;
  uint32_t c;
  uint64_t d;
  std::string s;
  ASSERT_TRUE(r.U8(&a).ok());
  ASSERT_TRUE(r.U16(&b).ok());
  ASSERT_TRUE(r.U32(&c).ok());
  ASSERT_TRUE(r.U64(&d).ok());
  ASSERT_TRUE(r.Bytes(&s).ok());
  EXPECT_EQ(a, 7);
  EXPECT_EQ(b, 300);
  EXPECT_EQ(c, 70000u);
  EXPECT_EQ(d, 1ull << 40);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireTest, TruncationDetected) {
  WireWriter w;
  w.U32(5);  // claims 5 bytes follow, none do
  WireReader r(w.slice());
  std::string s;
  EXPECT_TRUE(r.Bytes(&s).IsCorruption());
  WireReader r2(Slice("ab", 2));
  uint32_t v;
  EXPECT_TRUE(r2.U32(&v).IsCorruption());
}

TEST(WireTest, BytesViewZeroCopy) {
  WireWriter w;
  w.Bytes("view me");
  WireReader r(w.slice());
  Slice v;
  ASSERT_TRUE(r.BytesView(&v).ok());
  EXPECT_EQ(v.ToString(), "view me");
  EXPECT_EQ(v.data(), w.str().data() + 4);  // no copy
}

// --- ring allocator -----------------------------------------------------------

TEST(RingAllocatorTest, SequentialAllocFree) {
  RingAllocator ring(1024);
  auto a = ring.Allocate(256);
  auto b = ring.Allocate(256);
  ASSERT_EQ(a.status, RingAllocator::AllocStatus::kOk);
  ASSERT_EQ(b.status, RingAllocator::AllocStatus::kOk);
  EXPECT_EQ(a.offset, 0u);
  EXPECT_EQ(b.offset, 256u);
  ring.Free(a.offset);
  ring.Free(b.offset);
  EXPECT_TRUE(ring.Empty());
}

TEST(RingAllocatorTest, FullWhenExhausted) {
  RingAllocator ring(512);
  ASSERT_EQ(ring.Allocate(256).status, RingAllocator::AllocStatus::kOk);
  ASSERT_EQ(ring.Allocate(256).status, RingAllocator::AllocStatus::kOk);
  EXPECT_EQ(ring.Allocate(128).status, RingAllocator::AllocStatus::kFull);
}

TEST(RingAllocatorTest, NeedWrapReportsTailGap) {
  RingAllocator ring(1024);
  auto a = ring.Allocate(768);
  ASSERT_EQ(a.status, RingAllocator::AllocStatus::kOk);
  auto c = ring.Allocate(128);  // 768..896
  ASSERT_EQ(c.status, RingAllocator::AllocStatus::kOk);
  ring.Free(a.offset);          // [0, 768) free again
  auto d = ring.Allocate(256);  // tail gap is 128 (896..1024): wrap needed
  ASSERT_EQ(d.status, RingAllocator::AllocStatus::kNeedWrap);
  EXPECT_EQ(d.tail_gap, 128u);
  // Fill the gap (the NOOP), then the wrap allocation succeeds at offset 0.
  auto filler = ring.Allocate(128);
  ASSERT_EQ(filler.status, RingAllocator::AllocStatus::kOk);
  EXPECT_EQ(filler.offset, 896u);
  auto e = ring.Allocate(256);
  ASSERT_EQ(e.status, RingAllocator::AllocStatus::kOk);
  EXPECT_EQ(e.offset, 0u);
}

TEST(RingAllocatorTest, WritePositionPersistsWhenDrained) {
  // The receiver's rendezvous advances strictly sequentially, so allocations
  // must continue from the previous tail even after the ring fully drains.
  RingAllocator ring(1024);
  auto a = ring.Allocate(256);
  ASSERT_EQ(a.status, RingAllocator::AllocStatus::kOk);
  EXPECT_EQ(a.offset, 0u);
  ring.Free(a.offset);
  auto b = ring.Allocate(256);
  ASSERT_EQ(b.status, RingAllocator::AllocStatus::kOk);
  EXPECT_EQ(b.offset, 256u);  // NOT reset to 0
}

TEST(RingAllocatorTest, OutOfOrderFreesReclaimFifo) {
  RingAllocator ring(1024);
  auto a = ring.Allocate(128);
  auto b = ring.Allocate(128);
  auto c = ring.Allocate(128);
  ASSERT_EQ(c.status, RingAllocator::AllocStatus::kOk);
  ring.Free(c.offset);  // out of order: no space reclaimed yet
  ring.Free(b.offset);
  EXPECT_EQ(ring.live_regions(), 3u);  // all still tracked (a blocks reclaim)
  ring.Free(a.offset);
  EXPECT_TRUE(ring.Empty());
}

TEST(RingAllocatorTest, WrapStressNeverCorrupts) {
  RingAllocator ring(4096);
  Random rng(3);
  std::deque<size_t> live;
  for (int i = 0; i < 20000; ++i) {
    if (live.size() < 8 && rng.Uniform(2) == 0) {
      const size_t n = 128 * (1 + rng.Uniform(4));
      auto a = ring.Allocate(n);
      if (a.status == RingAllocator::AllocStatus::kNeedWrap) {
        auto filler = ring.Allocate(a.tail_gap);
        ASSERT_EQ(filler.status, RingAllocator::AllocStatus::kOk);
        live.push_back(filler.offset);
        a = ring.Allocate(n);
      }
      if (a.status == RingAllocator::AllocStatus::kOk) {
        live.push_back(a.offset);
      }
    } else if (!live.empty()) {
      // Free a random live region (out-of-order).
      size_t idx = rng.Uniform(live.size());
      ring.Free(live[idx]);
      live.erase(live.begin() + static_cast<long>(idx));
    }
  }
  while (!live.empty()) {
    ring.Free(live.front());
    live.pop_front();
  }
  EXPECT_TRUE(ring.Empty());
}

// --- fabric ----------------------------------------------------------------

TEST(FabricTest, RdmaWriteMovesBytesAndAccounts) {
  Fabric fabric;
  auto buf = fabric.RegisterBuffer("backup0", "primary0", 4096);
  std::string data = "replicated log record";
  ASSERT_TRUE(buf->RdmaWrite(100, data).ok());
  EXPECT_EQ(std::string(buf->data() + 100, data.size()), data);
  EXPECT_EQ(fabric.BytesSent("primary0"), data.size() + kWireOverheadPerWrite);
  EXPECT_EQ(fabric.BytesReceived("backup0"), data.size() + kWireOverheadPerWrite);
  EXPECT_EQ(fabric.TotalBytes(), data.size() + kWireOverheadPerWrite);
}

TEST(FabricTest, WritePastRegionRejected) {
  Fabric fabric;
  auto buf = fabric.RegisterBuffer("a", "b", 128);
  std::string data(100, 'x');
  EXPECT_FALSE(buf->RdmaWrite(64, data).ok());
}

TEST(FabricTest, ResetTrafficZeroes) {
  Fabric fabric;
  auto buf = fabric.RegisterBuffer("a", "b", 128);
  ASSERT_TRUE(buf->RdmaWrite(0, "x").ok());
  fabric.ResetTraffic();
  EXPECT_EQ(fabric.TotalBytes(), 0u);
  EXPECT_EQ(fabric.BytesSent("b"), 0u);
}

// --- worker pool ----------------------------------------------------------------

TEST(WorkerPoolTest, ExecutesDispatchedTasks) {
  WorkerPool pool(4);
  pool.Start();
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Dispatch([&count] { count++; });
  }
  pool.Drain();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.tasks_executed(), 100u);
  pool.Stop();
}

TEST(WorkerPoolTest, WorkersSleepWhenIdle) {
  WorkerPool pool(2);
  pool.Start();
  // Workers go to sleep once they have been idle past the threshold. A fixed
  // sleep races worker scheduling on a loaded host (flaky under sanitizers),
  // so poll with a generous deadline instead.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((!pool.IsSleeping(0) || !pool.IsSleeping(1)) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(pool.IsSleeping(0));
  EXPECT_TRUE(pool.IsSleeping(1));
  // A dispatch wakes one up and the task runs.
  std::atomic<bool> ran{false};
  pool.Dispatch([&ran] { ran = true; });
  pool.Drain();
  EXPECT_TRUE(ran.load());
  pool.Stop();
}

TEST(WorkerPoolTest, StickyDispatchPrefersSameWorker) {
  WorkerPool pool(4);
  // Not started: tasks pile up in queues so we can observe placement.
  for (int i = 0; i < 10; ++i) {
    pool.Dispatch([] {});
  }
  // All ten landed on one worker (threshold is 64).
  int nonempty = 0;
  for (int w = 0; w < 4; ++w) {
    nonempty += pool.QueueDepth(w) > 0 ? 1 : 0;
  }
  EXPECT_EQ(nonempty, 1);
}

TEST(WorkerPoolTest, OverflowSpillsToNextWorker) {
  WorkerPool pool(4);
  for (size_t i = 0; i < kWorkerQueueThreshold + 10; ++i) {
    pool.Dispatch([] {});
  }
  int nonempty = 0;
  for (int w = 0; w < 4; ++w) {
    nonempty += pool.QueueDepth(w) > 0 ? 1 : 0;
  }
  EXPECT_EQ(nonempty, 2);
}

// --- end-to-end RPC -----------------------------------------------------------

class EchoServerTest : public testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<ServerEndpoint>(&fabric_, "server0", /*spinners=*/1,
                                               /*workers=*/2);
    server_->set_handler([this](const MessageHeader& header, std::string payload,
                                ReplyContext ctx) {
      handled_++;
      // Echo the payload back, uppercase type+1 convention.
      const auto reply_type = static_cast<MessageType>(header.type + 1);
      if (!ctx.ReplyFits(payload.size())) {
        WireWriter w;
        w.U32(static_cast<uint32_t>(payload.size()));
        Status s = ctx.SendReply(reply_type, kFlagTruncatedReply, w.slice());
        ASSERT_TRUE(s.ok()) << s.ToString();
        return;
      }
      Status s = ctx.SendReply(reply_type, 0, payload);
      ASSERT_TRUE(s.ok()) << s.ToString();
    });
    server_->Start();
  }

  void TearDown() override { server_->Stop(); }

  Fabric fabric_;
  std::unique_ptr<ServerEndpoint> server_;
  std::atomic<int> handled_{0};
};

TEST_F(EchoServerTest, SingleCallRoundTrip) {
  RpcClient client(&fabric_, "client0", server_.get());
  auto reply = client.Call(MessageType::kPut, 3, "ping", 64);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->payload, "ping");
  EXPECT_EQ(static_cast<MessageType>(reply->header.type), MessageType::kPutReply);
  EXPECT_EQ(reply->header.region_id, 3u);
  EXPECT_EQ(handled_.load(), 1);
}

TEST_F(EchoServerTest, ManyOutstandingRequestsCompleteOutOfOrder) {
  RpcClient client(&fabric_, "client0", server_.get());
  std::vector<uint64_t> ids;
  for (int i = 0; i < 64; ++i) {
    auto id = client.SendRequest(MessageType::kPut, 0, "msg" + std::to_string(i), 64);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }
  for (int i = 0; i < 64; ++i) {
    auto reply = client.WaitReply(ids[i]);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->payload, "msg" + std::to_string(i));
  }
}

TEST_F(EchoServerTest, RingWrapWithNoopFiller) {
  // Small rings force many wraps; the protocol must keep working.
  RpcClient client(&fabric_, "client0", server_.get(), /*buffer_size=*/4096);
  for (int i = 0; i < 500; ++i) {
    std::string payload(1 + (i % 700), 'a' + (i % 26));
    auto reply = client.Call(MessageType::kPut, 0, payload, 900);
    ASSERT_TRUE(reply.ok()) << "iteration " << i << ": " << reply.status().ToString();
    ASSERT_EQ(reply->payload, payload) << "iteration " << i;
  }
}

TEST_F(EchoServerTest, VariableSizeMessages) {
  RpcClient client(&fabric_, "client0", server_.get());
  Random rng(5);
  for (int i = 0; i < 100; ++i) {
    std::string payload = rng.Bytes(1 + rng.Uniform(8000));
    auto reply = client.Call(MessageType::kGet, 0, payload, 9000);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_EQ(reply->payload, payload);
  }
}

TEST_F(EchoServerTest, TruncatedReplyFlagWhenAllocTooSmall) {
  RpcClient client(&fabric_, "client0", server_.get());
  std::string big(5000, 'z');
  auto reply = client.Call(MessageType::kGet, 0, big, /*reply_payload_alloc=*/100);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply->header.flags & kFlagTruncatedReply);
  WireReader r(Slice(reply->payload));
  uint32_t needed;
  ASSERT_TRUE(r.U32(&needed).ok());
  EXPECT_EQ(needed, big.size());
  // Retry with the advertised allocation succeeds (the §3.4.1 round trip).
  auto retry = client.Call(MessageType::kGet, 0, big, needed + 16);
  ASSERT_TRUE(retry.ok());
  EXPECT_FALSE(retry->header.flags & kFlagTruncatedReply);
  EXPECT_EQ(retry->payload, big);
}

TEST_F(EchoServerTest, TwoClientsShareServer) {
  RpcClient a(&fabric_, "clientA", server_.get());
  RpcClient b(&fabric_, "clientB", server_.get());
  auto ra = a.Call(MessageType::kPut, 1, "from-a", 64);
  auto rb = b.Call(MessageType::kPut, 2, "from-b", 64);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->payload, "from-a");
  EXPECT_EQ(rb->payload, "from-b");
}

TEST_F(EchoServerTest, ConcurrentClientThreads) {
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      RpcClient client(&fabric_, "client" + std::to_string(t), server_.get());
      for (int i = 0; i < kOpsPerThread; ++i) {
        std::string payload = "t" + std::to_string(t) + "i" + std::to_string(i);
        auto reply = client.Call(MessageType::kPut, 0, payload, 128);
        if (!reply.ok() || reply->payload != payload) {
          failures++;
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(handled_.load(), kThreads * kOpsPerThread);
}

TEST_F(EchoServerTest, NetworkTrafficAccountedBothWays) {
  RpcClient client(&fabric_, "client0", server_.get());
  fabric_.ResetTraffic();
  auto reply = client.Call(MessageType::kPut, 0, "abc", 64);
  ASSERT_TRUE(reply.ok());
  // Request: >= 256B message + overhead. Reply likewise.
  EXPECT_GE(fabric_.BytesSent("client0"), 256u + kWireOverheadPerWrite);
  EXPECT_GE(fabric_.BytesSent("server0"), 256u + kWireOverheadPerWrite);
  EXPECT_EQ(fabric_.BytesReceived("server0"), fabric_.BytesSent("client0"));
}

TEST_F(EchoServerTest, MinimumMessageSizeIs256Bytes) {
  RpcClient client(&fabric_, "client0", server_.get());
  fabric_.ResetTraffic();
  auto reply = client.Call(MessageType::kPut, 0, "x", 1);
  ASSERT_TRUE(reply.ok());
  // One request and one reply, each exactly 256 B + overhead.
  EXPECT_EQ(fabric_.BytesSent("client0"), 256 + kWireOverheadPerWrite);
  EXPECT_EQ(fabric_.BytesSent("server0"), 256 + kWireOverheadPerWrite);
}

TEST(ServerEndpointTest, HotColdPollingDemotesIdleConnections) {
  // §3.4.1 extension: an idle connection is demoted to cold after enough
  // empty polls, its polls are mostly skipped, and one message re-promotes
  // it with no loss.
  Fabric fabric;
  ServerEndpoint server(&fabric, "srv", 1, 1);
  std::atomic<int> handled{0};
  server.set_handler([&](const MessageHeader&, std::string payload, ReplyContext ctx) {
    handled++;
    ASSERT_TRUE(ctx.SendReply(MessageType::kPutReply, 0, payload).ok());
  });
  server.workers().Start();
  RpcClient active(&fabric, "active", &server);
  RpcClient idle(&fabric, "idle", &server);
  EXPECT_EQ(server.ColdConnections(), 0);
  // Drive enough empty polls to cross the cold threshold for both.
  for (uint32_t i = 0; i <= kColdThreshold; ++i) {
    server.PollOnce();
  }
  EXPECT_EQ(server.ColdConnections(), 2);
  EXPECT_GE(server.cold_demotions(), 2u);
  // A message to a cold connection still gets through (within the cold poll
  // period) and re-promotes it.
  auto id = active.SendRequest(MessageType::kPut, 0, "wake", 64);
  ASSERT_TRUE(id.ok());
  for (uint32_t i = 0; i < kColdPollPeriod + 1; ++i) {
    server.PollOnce();
  }
  auto reply = active.WaitReply(*id);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->payload, "wake");
  EXPECT_EQ(server.ColdConnections(), 1);  // "idle" stays cold
  EXPECT_GT(server.polls_skipped(), 0u);
}

TEST(ServerEndpointTest, PollOnceDeterministicMode) {
  Fabric fabric;
  ServerEndpoint server(&fabric, "srv", 1, 1);
  std::atomic<int> handled{0};
  server.set_handler([&](const MessageHeader&, std::string payload, ReplyContext ctx) {
    handled++;
    ASSERT_TRUE(ctx.SendReply(MessageType::kPutReply, 0, payload).ok());
  });
  // Workers must run, but we poll manually instead of spinning threads.
  server.workers().Start();
  RpcClient client(&fabric, "cli", &server);
  auto id = client.SendRequest(MessageType::kPut, 0, "manual", 64);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(handled.load(), 0);
  while (server.PollOnce() == 0) {
    std::this_thread::yield();
  }
  auto reply = client.WaitReply(*id);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->payload, "manual");
  EXPECT_EQ(handled.load(), 1);
  server.workers().Drain();
  server.workers().Stop();
}

}  // namespace
}  // namespace tebis
