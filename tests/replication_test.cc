#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/net/fabric.h"
#include "src/replication/build_index_backup.h"
#include "src/replication/local_backup_channel.h"
#include "src/replication/primary_region.h"
#include "src/replication/replication_wire.h"
#include "src/replication/segment_map.h"
#include "src/replication/send_index_backup.h"
#include "src/storage/block_device.h"

namespace tebis {
namespace {

constexpr uint64_t kSegmentSize = 1 << 16;  // 64 KB segments for tests

std::unique_ptr<BlockDevice> MakeDevice() {
  BlockDeviceOptions opts;
  opts.segment_size = kSegmentSize;
  opts.max_segments = 1 << 16;
  auto dev = BlockDevice::Create(opts);
  EXPECT_TRUE(dev.ok());
  return std::move(*dev);
}

KvStoreOptions SmallOptions() {
  KvStoreOptions opts;
  opts.l0_max_entries = 256;
  opts.growth_factor = 4;
  opts.max_levels = 3;
  return opts;
}

std::string Key(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key%010llu", static_cast<unsigned long long>(i));
  return buf;
}

// --- SegmentMap -----------------------------------------------------------

TEST(SegmentMapTest, InsertLookup) {
  SegmentMap map;
  ASSERT_TRUE(map.Insert(10, 100).ok());
  ASSERT_TRUE(map.Insert(11, 101).ok());
  EXPECT_EQ(map.Insert(10, 999).code(), StatusCode::kAlreadyExists);
  auto v = map.Lookup(10);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 100u);
  EXPECT_TRUE(map.Lookup(12).status().IsNotFound());
  EXPECT_EQ(map.MemoryBytes(), 32u);
}

TEST(SegmentMapTest, GetOrReserveAllocatesOnce) {
  SegmentMap map;
  int allocations = 0;
  auto alloc = [&]() -> StatusOr<SegmentId> { return SegmentId(500 + allocations++); };
  auto a = map.GetOrReserve(7, alloc);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, 500u);
  auto b = map.GetOrReserve(7, alloc);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, 500u);
  EXPECT_EQ(allocations, 1);
}

TEST(SegmentMapTest, SerializeRoundTrip) {
  SegmentMap map;
  ASSERT_TRUE(map.Insert(1, 10).ok());
  ASSERT_TRUE(map.Insert(2, 20).ok());
  WireWriter w;
  map.Serialize(&w);
  WireReader r(w.slice());
  auto decoded = SegmentMap::Deserialize(&r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->size(), 2u);
  EXPECT_EQ(*decoded->Lookup(2), 20u);
}

TEST(SegmentMapTest, RekeyForNewPrimary) {
  // Old primary segments {1,2,3}; new primary (promoted backup) has them at
  // {10,20,30}; this backup has them at {100,200,300}.
  SegmentMap new_primary;
  ASSERT_TRUE(new_primary.Insert(1, 10).ok());
  ASSERT_TRUE(new_primary.Insert(2, 20).ok());
  ASSERT_TRUE(new_primary.Insert(3, 30).ok());
  SegmentMap mine;
  ASSERT_TRUE(mine.Insert(1, 100).ok());
  ASSERT_TRUE(mine.Insert(2, 200).ok());
  ASSERT_TRUE(mine.Insert(3, 300).ok());
  auto rekeyed = mine.RekeyForNewPrimary(new_primary);
  ASSERT_TRUE(rekeyed.ok());
  EXPECT_EQ(*rekeyed->Lookup(10), 100u);
  EXPECT_EQ(*rekeyed->Lookup(20), 200u);
  EXPECT_EQ(*rekeyed->Lookup(30), 300u);
}

// --- replication wire codecs ------------------------------------------------

TEST(ReplicationWireTest, CompactionEndRoundTrip) {
  CompactionEndMsg msg{};
  msg.compaction_id = 9;
  msg.src_level = 1;
  msg.dst_level = 2;
  msg.tree.root_offset = 0x123456;
  msg.tree.height = 3;
  msg.tree.num_entries = 777;
  msg.tree.bytes_written = 4096;
  msg.tree.segments = {5, 6, 7};
  std::string encoded = EncodeCompactionEnd(msg);
  CompactionEndMsg out{};
  ASSERT_TRUE(DecodeCompactionEnd(encoded, &out).ok());
  EXPECT_EQ(out.compaction_id, 9u);
  EXPECT_EQ(out.tree.root_offset, 0x123456u);
  EXPECT_EQ(out.tree.height, 3u);
  EXPECT_EQ(out.tree.segments, (std::vector<SegmentId>{5, 6, 7}));
}

TEST(ReplicationWireTest, IndexSegmentRoundTrip) {
  std::string data(1000, 'n');
  IndexSegmentMsg msg{/*epoch=*/1, 4, 2, 0, 77, Slice(data)};
  std::string encoded = EncodeIndexSegment(msg);
  IndexSegmentMsg out{};
  ASSERT_TRUE(DecodeIndexSegment(encoded, &out).ok());
  EXPECT_EQ(out.compaction_id, 4u);
  EXPECT_EQ(out.dst_level, 2u);
  EXPECT_EQ(out.primary_segment, 77u);
  EXPECT_EQ(out.data.ToString(), data);
}

// --- end-to-end replication fixtures --------------------------------------------

struct SendIndexCluster {
  std::unique_ptr<Fabric> fabric = std::make_unique<Fabric>();
  std::unique_ptr<BlockDevice> primary_device;
  std::vector<std::unique_ptr<BlockDevice>> backup_devices;
  std::unique_ptr<PrimaryRegion> primary;
  std::vector<std::unique_ptr<SendIndexBackupRegion>> backups;
  std::vector<std::shared_ptr<RegisteredBuffer>> buffers;
};

SendIndexCluster MakeSendIndexCluster(int num_backups, KvStoreOptions opts) {
  SendIndexCluster c;
  c.primary_device = MakeDevice();
  auto primary = PrimaryRegion::Create(c.primary_device.get(), opts, ReplicationMode::kSendIndex);
  EXPECT_TRUE(primary.ok());
  c.primary = std::move(*primary);
  for (int i = 0; i < num_backups; ++i) {
    c.backup_devices.push_back(MakeDevice());
    auto buffer =
        c.fabric->RegisterBuffer("backup" + std::to_string(i), "primary0", kSegmentSize);
    c.buffers.push_back(buffer);
    auto backup = SendIndexBackupRegion::Create(c.backup_devices.back().get(), opts, buffer);
    EXPECT_TRUE(backup.ok());
    c.backups.push_back(std::move(*backup));
    c.primary->AddBackup(std::make_unique<LocalBackupChannel>(
        c.fabric.get(), "primary0", buffer, c.backups.back().get(), nullptr));
  }
  return c;
}

struct BuildIndexCluster {
  std::unique_ptr<Fabric> fabric = std::make_unique<Fabric>();
  std::unique_ptr<BlockDevice> primary_device;
  std::vector<std::unique_ptr<BlockDevice>> backup_devices;
  std::unique_ptr<PrimaryRegion> primary;
  std::vector<std::unique_ptr<BuildIndexBackupRegion>> backups;
  std::vector<std::shared_ptr<RegisteredBuffer>> buffers;
};

BuildIndexCluster MakeBuildIndexCluster(int num_backups, KvStoreOptions opts) {
  BuildIndexCluster c;
  c.primary_device = MakeDevice();
  auto primary = PrimaryRegion::Create(c.primary_device.get(), opts, ReplicationMode::kBuildIndex);
  EXPECT_TRUE(primary.ok());
  c.primary = std::move(*primary);
  for (int i = 0; i < num_backups; ++i) {
    c.backup_devices.push_back(MakeDevice());
    auto buffer =
        c.fabric->RegisterBuffer("backup" + std::to_string(i), "primary0", kSegmentSize);
    c.buffers.push_back(buffer);
    auto backup = BuildIndexBackupRegion::Create(c.backup_devices.back().get(), opts, buffer);
    EXPECT_TRUE(backup.ok());
    c.backups.push_back(std::move(*backup));
    c.primary->AddBackup(std::make_unique<LocalBackupChannel>(
        c.fabric.get(), "primary0", buffer, nullptr, c.backups.back().get()));
  }
  return c;
}

// --- Send-Index end-to-end --------------------------------------------------------

TEST(SendIndexTest, BackupIndexMatchesPrimaryAfterCompactions) {
  auto cluster = MakeSendIndexCluster(1, SmallOptions());
  std::map<std::string, std::string> model;
  for (int i = 0; i < 3000; ++i) {
    std::string key = Key(i % 800);
    std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(cluster.primary->Put(key, value).ok());
    model[key] = value;
  }
  // Push everything into device levels so the backup's (L0-less) view covers
  // all keys.
  ASSERT_TRUE(cluster.primary->FlushL0().ok());
  ASSERT_GT(cluster.primary->store()->stats().compactions, 0u);

  for (const auto& [key, value] : model) {
    auto got = cluster.backups[0]->DebugGet(key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    EXPECT_EQ(*got, value) << key;
  }
  // Absent keys are absent on the backup too.
  EXPECT_TRUE(cluster.backups[0]->DebugGet("nonexistent-key").status().IsNotFound());
}

TEST(SendIndexTest, BackupDoesNoCompactionReads) {
  auto cluster = MakeSendIndexCluster(1, SmallOptions());
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(cluster.primary->Put(Key(i), "value-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(cluster.primary->FlushL0().ok());

  const IoStats& primary_io = cluster.primary_device->stats();
  const IoStats& backup_io = cluster.backup_devices[0]->stats();
  // The paper's central claim: the primary pays compaction reads, the backup
  // pays none — it only rewrites.
  EXPECT_GT(primary_io.ReadBytes(IoClass::kCompactionRead), 0u);
  EXPECT_EQ(backup_io.ReadBytes(IoClass::kCompactionRead), 0u);
  EXPECT_GT(backup_io.WriteBytes(IoClass::kIndexRewrite), 0u);
  EXPECT_EQ(backup_io.WriteBytes(IoClass::kCompactionWrite), 0u);
  // And the backup keeps no L0.
  EXPECT_EQ(cluster.backups[0]->l0_memory_bytes(), 0u);
  EXPECT_GT(cluster.backups[0]->stats().segments_rewritten, 0u);
  EXPECT_GT(cluster.backups[0]->stats().offsets_rewritten, 0u);
}

TEST(SendIndexTest, ThreeWayReplicationBothBackupsConsistent) {
  auto cluster = MakeSendIndexCluster(2, SmallOptions());
  std::map<std::string, std::string> model;
  Random rng(11);
  for (int i = 0; i < 4000; ++i) {
    std::string key = Key(rng.Uniform(600));
    std::string value = rng.Bytes(1 + rng.Uniform(120));
    ASSERT_TRUE(cluster.primary->Put(key, value).ok());
    model[key] = value;
  }
  ASSERT_TRUE(cluster.primary->FlushL0().ok());
  for (int b = 0; b < 2; ++b) {
    for (const auto& [key, value] : model) {
      auto got = cluster.backups[b]->DebugGet(key);
      ASSERT_TRUE(got.ok()) << "backup" << b << " " << key;
      EXPECT_EQ(*got, value);
    }
  }
}

TEST(SendIndexTest, DeletesPropagateToBackup) {
  auto cluster = MakeSendIndexCluster(1, SmallOptions());
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(cluster.primary->Put(Key(i), "value").ok());
  }
  for (int i = 0; i < 600; i += 2) {
    ASSERT_TRUE(cluster.primary->Delete(Key(i)).ok());
  }
  ASSERT_TRUE(cluster.primary->FlushL0().ok());
  for (int i = 0; i < 600; ++i) {
    auto got = cluster.backups[0]->DebugGet(Key(i));
    if (i % 2 == 0) {
      EXPECT_TRUE(got.status().IsNotFound()) << i;
    } else {
      ASSERT_TRUE(got.ok()) << i;
    }
  }
}

TEST(SendIndexTest, LogMapTracksFlushedSegments) {
  auto cluster = MakeSendIndexCluster(1, SmallOptions());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(cluster.primary->Put(Key(i), std::string(100, 'x')).ok());
  }
  ASSERT_TRUE(cluster.primary->FlushL0().ok());
  const auto& log_map = cluster.backups[0]->log_map();
  EXPECT_EQ(log_map.size(), cluster.backups[0]->value_log()->flushed_segments().size());
  EXPECT_EQ(log_map.size(), cluster.primary->store()->value_log()->flushed_segments().size());
  // Every mapping points at an allocated local segment.
  for (const auto& [primary_seg, backup_seg] : log_map.entries()) {
    EXPECT_TRUE(cluster.backup_devices[0]->IsAllocated(backup_seg));
  }
}

TEST(SendIndexTest, NetworkTrafficExceedsBuildIndex) {
  // Send-Index trades network for device I/O: same workload, more bytes on
  // the fabric (the shipped indexes), fewer device reads on the backup.
  KvStoreOptions opts = SmallOptions();
  auto send = MakeSendIndexCluster(1, opts);
  auto build = MakeBuildIndexCluster(1, opts);
  for (int i = 0; i < 3000; ++i) {
    std::string key = Key(i % 700);
    std::string value = std::string(64, 'a' + (i % 26));
    ASSERT_TRUE(send.primary->Put(key, value).ok());
    ASSERT_TRUE(build.primary->Put(key, value).ok());
  }
  ASSERT_TRUE(send.primary->FlushL0().ok());
  ASSERT_TRUE(build.primary->FlushL0().ok());
  EXPECT_GT(send.fabric->TotalBytes(), build.fabric->TotalBytes());
  EXPECT_GT(send.primary->replication_stats().index_bytes_shipped, 0u);
  EXPECT_EQ(build.primary->replication_stats().index_bytes_shipped, 0u);
  // Backup device I/O: Build-Index reads for compactions, Send-Index doesn't.
  EXPECT_GT(build.backup_devices[0]->stats().ReadBytes(IoClass::kCompactionRead), 0u);
  EXPECT_EQ(send.backup_devices[0]->stats().ReadBytes(IoClass::kCompactionRead), 0u);
  EXPECT_LT(send.backup_devices[0]->stats().TotalReadBytes(),
            build.backup_devices[0]->stats().TotalReadBytes());
}

// --- Build-Index end-to-end -----------------------------------------------------

TEST(BuildIndexTest, BackupStoreMatchesPrimary) {
  auto cluster = MakeBuildIndexCluster(1, SmallOptions());
  std::map<std::string, std::string> model;
  for (int i = 0; i < 3000; ++i) {
    std::string key = Key(i % 500);
    std::string value = "bi-" + std::to_string(i);
    ASSERT_TRUE(cluster.primary->Put(key, value).ok());
    model[key] = value;
  }
  // The backup has seen everything in *flushed* segments; flush the tail so
  // the remainder arrives too.
  ASSERT_TRUE(cluster.primary->store()->value_log()->FlushTail().ok());
  for (const auto& [key, value] : model) {
    auto got = cluster.backups[0]->store()->Get(key);
    ASSERT_TRUE(got.ok()) << key << " " << got.status().ToString();
    EXPECT_EQ(*got, value);
  }
  EXPECT_GT(cluster.backups[0]->stats().records_inserted, 0u);
  // Build-Index keeps an L0 (the memory cost Send-Index avoids).
  EXPECT_GT(cluster.backups[0]->l0_memory_bytes(), 0u);
}

TEST(BuildIndexTest, BackupRunsItsOwnCompactions) {
  auto cluster = MakeBuildIndexCluster(1, SmallOptions());
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(cluster.primary->Put(Key(i), std::string(40, 'b')).ok());
  }
  ASSERT_TRUE(cluster.primary->store()->value_log()->FlushTail().ok());
  EXPECT_GT(cluster.backups[0]->store()->stats().compactions, 0u);
}

// --- promotion (§3.5) -------------------------------------------------------------

TEST(PromotionTest, SendIndexBackupPromotesWithAllAckedData) {
  auto cluster = MakeSendIndexCluster(1, SmallOptions());
  std::map<std::string, std::string> model;
  for (int i = 0; i < 2500; ++i) {
    std::string key = Key(i % 900);
    std::string value = "pv-" + std::to_string(i);
    ASSERT_TRUE(cluster.primary->Put(key, value).ok());
    model[key] = value;
  }
  // Note: NO FlushL0 — some acked records live only in the primary's L0 and
  // the backup's RDMA buffer / flushed tail segments. The primary now "dies".
  auto promoted = cluster.backups[0]->Promote();
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  for (const auto& [key, value] : model) {
    auto got = (*promoted)->Get(key);
    ASSERT_TRUE(got.ok()) << key << " " << got.status().ToString();
    EXPECT_EQ(*got, value) << key;
  }
}

TEST(PromotionTest, PromotedStoreServesNewWrites) {
  auto cluster = MakeSendIndexCluster(1, SmallOptions());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(cluster.primary->Put(Key(i), "old").ok());
  }
  auto promoted = cluster.backups[0]->Promote();
  ASSERT_TRUE(promoted.ok());
  // The new primary keeps working: writes, compactions, reads.
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE((*promoted)->Put(Key(i), "new-" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 2000; i += 97) {
    auto got = (*promoted)->Get(Key(i));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, "new-" + std::to_string(i));
  }
}

TEST(PromotionTest, DeletesSurvivePromotion) {
  auto cluster = MakeSendIndexCluster(1, SmallOptions());
  for (int i = 0; i < 800; ++i) {
    ASSERT_TRUE(cluster.primary->Put(Key(i), "value").ok());
  }
  for (int i = 0; i < 800; i += 3) {
    ASSERT_TRUE(cluster.primary->Delete(Key(i)).ok());
  }
  auto promoted = cluster.backups[0]->Promote();
  ASSERT_TRUE(promoted.ok());
  for (int i = 0; i < 800; ++i) {
    auto got = (*promoted)->Get(Key(i));
    if (i % 3 == 0) {
      EXPECT_TRUE(got.status().IsNotFound()) << i;
    } else {
      ASSERT_TRUE(got.ok()) << i;
    }
  }
}

TEST(PromotionTest, HalfShippedCompactionIsAborted) {
  auto cluster = MakeSendIndexCluster(1, SmallOptions());
  for (int i = 0; i < 1500; ++i) {
    ASSERT_TRUE(cluster.primary->Put(Key(i), "stable").ok());
  }
  // Simulate the primary dying mid-compaction: begin + one bogus segment,
  // no end.
  SendIndexBackupRegion* backup = cluster.backups[0].get();
  const uint64_t before_segments = cluster.backup_devices[0]->AllocatedSegments();
  ASSERT_TRUE(backup->HandleCompactionBegin(999, 1, 2).ok());
  std::string fake_segment(SmallOptions().node_size, 0);
  LeafNodeBuilder leaf(fake_segment.data(), fake_segment.size());
  leaf.Add("zzz", cluster.primary->store()->value_log()->flushed_segments().empty()
                      ? 0
                      : cluster.primary_device->geometry().BaseOffset(
                            cluster.primary->store()->value_log()->flushed_segments()[0]));
  leaf.Finish();
  ASSERT_TRUE(backup->HandleIndexSegment(999, 2, 0, /*primary_segment=*/424242,
                                         Slice(fake_segment))
                  .ok());
  auto promoted = backup->Promote();
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  (void)before_segments;
  // The aborted compaction's segments were freed: every allocated segment is
  // accounted for by the promoted store's log and levels (no leaks).
  uint64_t expected = (*promoted)->value_log()->flushed_segments().size() + 1;  // + tail
  for (uint32_t l = 1; l <= (*promoted)->max_levels(); ++l) {
    expected += (*promoted)->level(l).segments.size();
  }
  EXPECT_EQ(cluster.backup_devices[0]->AllocatedSegments(), expected);
  // All data still readable.
  for (int i = 0; i < 1500; i += 113) {
    EXPECT_TRUE((*promoted)->Get(Key(i)).ok()) << i;
  }
}

TEST(PromotionTest, RemainingBackupRekeysLogMap) {
  auto cluster = MakeSendIndexCluster(2, SmallOptions());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(cluster.primary->Put(Key(i), std::string(80, 'r')).ok());
  }
  // Promote backup 0; backup 1 re-keys its log map using backup 0's map.
  SegmentMap new_primary_map = cluster.backups[0]->log_map();
  ASSERT_GT(new_primary_map.size(), 0u);
  ASSERT_TRUE(cluster.backups[1]->AdoptNewPrimaryLogMap(new_primary_map).ok());
  // Verify: for every new-primary segment, the mapped local segment on
  // backup 1 holds byte-identical log content.
  const uint64_t seg_size = kSegmentSize;
  std::string a(seg_size, 0), b(seg_size, 0);
  for (const auto& [new_primary_seg, backup1_seg] : cluster.backups[1]->log_map().entries()) {
    ASSERT_TRUE(cluster.backup_devices[0]
                    ->Read(cluster.backup_devices[0]->geometry().BaseOffset(new_primary_seg),
                           seg_size, a.data(), IoClass::kOther)
                    .ok());
    ASSERT_TRUE(cluster.backup_devices[1]
                    ->Read(cluster.backup_devices[1]->geometry().BaseOffset(backup1_seg),
                           seg_size, b.data(), IoClass::kOther)
                    .ok());
    EXPECT_EQ(a, b);
  }
}

TEST(PromotionTest, BuildIndexBackupPromotes) {
  auto cluster = MakeBuildIndexCluster(1, SmallOptions());
  std::map<std::string, std::string> model;
  for (int i = 0; i < 2000; ++i) {
    std::string key = Key(i % 400);
    std::string value = "bp-" + std::to_string(i);
    ASSERT_TRUE(cluster.primary->Put(key, value).ok());
    model[key] = value;
  }
  auto promoted = cluster.backups[0]->Promote();
  ASSERT_TRUE(promoted.ok());
  for (const auto& [key, value] : model) {
    auto got = (*promoted)->Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, value);
  }
}

// --- GC coordination -----------------------------------------------------------

TEST(ReplicatedGcTest, BackupsTrimAndStayConsistent) {
  KvStoreOptions opts = SmallOptions();
  opts.l0_max_entries = 64;
  auto cluster = MakeSendIndexCluster(1, opts);
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(cluster.primary->Put(Key(i % 60), std::string(120, 'g')).ok());
  }
  const size_t backup_log_before = cluster.backups[0]->value_log()->flushed_segments().size();
  ASSERT_GT(backup_log_before, 4u);
  auto freed = cluster.primary->GarbageCollect(3);
  ASSERT_TRUE(freed.ok()) << freed.status().ToString();
  EXPECT_EQ(*freed, 3u);
  EXPECT_LT(cluster.backups[0]->value_log()->flushed_segments().size(), backup_log_before + 10);
  // All keys remain consistent on the backup after trim.
  ASSERT_TRUE(cluster.primary->FlushL0().ok());
  for (int k = 0; k < 60; ++k) {
    auto primary_val = cluster.primary->Get(Key(k));
    auto backup_val = cluster.backups[0]->DebugGet(Key(k));
    ASSERT_TRUE(primary_val.ok()) << k;
    ASSERT_TRUE(backup_val.ok()) << k << " " << backup_val.status().ToString();
    EXPECT_EQ(*primary_val, *backup_val);
  }
}

// --- property test: random ops, primary/backup equivalence -----------------------

class ReplicationPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(ReplicationPropertyTest, SendIndexBackupAlwaysConsistentAfterFlush) {
  KvStoreOptions opts = SmallOptions();
  opts.l0_max_entries = 128;
  auto cluster = MakeSendIndexCluster(1, opts);
  Random rng(GetParam());
  std::map<std::string, std::string> model;
  for (int i = 0; i < 4000; ++i) {
    std::string key = Key(rng.Uniform(300));
    if (rng.Uniform(10) < 8) {
      std::string value = rng.Bytes(1 + rng.Uniform(150));
      ASSERT_TRUE(cluster.primary->Put(key, value).ok());
      model[key] = value;
    } else {
      ASSERT_TRUE(cluster.primary->Delete(key).ok());
      model.erase(key);
    }
  }
  ASSERT_TRUE(cluster.primary->FlushL0().ok());
  for (int k = 0; k < 300; ++k) {
    auto got = cluster.backups[0]->DebugGet(Key(k));
    auto expect = model.find(Key(k));
    if (expect == model.end()) {
      EXPECT_TRUE(got.status().IsNotFound()) << Key(k) << " " << got.status().ToString();
    } else {
      ASSERT_TRUE(got.ok()) << Key(k) << " " << got.status().ToString();
      EXPECT_EQ(*got, expect->second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicationPropertyTest, testing::Values(21, 22, 23));

}  // namespace
}  // namespace tebis
