// Write-path group commit (PR 9): engine WriteBatch semantics (per-op
// statuses, committed-prefix durability), coalesced replication doorbells,
// WAL-time large-value separation across the 2x replication buffer, client
// kKvBatch coalescing end to end, and the group-commit crash points added to
// the PR 1 matrix.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/client.h"
#include "src/cluster/coordinator.h"
#include "src/cluster/master.h"
#include "src/cluster/region_map.h"
#include "src/cluster/region_server.h"
#include "src/lsm/kv_store.h"
#include "src/net/fabric.h"
#include "src/replication/local_backup_channel.h"
#include "src/replication/primary_region.h"
#include "src/replication/send_index_backup.h"
#include "src/storage/block_device.h"
#include "src/testing/fault_injector.h"

namespace tebis {
namespace {

constexpr uint64_t kSegmentSize = 1 << 16;

std::unique_ptr<BlockDevice> MakeDevice(const std::string& name = "",
                                        uint64_t segment_size = kSegmentSize) {
  BlockDeviceOptions opts;
  opts.segment_size = segment_size;
  opts.max_segments = 1 << 16;
  opts.name = name;
  auto dev = BlockDevice::Create(opts);
  EXPECT_TRUE(dev.ok());
  return std::move(*dev);
}

KvStoreOptions SmallOptions() {
  KvStoreOptions opts;
  opts.l0_max_entries = 256;
  opts.growth_factor = 4;
  opts.max_levels = 3;
  return opts;
}

std::string Key(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key%010llu", static_cast<unsigned long long>(i));
  return buf;
}

std::string ValueFor(uint64_t i) { return "gv-" + std::to_string(i) + std::string(40, 'v'); }

std::vector<KvStore::BatchOp> MakeOps(const std::vector<std::pair<std::string, std::string>>& kvs) {
  std::vector<KvStore::BatchOp> ops;
  ops.reserve(kvs.size());
  for (const auto& [key, value] : kvs) {
    ops.push_back({Slice(key), Slice(value), /*tombstone=*/false});
  }
  return ops;
}

// --- engine semantics: the batch is a transport artifact, not a transaction ---

TEST(EngineBatchTest, InvalidOpFailsAloneRestOfGroupCommits) {
  auto dev = MakeDevice();
  auto store = KvStore::Create(dev.get(), SmallOptions());
  ASSERT_TRUE(store.ok());
  std::vector<std::pair<std::string, std::string>> kvs;
  for (int i = 0; i < 8; ++i) {
    kvs.emplace_back(Key(i), ValueFor(i));
  }
  kvs[3].first = "";                            // invalid: empty key
  kvs[5].first = std::string(400, 'k');        // invalid: key > kMaxKeySize
  std::vector<KvStore::BatchOp> ops = MakeOps(kvs);
  std::vector<Status> statuses;
  ASSERT_TRUE((*store)->WriteBatch(ops, &statuses).ok());
  ASSERT_EQ(statuses.size(), ops.size());
  for (size_t i = 0; i < statuses.size(); ++i) {
    if (i == 3 || i == 5) {
      EXPECT_EQ(statuses[i].code(), StatusCode::kInvalidArgument)
          << i << ": " << statuses[i].ToString();
    } else {
      EXPECT_TRUE(statuses[i].ok()) << i << ": " << statuses[i].ToString();
      auto got = (*store)->Get(kvs[i].first);
      ASSERT_TRUE(got.ok()) << i;
      EXPECT_EQ(*got, kvs[i].second);
    }
  }
  const KvStoreStats stats = (*store)->stats();
  EXPECT_EQ(stats.batch_groups, 1u);
  EXPECT_EQ(stats.batch_ops, 6u);  // the two invalid ops never reached the log
}

TEST(EngineBatchTest, HardFailureMidGroupKeepsCommittedPrefix) {
  // Small segments force a tail seal inside the group; failing that device
  // write kills the op that triggered it and the suffix, while the applied
  // prefix stays committed and readable.
  auto dev = MakeDevice("dev0", /*segment_size=*/4096);
  FaultInjector injector;
  dev->set_fault_hook(&injector);
  auto store = KvStore::Create(dev.get(), SmallOptions());
  ASSERT_TRUE(store.ok());
  injector.FailNthDeviceWrite("dev0", 0);
  std::vector<std::pair<std::string, std::string>> kvs;
  for (int i = 0; i < 6; ++i) {
    kvs.emplace_back(Key(i), std::string(1060, 'a' + static_cast<char>(i)));
  }
  std::vector<KvStore::BatchOp> ops = MakeOps(kvs);
  std::vector<Status> statuses;
  Status result = (*store)->WriteBatch(ops, &statuses);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(statuses.size(), ops.size());
  size_t failed_at = statuses.size();
  for (size_t i = 0; i < statuses.size(); ++i) {
    if (!statuses[i].ok()) {
      failed_at = i;
      break;
    }
  }
  ASSERT_GT(failed_at, 0u) << "expected a non-empty committed prefix";
  ASSERT_LT(failed_at, statuses.size()) << "expected a mid-group failure";
  for (size_t i = 0; i < statuses.size(); ++i) {
    if (i < failed_at) {
      EXPECT_TRUE(statuses[i].ok()) << i << ": " << statuses[i].ToString();
      auto got = (*store)->Get(kvs[i].first);
      ASSERT_TRUE(got.ok()) << i << ": " << got.status().ToString();
      EXPECT_EQ(*got, kvs[i].second);
    } else {
      // The op that hit the failure and everything after it share the error.
      EXPECT_FALSE(statuses[i].ok()) << i;
    }
  }
}

TEST(EngineBatchTest, LargeValuesSeparateAtWalTime) {
  auto dev = MakeDevice();
  KvStoreOptions opts = SmallOptions();
  opts.large_value_threshold = 512;
  auto store = KvStore::Create(dev.get(), opts);
  ASSERT_TRUE(store.ok());
  const std::string small(64, 's');
  const std::string large(2048, 'L');
  std::vector<std::pair<std::string, std::string>> kvs = {
      {Key(0), small}, {Key(1), large}, {Key(2), small}, {Key(3), large}};
  std::vector<Status> statuses;
  ASSERT_TRUE((*store)->WriteBatch(MakeOps(kvs), &statuses).ok());
  for (const Status& s : statuses) {
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  EXPECT_EQ((*store)->stats().large_value_separations, 2u);
  for (const auto& [key, value] : kvs) {
    auto got = (*store)->Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, value);
  }
  // Large records live in their own segment family, so the main tail holds
  // only the two small records.
  EXPECT_TRUE((*store)->value_log()->HasUnflushedRecords());
}

// --- replication: one doorbell per group, both families mirrored ---------------

struct GroupCluster {
  std::unique_ptr<Fabric> fabric = std::make_unique<Fabric>();
  std::unique_ptr<BlockDevice> primary_device;
  std::vector<std::unique_ptr<BlockDevice>> backup_devices;
  std::unique_ptr<PrimaryRegion> primary;
  std::vector<std::unique_ptr<SendIndexBackupRegion>> backups;
};

GroupCluster MakeGroupCluster(int num_backups, const KvStoreOptions& opts,
                              int max_attempts = 1) {
  GroupCluster c;
  c.primary_device = MakeDevice("primary0-dev");
  auto primary = PrimaryRegion::Create(c.primary_device.get(), opts, ReplicationMode::kSendIndex);
  EXPECT_TRUE(primary.ok());
  c.primary = std::move(*primary);
  for (int i = 0; i < num_backups; ++i) {
    c.backup_devices.push_back(MakeDevice("backup" + std::to_string(i) + "-dev"));
    // 2x a segment: [0, seg) mirrors the main tail, [seg, 2*seg) the
    // large-value tail.
    auto buffer =
        c.fabric->RegisterBuffer("backup" + std::to_string(i), "primary0", 2 * kSegmentSize);
    auto backup = SendIndexBackupRegion::Create(c.backup_devices.back().get(), opts, buffer);
    EXPECT_TRUE(backup.ok());
    c.backups.push_back(std::move(*backup));
    c.primary->AddBackup(std::make_unique<LocalBackupChannel>(
        c.fabric.get(), "primary0", buffer, c.backups.back().get(), nullptr, max_attempts));
  }
  return c;
}

TEST(GroupCommitTest, OneDoorbellCoversTheWholeGroup) {
  auto cluster = MakeGroupCluster(1, SmallOptions());
  std::vector<std::pair<std::string, std::string>> kvs;
  for (int i = 0; i < 16; ++i) {
    kvs.emplace_back(Key(i), ValueFor(i));
  }
  std::vector<Status> statuses;
  ASSERT_TRUE(cluster.primary->WriteBatch(MakeOps(kvs), &statuses).ok());
  const ReplicationStats stats = cluster.primary->replication_stats();
  EXPECT_EQ(stats.doorbells, 1u);
  EXPECT_EQ(stats.doorbell_records, 16u);
  EXPECT_EQ(stats.log_records_replicated, 16u);
  // Unflushed tail records are served from the replica's buffer mirror
  // (DebugGet only sees the shipped index; the fenced read path sees the
  // tail — fence zero, so nothing is rejected).
  for (const auto& [key, value] : kvs) {
    auto got = cluster.backups[0]->Get(key, /*min_epoch=*/0, /*min_seq=*/0, nullptr);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    EXPECT_EQ(*got, value);
  }
  // The same data written one op at a time costs one doorbell per record.
  for (int i = 16; i < 32; ++i) {
    ASSERT_TRUE(cluster.primary->Put(Key(i), ValueFor(i)).ok());
  }
  const ReplicationStats after = cluster.primary->replication_stats();
  EXPECT_EQ(after.doorbells, 1u + 16u);
  EXPECT_EQ(after.doorbell_records, 32u);
}

TEST(GroupCommitTest, PartialGroupReplicatesOnlyAppliedOps) {
  auto cluster = MakeGroupCluster(1, SmallOptions());
  std::vector<std::pair<std::string, std::string>> kvs;
  for (int i = 0; i < 8; ++i) {
    kvs.emplace_back(Key(i), ValueFor(i));
  }
  kvs[4].first = "";  // fails alone, rest of the group commits
  std::vector<Status> statuses;
  ASSERT_TRUE(cluster.primary->WriteBatch(MakeOps(kvs), &statuses).ok());
  EXPECT_EQ(statuses[4].code(), StatusCode::kInvalidArgument);
  for (size_t i = 0; i < kvs.size(); ++i) {
    if (i == 4) {
      continue;
    }
    EXPECT_TRUE(statuses[i].ok()) << i;
    auto got = cluster.backups[0]->Get(kvs[i].first, 0, 0, nullptr);
    ASSERT_TRUE(got.ok()) << i << ": " << got.status().ToString();
    EXPECT_EQ(*got, kvs[i].second);
  }
  EXPECT_EQ(cluster.primary->replication_stats().doorbell_records, 7u);
}

TEST(GroupCommitTest, LargeFamilyMirrorsToSecondBufferHalfAndPromotes) {
  KvStoreOptions opts = SmallOptions();
  opts.large_value_threshold = 512;
  auto cluster = MakeGroupCluster(1, opts);
  const std::string small(64, 's');
  const std::string large(4000, 'L');
  std::map<std::string, std::string> model;
  for (int g = 0; g < 6; ++g) {
    std::vector<std::pair<std::string, std::string>> kvs;
    for (int i = 0; i < 4; ++i) {
      const int id = g * 4 + i;
      kvs.emplace_back(Key(id), i % 2 == 0 ? small + std::to_string(id)
                                           : large + std::to_string(id));
    }
    std::vector<Status> statuses;
    ASSERT_TRUE(cluster.primary->WriteBatch(MakeOps(kvs), &statuses).ok());
    for (auto& [key, value] : kvs) {
      model[key] = value;
    }
  }
  EXPECT_GT(cluster.primary->replication_stats().large_records_replicated, 0u);
  // Unflushed large records are served from the second buffer half.
  for (const auto& [key, value] : model) {
    auto got = cluster.backups[0]->Get(key, 0, 0, nullptr);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    EXPECT_EQ(*got, value);
  }
  // Promotion replays both halves into the recovered engine.
  auto promoted = cluster.backups[0]->Promote();
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  for (const auto& [key, value] : model) {
    auto got = (*promoted)->Get(key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    EXPECT_EQ(*got, value);
  }
}

TEST(GroupCommitTest, BackupAttachedMidTailSeesBothFamilies) {
  // AddBackup seeds both tail images, so a backup attached after writes (the
  // promote -> re-attach window) cannot hold a hole over acked records.
  KvStoreOptions opts = SmallOptions();
  opts.large_value_threshold = 512;
  auto cluster = MakeGroupCluster(0, opts);
  std::vector<std::pair<std::string, std::string>> kvs;
  for (int i = 0; i < 6; ++i) {
    kvs.emplace_back(Key(i), i % 2 == 0 ? std::string(64, 's') : std::string(2000, 'L'));
  }
  std::vector<Status> statuses;
  ASSERT_TRUE(cluster.primary->WriteBatch(MakeOps(kvs), &statuses).ok());
  // Attach a backup now, mid-tail on both families.
  cluster.backup_devices.push_back(MakeDevice("late-dev"));
  auto buffer = cluster.fabric->RegisterBuffer("late", "primary0", 2 * kSegmentSize);
  auto backup = SendIndexBackupRegion::Create(cluster.backup_devices.back().get(), opts, buffer);
  ASSERT_TRUE(backup.ok());
  cluster.backups.push_back(std::move(*backup));
  cluster.primary->AddBackup(std::make_unique<LocalBackupChannel>(
      cluster.fabric.get(), "primary0", buffer, cluster.backups.back().get(), nullptr, 1));
  for (const auto& [key, value] : kvs) {
    auto got = cluster.backups.back()->Get(key, 0, 0, nullptr);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    EXPECT_EQ(*got, value);
  }
}

// --- group-commit crash points (PR 1 matrix extension) -------------------------
//
// The group's doorbell is the only path that makes its records backup-visible:
// crash exactly there (after the engine append, before the one-sided write
// lands) and the promoted backup must hold every acked group and nothing of
// the unacked one. Halt just after the doorbell and the group counts as
// durable on the replica even though the primary died before acking.

constexpr int kCrashGroups = 200;
constexpr int kGroupSize = 8;

void RunGroupCommitCrashCase(bool halt_after) {
  SCOPED_TRACE(halt_after ? "halt-after-doorbell" : "crash-at-doorbell");
  auto cluster = MakeGroupCluster(1, SmallOptions());
  FaultInjector injector(/*seed=*/7);
  cluster.fabric->set_fault_injector(&injector);
  if (halt_after) {
    injector.HaltAfterNth(FaultSite::kFabricWrite, 6, "primary0");
  } else {
    injector.CrashAtNth(FaultSite::kFabricWrite, 6, "primary0");
  }
  std::map<std::string, std::string> acked;
  std::vector<std::string> crashed_group;
  for (int g = 0; g < kCrashGroups && crashed_group.empty(); ++g) {
    std::vector<std::pair<std::string, std::string>> kvs;
    for (int i = 0; i < kGroupSize; ++i) {
      kvs.emplace_back(Key(g * kGroupSize + i), ValueFor(g * kGroupSize + i));
    }
    std::vector<Status> statuses;
    Status s = cluster.primary->WriteBatch(MakeOps(kvs), &statuses);
    if (!s.ok()) {
      for (const Status& op : statuses) {
        EXPECT_FALSE(op.ok()) << "no op of an unreplicated group may ack";
      }
      for (auto& [key, value] : kvs) {
        crashed_group.push_back(key);
      }
      break;
    }
    for (auto& [key, value] : kvs) {
      acked[key] = value;
    }
  }
  ASSERT_TRUE(injector.crash_fired()) << "crash rule never fired";
  ASSERT_FALSE(crashed_group.empty()) << "crash fired but every group acked";

  cluster.fabric->set_fault_injector(nullptr);
  auto promoted = cluster.backups[0]->Promote();
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  // Every acked group survives promotion in full.
  for (const auto& [key, value] : acked) {
    auto got = (*promoted)->Get(key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    EXPECT_EQ(*got, value);
  }
  if (!halt_after) {
    // The doorbell itself was the crash: nothing of the unacked group may
    // surface after recovery.
    for (const std::string& key : crashed_group) {
      EXPECT_TRUE((*promoted)->Get(key).status().IsNotFound()) << key;
    }
  }
}

TEST(GroupCommitCrashTest, CrashBetweenGroupAppendAndDoorbell) {
  RunGroupCommitCrashCase(/*halt_after=*/false);
}

TEST(GroupCommitCrashTest, DeathAfterDoorbellKeepsGroupOnReplica) {
  RunGroupCommitCrashCase(/*halt_after=*/true);
}

// --- client batching end to end ------------------------------------------------

struct BatchClusterFixture {
  explicit BatchClusterFixture(int num_servers = 3, uint32_t num_regions = 4,
                               size_t large_value_threshold = 0) {
    RegionServerOptions options;
    options.device_options.segment_size = kSegmentSize;
    options.device_options.max_segments = 1 << 16;
    options.kv_options.l0_max_entries = 256;
    options.kv_options.max_levels = 3;
    options.kv_options.large_value_threshold = large_value_threshold;
    options.replication_mode = ReplicationMode::kSendIndex;
    std::vector<std::string> names;
    for (int i = 0; i < num_servers; ++i) {
      names.push_back("server" + std::to_string(i));
      servers.push_back(std::make_unique<RegionServer>(&fabric, &zk, names.back(), options));
      EXPECT_TRUE(servers.back()->Start().ok());
      directory[names.back()] = servers.back().get();
    }
    master = std::make_unique<Master>(&zk, "master0", directory);
    EXPECT_TRUE(master->Campaign().ok());
    auto map = RegionMap::CreateUniform(num_regions, "user", 10, 1000000000ull, names,
                                        /*replication_factor=*/2);
    EXPECT_TRUE(map.ok());
    EXPECT_TRUE(master->Bootstrap(*map).ok());
  }

  std::unique_ptr<TebisClient> MakeClient(const std::string& name) {
    std::vector<std::string> seeds;
    for (auto& [server_name, server] : directory) {
      seeds.push_back(server_name);
    }
    auto client = std::make_unique<TebisClient>(
        &fabric, name,
        [this](const std::string& server) -> ServerEndpoint* {
          auto it = directory.find(server);
          if (it == directory.end() || it->second->crashed()) {
            return nullptr;
          }
          return it->second->client_endpoint();
        },
        seeds);
    EXPECT_TRUE(client->Connect().ok());
    return client;
  }

  static std::string UserKey(uint64_t i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "user%010llu",
             static_cast<unsigned long long>(i * 7919 % 1000000000ull));
    return buf;
  }

  Fabric fabric;
  Coordinator zk;
  std::vector<std::unique_ptr<RegionServer>> servers;
  std::map<std::string, RegionServer*> directory;
  std::unique_ptr<Master> master;
};

TEST(ClientBatchingTest, CoalescedPutsCommitAndReadBack) {
  BatchClusterFixture cluster;
  auto client = cluster.MakeClient("client0");
  client->set_batching(8);
  std::vector<TebisClient::OpHandle> handles;
  for (int i = 0; i < 200; ++i) {
    auto h = client->PutAsync(BatchClusterFixture::UserKey(i), "batched-" + std::to_string(i));
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    handles.push_back(*h);
  }
  ASSERT_TRUE(client->WaitAll().ok());
  EXPECT_GT(client->stats().batches_sent, 0u);
  EXPECT_GT(client->stats().batched_ops, 150u);  // trailing partial groups may re-issue singly
  for (int i = 0; i < 200; i += 7) {
    auto v = client->Get(BatchClusterFixture::UserKey(i));
    ASSERT_TRUE(v.ok()) << i << ": " << v.status().ToString();
    EXPECT_EQ(*v, "batched-" + std::to_string(i));
  }
}

TEST(ClientBatchingTest, WaitOnIndividualHandlesResolvesBatchedOps) {
  BatchClusterFixture cluster;
  auto client = cluster.MakeClient("client0");
  client->set_batching(16);
  std::vector<TebisClient::OpHandle> handles;
  for (int i = 0; i < 50; ++i) {
    auto h = client->PutAsync(BatchClusterFixture::UserKey(i), "w-" + std::to_string(i));
    ASSERT_TRUE(h.ok());
    handles.push_back(*h);
  }
  // Waiting in arbitrary order flushes staged groups and distributes per-op
  // statuses from each batch reply.
  for (size_t i = handles.size(); i-- > 0;) {
    EXPECT_TRUE(client->Wait(handles[i]).status.ok()) << i;
  }
  EXPECT_EQ(client->pending(), 0u);
}

TEST(ClientBatchingTest, PerOpStatusesSurfaceMixedOutcomes) {
  BatchClusterFixture cluster;
  auto client = cluster.MakeClient("client0");
  client->set_batching(8);
  std::vector<TebisClient::OpHandle> handles;
  std::vector<bool> expect_ok;
  for (int i = 0; i < 8; ++i) {
    std::string key = BatchClusterFixture::UserKey(i);
    if (i == 3) {
      key += std::string(300, 'x');  // key > kMaxKeySize: the engine rejects it alone
      expect_ok.push_back(false);
    } else {
      expect_ok.push_back(true);
    }
    auto h = client->PutAsync(key, "mixed-" + std::to_string(i));
    ASSERT_TRUE(h.ok());
    handles.push_back(*h);
  }
  for (size_t i = 0; i < handles.size(); ++i) {
    TebisClient::OpResult result = client->Wait(handles[i]);
    if (expect_ok[i]) {
      EXPECT_TRUE(result.status.ok()) << i << ": " << result.status.ToString();
    } else {
      EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument)
          << i << ": " << result.status.ToString();
    }
  }
  for (int i = 0; i < 8; ++i) {
    if (!expect_ok[i]) {
      continue;
    }
    auto v = client->Get(BatchClusterFixture::UserKey(i));
    ASSERT_TRUE(v.ok()) << i;
    EXPECT_EQ(*v, "mixed-" + std::to_string(i));
  }
}

TEST(ClientBatchingTest, ReadsFlushStagedWrites) {
  BatchClusterFixture cluster;
  auto client = cluster.MakeClient("client0");
  client->set_batching(64);  // threshold far above what we stage
  auto h = client->PutAsync(BatchClusterFixture::UserKey(1), "staged");
  ASSERT_TRUE(h.ok());
  // The read must not overtake the staged write.
  auto v = client->Get(BatchClusterFixture::UserKey(1));
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v, "staged");
  EXPECT_TRUE(client->WaitAll().ok());
}

TEST(ClientBatchingTest, BatchSizeOneStaysOnSingleOpWire) {
  BatchClusterFixture cluster;
  auto client = cluster.MakeClient("client0");
  // Default batch_size=1: no kKvBatch frame is ever emitted.
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(client->Put(BatchClusterFixture::UserKey(i), "single").ok());
  }
  EXPECT_EQ(client->stats().batches_sent, 0u);
  EXPECT_EQ(client->stats().batched_ops, 0u);
  EXPECT_EQ(client->stats().puts, 40u);
}

TEST(ClientBatchingTest, LargeValuesSeparateThroughTheWire) {
  BatchClusterFixture cluster(/*num_servers=*/3, /*num_regions=*/4,
                              /*large_value_threshold=*/512);
  auto client = cluster.MakeClient("client0");
  client->set_batching(4, /*batch_bytes=*/1 << 20);
  const std::string large(4000, 'L');
  std::vector<TebisClient::OpHandle> handles;
  for (int i = 0; i < 32; ++i) {
    auto h = client->PutAsync(BatchClusterFixture::UserKey(i),
                              i % 2 == 0 ? "small-" + std::to_string(i) : large);
    ASSERT_TRUE(h.ok());
  }
  ASSERT_TRUE(client->WaitAll().ok());
  for (int i = 0; i < 32; ++i) {
    auto v = client->Get(BatchClusterFixture::UserKey(i));
    ASSERT_TRUE(v.ok()) << i << ": " << v.status().ToString();
    EXPECT_EQ(*v, i % 2 == 0 ? "small-" + std::to_string(i) : large);
  }
}

TEST(ClientBatchingTest, DeletesRideBatchesWithPuts) {
  BatchClusterFixture cluster;
  auto client = cluster.MakeClient("client0");
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(client->Put(BatchClusterFixture::UserKey(i), "before").ok());
  }
  client->set_batching(8);
  for (int i = 0; i < 16; ++i) {
    if (i % 2 == 0) {
      ASSERT_TRUE(client->DeleteAsync(BatchClusterFixture::UserKey(i)).ok());
    } else {
      ASSERT_TRUE(client->PutAsync(BatchClusterFixture::UserKey(i), "after").ok());
    }
  }
  ASSERT_TRUE(client->WaitAll().ok());
  for (int i = 0; i < 16; ++i) {
    auto v = client->Get(BatchClusterFixture::UserKey(i));
    if (i % 2 == 0) {
      EXPECT_TRUE(v.status().IsNotFound()) << i;
    } else {
      ASSERT_TRUE(v.ok()) << i;
      EXPECT_EQ(*v, "after");
    }
  }
}

TEST(ClientBatchingTest, BatchFallsBackWhenPrimaryCrashes) {
  BatchClusterFixture cluster;
  auto client = cluster.MakeClient("client0");
  client->set_rpc_timeout_ns(50ull * 1000 * 1000);
  client->set_batching(8);
  // Crash a primary between rounds: batch frames addressed to it die as a
  // unit and every staged op re-issues through the single-op failover path.
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(client->PutAsync(BatchClusterFixture::UserKey(i), "pre-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(client->WaitAll().ok());
  cluster.servers[0]->Crash();  // the master reacts to the ephemeral-node drop
  for (int i = 32; i < 64; ++i) {
    ASSERT_TRUE(
        client->PutAsync(BatchClusterFixture::UserKey(i), "post-" + std::to_string(i)).ok());
  }
  Status s = client->WaitAll();
  EXPECT_TRUE(s.ok()) << s.ToString();
  for (int i = 32; i < 64; i += 5) {
    auto v = client->Get(BatchClusterFixture::UserKey(i));
    ASSERT_TRUE(v.ok()) << i << ": " << v.status().ToString();
    EXPECT_EQ(*v, "post-" + std::to_string(i));
  }
}

}  // namespace
}  // namespace tebis
