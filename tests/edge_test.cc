// Edge cases and deeper scenarios across module boundaries.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "src/common/random.h"
#include "src/net/fabric.h"
#include "src/replication/local_backup_channel.h"
#include "src/replication/primary_region.h"
#include "src/replication/send_index_backup.h"
#include "src/storage/block_device.h"
#include "src/ycsb/sim_cluster.h"

namespace tebis {
namespace {

constexpr uint64_t kSegmentSize = 1 << 16;

std::unique_ptr<BlockDevice> MakeDevice() {
  BlockDeviceOptions opts;
  opts.segment_size = kSegmentSize;
  opts.max_segments = 1 << 16;
  auto dev = BlockDevice::Create(opts);
  EXPECT_TRUE(dev.ok());
  return std::move(*dev);
}

KvStoreOptions SmallOptions() {
  KvStoreOptions opts;
  opts.l0_max_entries = 256;
  opts.max_levels = 3;
  return opts;
}

std::string Key(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key%010llu", static_cast<unsigned long long>(i));
  return buf;
}

// --- KvStore boundaries -----------------------------------------------------

TEST(KvStoreEdgeTest, MaxSizeKeyRoundTrips) {
  auto dev = MakeDevice();
  auto store = KvStore::Create(dev.get(), SmallOptions());
  ASSERT_TRUE(store.ok());
  const std::string key(kMaxKeySize, 'K');
  ASSERT_TRUE((*store)->Put(key, "big-key-value").ok());
  ASSERT_TRUE((*store)->FlushL0().ok());  // survives a compaction too
  auto v = (*store)->Get(key);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "big-key-value");
  // One byte longer is rejected.
  EXPECT_FALSE((*store)->Put(key + "x", "v").ok());
}

TEST(KvStoreEdgeTest, EmptyValueIsLegal) {
  auto dev = MakeDevice();
  auto store = KvStore::Create(dev.get(), SmallOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("empty", "").ok());
  auto v = (*store)->Get("empty");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "");
  // Empty value != deleted.
  ASSERT_TRUE((*store)->Delete("empty").ok());
  EXPECT_TRUE((*store)->Get("empty").status().IsNotFound());
}

TEST(KvStoreEdgeTest, ValueNearSegmentSize) {
  auto dev = MakeDevice();
  auto store = KvStore::Create(dev.get(), SmallOptions());
  ASSERT_TRUE(store.ok());
  // Largest value that fits a record in one segment.
  const size_t max_value =
      kSegmentSize - LogRecordSize(3, 0) - 4;
  ASSERT_TRUE((*store)->Put("big", std::string(max_value, 'v')).ok());
  auto v = (*store)->Get("big");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->size(), max_value);
  EXPECT_FALSE((*store)->Put("big", std::string(max_value + 1, 'v')).ok());
}

TEST(KvStoreEdgeTest, GetOnEmptyStore) {
  auto dev = MakeDevice();
  auto store = KvStore::Create(dev.get(), SmallOptions());
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->Get("anything").status().IsNotFound());
  auto scan = (*store)->Scan(Slice(), 10);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->empty());
  EXPECT_TRUE((*store)->FlushL0().ok());  // flushing nothing is fine
}

TEST(KvStoreEdgeTest, ScanLimitZeroAndDeleteMissing) {
  auto dev = MakeDevice();
  auto store = KvStore::Create(dev.get(), SmallOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("k", "v").ok());
  auto scan = (*store)->Scan(Slice(), 0);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->empty());
  // Deleting a missing key writes a tombstone (legal; hides nothing).
  ASSERT_TRUE((*store)->Delete("never-existed").ok());
  EXPECT_TRUE((*store)->Get("never-existed").status().IsNotFound());
}

TEST(KvStoreEdgeTest, ManyVersionsOfOneKey) {
  auto dev = MakeDevice();
  auto store = KvStore::Create(dev.get(), SmallOptions());
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE((*store)->Put("hot", "version-" + std::to_string(i)).ok());
    if (i % 500 == 0) {
      ASSERT_TRUE((*store)->FlushL0().ok());
    }
  }
  auto v = (*store)->Get("hot");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "version-2999");
  // The full scan returns exactly one version.
  auto scan = (*store)->Scan(Slice(), 100);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->size(), 1u);
  EXPECT_EQ((*scan)[0].value, "version-2999");
}

// --- forward-reference reservation in the rewriter (§3.3) ---------------------

TEST(IndexRewriteEdgeTest, ParentSegmentShippedBeforeChild) {
  // Construct the race the reservation mechanism exists for: an index-node
  // segment referencing a leaf segment arrives first; the backup must reserve
  // a local segment for the child and fill it when the bytes arrive.
  auto primary_dev = MakeDevice();
  auto backup_dev = MakeDevice();
  Fabric fabric;
  auto buffer = fabric.RegisterBuffer("b", "p", kSegmentSize);
  KvStoreOptions opts = SmallOptions();
  auto backup = SendIndexBackupRegion::Create(backup_dev.get(), opts, buffer);
  ASSERT_TRUE(backup.ok());

  // Build a two-node "tree" on the primary device: leaf in segment A, index
  // root in segment B pointing at the leaf.
  auto log = ValueLog::Create(primary_dev.get());
  ASSERT_TRUE(log.ok());
  auto rec = (*log)->Append("only-key", "only-value", false);
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE((*log)->FlushTail().ok());
  const SegmentId log_seg = (*log)->flushed_segments()[0];

  // Backup must know the log mapping first (the flush message).
  std::string image(kSegmentSize, 0);
  ASSERT_TRUE(primary_dev->Read(primary_dev->geometry().BaseOffset(log_seg), kSegmentSize,
                                image.data(), IoClass::kOther)
                  .ok());
  ASSERT_TRUE(buffer->RdmaWrite(0, image).ok());
  ASSERT_TRUE((*backup)->HandleLogFlush(log_seg).ok());

  const SegmentId leaf_seg = 70;   // primary segment numbers, never shipped yet
  const SegmentId index_seg = 71;
  SegmentGeometry geometry(kSegmentSize);
  std::string leaf_segment(opts.node_size, 0);
  LeafNodeBuilder leaf(leaf_segment.data(), opts.node_size);
  leaf.Add("only-key", rec->offset);
  leaf.Finish();
  const uint64_t leaf_offset = geometry.BaseOffset(leaf_seg);  // node at offset 0

  std::string index_segment(opts.node_size, 0);
  IndexNodeBuilder index(index_segment.data(), opts.node_size);
  index.Add("only-key", leaf_offset);
  index.Finish(1);

  // Ship PARENT first: the rewrite must reserve a local segment for leaf_seg.
  ASSERT_TRUE((*backup)->HandleCompactionBegin(1, 0, 1).ok());
  ASSERT_TRUE((*backup)->HandleIndexSegment(1, 1, 1, index_seg, index_segment).ok());
  ASSERT_TRUE((*backup)->HandleIndexSegment(1, 1, 0, leaf_seg, leaf_segment).ok());
  BuiltTree primary_tree;
  primary_tree.root_offset = geometry.BaseOffset(index_seg);
  primary_tree.height = 1;
  primary_tree.num_entries = 1;
  primary_tree.segments = {leaf_seg, index_seg};
  ASSERT_TRUE((*backup)->HandleCompactionEnd(1, 0, 1, primary_tree).ok());

  // The backup serves the key through its rewritten two-level tree.
  auto value = (*backup)->DebugGet("only-key");
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  EXPECT_EQ(*value, "only-value");
}

// --- promotion after GC ---------------------------------------------------------

TEST(GcPromotionTest, PromoteAfterTrimServesEverything) {
  auto primary_dev = MakeDevice();
  auto backup_dev = MakeDevice();
  Fabric fabric;
  KvStoreOptions opts = SmallOptions();
  opts.l0_max_entries = 64;
  auto primary = PrimaryRegion::Create(primary_dev.get(), opts, ReplicationMode::kSendIndex);
  ASSERT_TRUE(primary.ok());
  auto buffer = fabric.RegisterBuffer("b0", "p0", kSegmentSize);
  auto backup = SendIndexBackupRegion::Create(backup_dev.get(), opts, buffer);
  ASSERT_TRUE(backup.ok());
  (*primary)->AddBackup(std::make_unique<LocalBackupChannel>(&fabric, "p0", buffer,
                                                             backup->get(), nullptr));
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE((*primary)->Put(Key(i % 50), std::string(120, 'x' + (i % 3))).ok());
  }
  auto freed = (*primary)->GarbageCollect(3);
  ASSERT_TRUE(freed.ok()) << freed.status().ToString();
  ASSERT_GT(*freed, 0u);
  // Keep writing, then promote the backup.
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE((*primary)->Put(Key(i % 50), "final-" + std::to_string(i)).ok());
  }
  std::map<std::string, std::string> expect;
  for (int k = 0; k < 50; ++k) {
    auto v = (*primary)->Get(Key(k));
    ASSERT_TRUE(v.ok());
    expect[Key(k)] = *v;
  }
  auto promoted = (*backup)->Promote();
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  for (const auto& [key, value] : expect) {
    auto v = (*promoted)->Get(key);
    ASSERT_TRUE(v.ok()) << key << " " << v.status().ToString();
    EXPECT_EQ(*v, value) << key;
  }
}

// --- FullSync equivalence ---------------------------------------------------------

TEST(FullSyncTest, SyncedBackupMatchesLiveBackup) {
  // Build a primary with one live backup; after a workload, full-sync a
  // SECOND backup and require both backups to serve identical data.
  auto primary_dev = MakeDevice();
  auto live_dev = MakeDevice();
  auto late_dev = MakeDevice();
  Fabric fabric;
  KvStoreOptions opts = SmallOptions();
  auto primary = PrimaryRegion::Create(primary_dev.get(), opts, ReplicationMode::kSendIndex);
  ASSERT_TRUE(primary.ok());
  auto live_buffer = fabric.RegisterBuffer("live", "p0", kSegmentSize);
  auto live = SendIndexBackupRegion::Create(live_dev.get(), opts, live_buffer);
  ASSERT_TRUE(live.ok());
  (*primary)->AddBackup(std::make_unique<LocalBackupChannel>(&fabric, "p0", live_buffer,
                                                             live->get(), nullptr));
  Random rng(9);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE((*primary)->Put(Key(rng.Uniform(700)), rng.Bytes(1 + rng.Uniform(100))).ok());
  }
  // Late joiner.
  auto late_buffer = fabric.RegisterBuffer("late", "p0", kSegmentSize);
  auto late = SendIndexBackupRegion::Create(late_dev.get(), opts, late_buffer);
  ASSERT_TRUE(late.ok());
  LocalBackupChannel channel(&fabric, "p0", late_buffer, late->get(), nullptr);
  ASSERT_TRUE((*primary)->FullSync(&channel).ok());
  (*primary)->AddBackup(std::make_unique<LocalBackupChannel>(&fabric, "p0", late_buffer,
                                                             late->get(), nullptr));
  // More traffic after the sync, then flush everything down.
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE((*primary)->Put(Key(rng.Uniform(700)), "post-sync").ok());
  }
  ASSERT_TRUE((*primary)->FlushL0().ok());
  for (int k = 0; k < 700; ++k) {
    auto a = (*live)->DebugGet(Key(k));
    auto b = (*late)->DebugGet(Key(k));
    ASSERT_EQ(a.ok(), b.ok()) << Key(k) << " " << a.status().ToString() << " vs "
                              << b.status().ToString();
    if (a.ok()) {
      EXPECT_EQ(*a, *b) << Key(k);
    }
  }
  // The late backup can be promoted (its replay point was synced too).
  auto promoted = (*late)->Promote();
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  ASSERT_TRUE((*promoted)->Get(Key(0)).ok() ||
              (*promoted)->Get(Key(0)).status().IsNotFound());
}

// --- SimCluster GC through PrimaryRegion handles -----------------------------------

TEST(SimClusterGcTest, RegionGcKeepsClusterConsistent) {
  SimClusterOptions options;
  options.num_servers = 3;
  options.num_regions = 2;
  options.replication_factor = 2;
  options.mode = ReplicationMode::kSendIndex;
  options.kv_options.l0_max_entries = 64;
  options.device_options.segment_size = kSegmentSize;
  options.device_options.max_segments = 1 << 16;
  options.key_space = 1000;
  auto cluster = SimCluster::Create(options);
  ASSERT_TRUE(cluster.ok());
  for (int i = 0; i < 4000; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "user%010d", i % 40);
    ASSERT_TRUE((*cluster)->Put(key, std::string(150, 'z')).ok());
  }
  for (int r = 0; r < (*cluster)->num_regions(); ++r) {
    auto freed = (*cluster)->region(r)->GarbageCollect(2);
    ASSERT_TRUE(freed.ok()) << freed.status().ToString();
  }
  std::vector<std::string> keys;
  for (int k = 0; k < 40; ++k) {
    char key[32];
    snprintf(key, sizeof(key), "user%010d", k);
    keys.push_back(key);
  }
  Status s = (*cluster)->VerifyBackupsConsistent(keys);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

}  // namespace
}  // namespace tebis
