// Concurrency stress: several client threads drive a replicated cluster over
// the message protocol at once — concurrent region locking, concurrent
// compactions on different servers, and concurrent replication channels.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "src/cluster/client.h"
#include "src/cluster/coordinator.h"
#include "src/cluster/master.h"
#include "src/cluster/region_server.h"
#include "src/common/random.h"

namespace tebis {
namespace {

TEST(StressTest, ConcurrentClientsMixedWorkload) {
  Fabric fabric;
  Coordinator zk;
  RegionServerOptions options;
  options.device_options.segment_size = 1 << 16;
  options.device_options.max_segments = 1 << 16;
  options.kv_options.l0_max_entries = 128;
  options.replication_mode = ReplicationMode::kSendIndex;
  std::vector<std::string> names;
  std::vector<std::unique_ptr<RegionServer>> servers;
  std::map<std::string, RegionServer*> directory;
  for (int i = 0; i < 3; ++i) {
    names.push_back("server" + std::to_string(i));
    servers.push_back(std::make_unique<RegionServer>(&fabric, &zk, names.back(), options));
    ASSERT_TRUE(servers.back()->Start().ok());
    directory[names.back()] = servers.back().get();
  }
  Master master(&zk, "m", directory);
  ASSERT_TRUE(master.Campaign().ok());
  auto map = RegionMap::CreateUniform(6, "user", 10, 6000, names, 2);
  ASSERT_TRUE(master.Bootstrap(*map).ok());

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 800;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      TebisClient client(
          &fabric, "stress" + std::to_string(t),
          [&](const std::string& name) -> ServerEndpoint* {
            auto it = directory.find(name);
            return it == directory.end() ? nullptr : it->second->client_endpoint();
          },
          names);
      client.set_rpc_timeout_ns(10'000'000'000ull);
      if (!client.Connect().ok()) {
        failures++;
        return;
      }
      Random rng(100 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        char key[32];
        snprintf(key, sizeof(key), "user%010llu",
                 static_cast<unsigned long long>(rng.Uniform(6000)));
        const uint64_t roll = rng.Uniform(10);
        if (roll < 6) {
          if (!client.Put(key, "t" + std::to_string(t) + "-" + std::to_string(i)).ok()) {
            failures++;
          }
        } else if (roll < 9) {
          auto v = client.Get(key);
          if (!v.ok() && !v.status().IsNotFound()) {
            failures++;
          }
        } else {
          if (!client.Delete(key).ok()) {
            failures++;
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  // Every server saw traffic and the system compacted under concurrency.
  uint64_t total_puts = 0;
  for (auto& server : servers) {
    total_puts += server->Aggregate().puts;
  }
  EXPECT_GE(total_puts, static_cast<uint64_t>(kThreads) * kOpsPerThread / 2);
  for (auto& server : servers) {
    server->Stop();
  }
}

}  // namespace
}  // namespace tebis
