// Region-server admin API edge cases: open/close/double-open, role checks,
// buffer exchange, and wrong-region replies for clients with stale maps.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/cluster/client.h"
#include "src/cluster/coordinator.h"
#include "src/cluster/master.h"
#include "src/cluster/region_server.h"

namespace tebis {
namespace {

RegionServerOptions SmallServerOptions() {
  RegionServerOptions options;
  options.device_options.segment_size = 1 << 16;
  options.device_options.max_segments = 1 << 14;
  options.kv_options.l0_max_entries = 128;
  return options;
}

TEST(AdminTest, OpenCloseLifecycle) {
  Fabric fabric;
  Coordinator zk;
  RegionServer server(&fabric, &zk, "s0", SmallServerOptions());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.OpenPrimaryRegion(1).ok());
  EXPECT_EQ(server.OpenPrimaryRegion(1).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(server.OpenBackupRegion(1).code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(server.IsPrimaryFor(1));
  EXPECT_FALSE(server.IsPrimaryFor(2));
  ASSERT_TRUE(server.CloseRegion(1).ok());
  EXPECT_TRUE(server.CloseRegion(1).IsNotFound());
  // Re-open after close works.
  EXPECT_TRUE(server.OpenBackupRegion(1).ok());
  EXPECT_FALSE(server.IsPrimaryFor(1));
  server.Stop();
}

TEST(AdminTest, ReplicationBufferOnlyForBackups) {
  Fabric fabric;
  Coordinator zk;
  RegionServer server(&fabric, &zk, "s0", SmallServerOptions());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.OpenPrimaryRegion(1).ok());
  ASSERT_TRUE(server.OpenBackupRegion(2).ok());
  EXPECT_TRUE(server.GetReplicationBuffer(1).status().IsNotFound());  // primary role
  auto buffer = server.GetReplicationBuffer(2);
  ASSERT_TRUE(buffer.ok());
  // 2x segment since PR 9: [0, seg) mirrors the main log tail, [seg, 2*seg)
  // the large-value tail.
  EXPECT_EQ((*buffer)->size(), 2 * SmallServerOptions().device_options.segment_size);
  EXPECT_TRUE(server.GetReplicationBuffer(99).status().IsNotFound());
  server.Stop();
}

TEST(AdminTest, RoleChecksOnAttachPromoteDemote) {
  Fabric fabric;
  Coordinator zk;
  RegionServer a(&fabric, &zk, "a", SmallServerOptions());
  RegionServer b(&fabric, &zk, "b", SmallServerOptions());
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  ASSERT_TRUE(a.OpenPrimaryRegion(1).ok());
  ASSERT_TRUE(b.OpenBackupRegion(1).ok());
  // Attach requires the local side to be primary.
  EXPECT_FALSE(b.AttachBackup(1, &a).ok());
  EXPECT_TRUE(a.AttachBackup(1, &b).ok());
  // Promote requires a backup role; demote requires a primary role.
  SegmentMap log_map;
  EXPECT_FALSE(a.PromoteRegion(1, &log_map).ok());
  EXPECT_FALSE(b.DemoteRegion(1, log_map).ok());
  // Demotion requires a sealed tail.
  ASSERT_TRUE(a.OpenPrimaryRegion(7).ok());
  a.Stop();
  b.Stop();
}

TEST(AdminTest, StaleClientGetsWrongRegionFlag) {
  Fabric fabric;
  Coordinator zk;
  std::map<std::string, RegionServer*> directory;
  RegionServer s0(&fabric, &zk, "s0", SmallServerOptions());
  RegionServer s1(&fabric, &zk, "s1", SmallServerOptions());
  ASSERT_TRUE(s0.Start().ok());
  ASSERT_TRUE(s1.Start().ok());
  directory["s0"] = &s0;
  directory["s1"] = &s1;
  Master master(&zk, "m", directory);
  ASSERT_TRUE(master.Campaign().ok());
  auto map = RegionMap::CreateUniform(1, "user", 10, 1000, {"s0", "s1"}, 2);
  ASSERT_TRUE(master.Bootstrap(*map).ok());

  TebisClient client(
      &fabric, "c",
      [&](const std::string& name) -> ServerEndpoint* {
        return directory.contains(name) ? directory[name]->client_endpoint() : nullptr;
      },
      {"s0", "s1"});
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Put("user0000000001", "before").ok());

  // Move the primary role; the client still holds the old map and must
  // recover via the wrong-region reply path.
  ASSERT_TRUE(master.MovePrimary(0, "s1").ok());
  auto v = client.Get("user0000000001");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v, "before");
  EXPECT_GE(client.stats().wrong_region_retries, 1u);
  s0.Stop();
  s1.Stop();
}

TEST(AdminTest, ServerRegistersEphemeralMembership) {
  Fabric fabric;
  Coordinator zk;
  {
    RegionServer server(&fabric, &zk, "mortal", SmallServerOptions());
    ASSERT_TRUE(server.Start().ok());
    EXPECT_TRUE(zk.Exists("/servers/mortal"));
    server.Crash();
    EXPECT_FALSE(zk.Exists("/servers/mortal"));
  }
}

}  // namespace
}  // namespace tebis
