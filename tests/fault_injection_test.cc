// Deterministic fault injection: injector unit tests, per-layer hook tests
// (fabric / block device / RPC / replication channels), and the §3.5
// crash-point matrix — kill the primary at every replication protocol step,
// promote a backup, and check the promoted store against a non-faulty
// reference store.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/lsm/kv_store.h"
#include "src/net/fabric.h"
#include "src/net/rpc_client.h"
#include "src/net/server_endpoint.h"
#include "src/replication/build_index_backup.h"
#include "src/replication/local_backup_channel.h"
#include "src/replication/primary_region.h"
#include "src/replication/send_index_backup.h"
#include "src/storage/block_device.h"
#include "src/testing/fault_injector.h"

namespace tebis {
namespace {

constexpr uint64_t kSegmentSize = 1 << 16;

std::unique_ptr<BlockDevice> MakeDevice(const std::string& name = "") {
  BlockDeviceOptions opts;
  opts.segment_size = kSegmentSize;
  opts.max_segments = 1 << 16;
  opts.name = name;
  auto dev = BlockDevice::Create(opts);
  EXPECT_TRUE(dev.ok());
  return std::move(*dev);
}

KvStoreOptions SmallOptions() {
  KvStoreOptions opts;
  opts.l0_max_entries = 256;
  opts.growth_factor = 4;
  opts.max_levels = 3;
  return opts;
}

std::string Key(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key%010llu", static_cast<unsigned long long>(i));
  return buf;
}

std::string ValueFor(uint64_t i) {
  return "cv-" + std::to_string(i) + std::string(48, 'x');
}

// --- injector unit tests -----------------------------------------------------

TEST(FaultInjectorTest, FailNthFiresExactlyOnce) {
  FaultInjector injector;
  injector.FailNth(FaultSite::kRpcSend, 2, StatusCode::kUnavailable);
  EXPECT_TRUE(injector.OnSite(FaultSite::kRpcSend, "a", "b").ok());
  EXPECT_TRUE(injector.OnSite(FaultSite::kRpcSend, "a", "b").ok());
  Status failed = injector.OnSite(FaultSite::kRpcSend, "a", "b");
  EXPECT_TRUE(failed.IsUnavailable()) << failed.ToString();
  EXPECT_TRUE(injector.OnSite(FaultSite::kRpcSend, "a", "b").ok());
  const FaultInjectorStats stats = injector.stats();
  EXPECT_EQ(stats.seen[static_cast<int>(FaultSite::kRpcSend)], 4u);
  EXPECT_EQ(stats.injected[static_cast<int>(FaultSite::kRpcSend)], 1u);
  ASSERT_EQ(injector.history().size(), 1u);
  EXPECT_EQ(injector.history()[0].site, FaultSite::kRpcSend);
  EXPECT_EQ(injector.history()[0].event_index, 2u);
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  auto drive = [](uint64_t seed) {
    FaultInjector injector(seed);
    injector.FailWithProbability(FaultSite::kFabricWrite, 0.3);
    injector.FailWithProbability(FaultSite::kReplFlushSend, 0.1);
    for (int i = 0; i < 200; ++i) {
      (void)injector.OnSite(FaultSite::kFabricWrite, "p", "b");
      if (i % 5 == 0) {
        (void)injector.OnSite(FaultSite::kReplFlushSend, "p", "b");
      }
    }
    return injector.history();
  };
  const auto a = drive(42);
  const auto b = drive(42);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i] == b[i]) << "schedules diverge at fault " << i;
  }
  EXPECT_GT(a.size(), 0u);
  // A different seed produces a different schedule.
  const auto c = drive(43);
  bool identical = a.size() == c.size();
  for (size_t i = 0; identical && i < a.size(); ++i) {
    identical = a[i] == c[i];
  }
  EXPECT_FALSE(identical);
}

TEST(FaultInjectorTest, PartitionBlocksBothDirectionsUntilHealed) {
  FaultInjector injector;
  injector.Partition("n1", "n2");
  EXPECT_TRUE(injector.OnSite(FaultSite::kFabricWrite, "n1", "n2").IsUnavailable());
  EXPECT_TRUE(injector.OnSite(FaultSite::kFabricWrite, "n2", "n1").IsUnavailable());
  EXPECT_TRUE(injector.OnSite(FaultSite::kFabricWrite, "n1", "n3").ok());
  injector.Heal("n2", "n1");  // order-insensitive
  EXPECT_TRUE(injector.OnSite(FaultSite::kFabricWrite, "n1", "n2").ok());
  EXPECT_EQ(injector.stats().partition_drops, 2u);
}

TEST(FaultInjectorTest, FailedQueuePairBlocksOneDirection) {
  FaultInjector injector;
  injector.FailQueuePair(/*owner=*/"backup0", /*writer=*/"primary0");
  EXPECT_TRUE(injector.OnFabricWrite("primary0", "backup0").IsUnavailable());
  // The reverse direction is a different QP.
  EXPECT_TRUE(injector.OnFabricWrite("backup0", "primary0").ok());
  injector.RestoreQueuePair("backup0", "primary0");
  EXPECT_TRUE(injector.OnFabricWrite("primary0", "backup0").ok());
  EXPECT_EQ(injector.stats().qp_drops, 1u);
}

TEST(FaultInjectorTest, HaltedNodeDropsAllTrafficUntilRevived) {
  FaultInjector injector;
  injector.HaltNode("dead");
  EXPECT_TRUE(injector.IsHalted("dead"));
  EXPECT_TRUE(injector.OnSite(FaultSite::kReplFlushSend, "dead", "x").IsUnavailable());
  EXPECT_TRUE(injector.OnSite(FaultSite::kReplFlushAck, "x", "dead").IsUnavailable());
  injector.ReviveNode("dead");
  EXPECT_TRUE(injector.OnSite(FaultSite::kReplFlushSend, "dead", "x").ok());
  EXPECT_EQ(injector.stats().halted_drops, 2u);
}

TEST(FaultInjectorTest, ClearRulesPreservesCountersAndHistory) {
  FaultInjector injector;
  injector.FailNth(FaultSite::kRpcSend, 0);
  injector.Partition("a", "b");
  injector.HaltNode("c");
  EXPECT_FALSE(injector.OnSite(FaultSite::kRpcSend, "a", "x").ok());
  injector.ClearRules();
  EXPECT_FALSE(injector.IsHalted("c"));
  EXPECT_TRUE(injector.OnSite(FaultSite::kFabricWrite, "a", "b").ok());
  // Counters and history survive; the event index keeps counting.
  EXPECT_EQ(injector.stats().seen[static_cast<int>(FaultSite::kRpcSend)], 1u);
  EXPECT_EQ(injector.history().size(), 1u);
  EXPECT_TRUE(injector.OnSite(FaultSite::kRpcSend, "a", "x").ok());
  EXPECT_EQ(injector.stats().seen[static_cast<int>(FaultSite::kRpcSend)], 2u);
}

TEST(FaultInjectorTest, CrashAtNthHaltsTheNode) {
  FaultInjector injector;
  injector.CrashAtNth(FaultSite::kReplFlushSend, 1, "primary0");
  EXPECT_TRUE(injector.OnSite(FaultSite::kReplFlushSend, "primary0", "backup0").ok());
  EXPECT_FALSE(injector.crash_fired());
  EXPECT_TRUE(injector.OnSite(FaultSite::kReplFlushSend, "primary0", "backup0").IsUnavailable());
  EXPECT_TRUE(injector.crash_fired());
  EXPECT_TRUE(injector.IsHalted("primary0"));
  // Data-plane writes from the dead node are dropped too.
  EXPECT_TRUE(injector.OnFabricWrite("primary0", "backup0").IsUnavailable());
}

// --- block-device hooks ------------------------------------------------------

TEST(DeviceFaultTest, FailNthDeviceWriteReturnsIoError) {
  auto dev = MakeDevice("dev0");
  FaultInjector injector;
  dev->set_fault_hook(&injector);
  injector.FailNthDeviceWrite("dev0", 1);
  auto seg = dev->AllocateSegment();
  ASSERT_TRUE(seg.ok());
  std::string data(512, 'a');
  EXPECT_TRUE(dev->Write(dev->geometry().BaseOffset(*seg), Slice(data), IoClass::kOther).ok());
  Status failed = dev->Write(dev->geometry().BaseOffset(*seg), Slice(data), IoClass::kOther);
  EXPECT_EQ(failed.code(), StatusCode::kIoError) << failed.ToString();
  // The failed write left the segment untouched and later writes succeed.
  EXPECT_TRUE(dev->Write(dev->geometry().BaseOffset(*seg), Slice(data), IoClass::kOther).ok());
  EXPECT_EQ(injector.stats().injected[static_cast<int>(FaultSite::kDeviceWrite)], 1u);
}

TEST(DeviceFaultTest, TornWriteAppliesPrefixThenFails) {
  auto dev = MakeDevice("dev0");
  FaultInjector injector;
  dev->set_fault_hook(&injector);
  auto seg = dev->AllocateSegment();
  ASSERT_TRUE(seg.ok());
  const uint64_t base = dev->geometry().BaseOffset(*seg);
  std::string first(1024, 'a');
  ASSERT_TRUE(dev->Write(base, Slice(first), IoClass::kOther).ok());
  injector.TearNthDeviceWrite("dev0", 1, /*keep_bytes=*/100);
  std::string second(1024, 'b');
  Status torn = dev->Write(base, Slice(second), IoClass::kOther);
  EXPECT_EQ(torn.code(), StatusCode::kIoError) << torn.ToString();
  std::string readback(1024, 0);
  ASSERT_TRUE(dev->Read(base, readback.size(), readback.data(), IoClass::kOther).ok());
  EXPECT_EQ(readback.substr(0, 100), std::string(100, 'b'));
  EXPECT_EQ(readback.substr(100), std::string(924, 'a'));
  EXPECT_EQ(injector.stats().torn_writes, 1u);
}

TEST(DeviceFaultTest, FailNthDeviceReadReturnsIoError) {
  auto dev = MakeDevice("dev0");
  FaultInjector injector;
  dev->set_fault_hook(&injector);
  auto seg = dev->AllocateSegment();
  ASSERT_TRUE(seg.ok());
  std::string data(64, 'r');
  ASSERT_TRUE(dev->Write(dev->geometry().BaseOffset(*seg), Slice(data), IoClass::kOther).ok());
  injector.FailNthDeviceRead("dev0", 0);
  std::string out(64, 0);
  EXPECT_EQ(dev->Read(dev->geometry().BaseOffset(*seg), 64, out.data(), IoClass::kOther).code(),
            StatusCode::kIoError);
  EXPECT_TRUE(dev->Read(dev->geometry().BaseOffset(*seg), 64, out.data(), IoClass::kOther).ok());
  EXPECT_EQ(out, data);
}

TEST(DeviceFaultTest, CrashSnapshotCapturesPreWriteImage) {
  auto dev = MakeDevice("dev0");
  FaultInjector injector;
  dev->set_fault_hook(&injector);
  auto seg = dev->AllocateSegment();
  ASSERT_TRUE(seg.ok());
  const uint64_t base = dev->geometry().BaseOffset(*seg);
  std::string before(256, 'x');
  ASSERT_TRUE(dev->Write(base, Slice(before), IoClass::kOther).ok());
  injector.ArmCrashSnapshot("dev0", 1);
  std::string after(256, 'y');
  ASSERT_TRUE(dev->Write(base, Slice(after), IoClass::kOther).ok());  // snapshot, then applies
  std::unique_ptr<BlockDevice> snapshot = dev->TakeCrashSnapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(injector.stats().crash_snapshots, 1u);
  // The live device has the post-crash write; the snapshot has the pre-crash
  // image (clean allocation state: adopt before reading, like recovery does).
  std::string live(256, 0);
  ASSERT_TRUE(dev->Read(base, live.size(), live.data(), IoClass::kOther).ok());
  EXPECT_EQ(live, after);
  ASSERT_TRUE(snapshot->AdoptAllocated({*seg}).ok());
  std::string snap(256, 0);
  ASSERT_TRUE(snapshot->Read(base, snap.size(), snap.data(), IoClass::kOther).ok());
  EXPECT_EQ(snap, before);
}

TEST(DeviceFaultTest, KvStoreRecoversFromCrashPointSnapshot) {
  // A store checkpoints, keeps writing, and "the machine dies" at the next
  // device write: recovery from the crash-point snapshot sees exactly the
  // checkpointed state.
  auto dev = MakeDevice("dev0");
  FaultInjector injector;
  dev->set_fault_hook(&injector);
  auto store = KvStore::Create(dev.get(), SmallOptions());
  ASSERT_TRUE(store.ok());
  std::map<std::string, std::string> durable;
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE((*store)->Put(Key(i), ValueFor(i)).ok());
    durable[Key(i)] = ValueFor(i);
  }
  ASSERT_TRUE((*store)->value_log()->FlushTail().ok());
  auto checkpoint = (*store)->Checkpoint();
  ASSERT_TRUE(checkpoint.ok());
  // Arm: the very next device write crashes the machine (snapshot = on-flash
  // state at that instant).
  const uint64_t next_write = injector.stats().seen[static_cast<int>(FaultSite::kDeviceWrite)];
  injector.ArmCrashSnapshot("dev0", next_write);
  for (int i = 600; i < 1200; ++i) {
    ASSERT_TRUE((*store)->Put(Key(i), ValueFor(i)).ok());
  }
  ASSERT_TRUE((*store)->value_log()->FlushTail().ok());
  std::unique_ptr<BlockDevice> snapshot = dev->TakeCrashSnapshot();
  ASSERT_NE(snapshot, nullptr);
  auto recovered = KvStore::Recover(snapshot.get(), SmallOptions(), *checkpoint);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  for (const auto& [key, value] : durable) {
    auto got = (*recovered)->Get(key);
    ASSERT_TRUE(got.ok()) << key << " " << got.status().ToString();
    EXPECT_EQ(*got, value);
  }
  // Nothing past the crash point leaked into the snapshot.
  EXPECT_TRUE((*recovered)->Get(Key(1199)).status().IsNotFound());
}

// --- RPC retry/backoff -------------------------------------------------------

class RpcFaultTest : public testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<ServerEndpoint>(&fabric_, "server0", /*spinners=*/1,
                                               /*workers=*/1);
    server_->set_handler([](const MessageHeader& header, std::string payload, ReplyContext ctx) {
      const auto reply_type = static_cast<MessageType>(header.type + 1);
      ASSERT_TRUE(ctx.SendReply(reply_type, 0, payload).ok());
    });
    server_->Start();
    fabric_.set_fault_injector(&injector_);
  }

  void TearDown() override {
    fabric_.set_fault_injector(nullptr);
    server_->Stop();
  }

  Fabric fabric_;
  FaultInjector injector_;
  std::unique_ptr<ServerEndpoint> server_;
};

TEST_F(RpcFaultTest, RetryRecoversFromInjectedSendFault) {
  RpcClient client(&fabric_, "client0", server_.get());
  RpcRetryPolicy policy;
  policy.max_attempts = 3;
  client.set_retry_policy(policy);
  injector_.FailNth(FaultSite::kRpcSend, 0);
  auto reply = client.Call(MessageType::kPut, 0, "ping", 64);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->payload, "ping");
  EXPECT_EQ(client.stats().send_failures, 1u);
  EXPECT_EQ(client.stats().attempts, 2u);
  EXPECT_EQ(client.stats().exhausted, 0u);
}

TEST_F(RpcFaultTest, FailFastWithoutRetryPolicy) {
  RpcClient client(&fabric_, "client0", server_.get());
  injector_.FailNth(FaultSite::kRpcSend, 0);
  auto reply = client.Call(MessageType::kPut, 0, "ping", 64);
  EXPECT_TRUE(reply.status().IsUnavailable());
  EXPECT_EQ(client.stats().exhausted, 1u);
}

TEST_F(RpcFaultTest, PartitionExhaustsRetriesThenHealRestores) {
  RpcClient client(&fabric_, "client0", server_.get());
  RpcRetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ns = 1000;  // keep the test fast
  client.set_retry_policy(policy);
  injector_.Partition("client0", "server0");
  auto reply = client.Call(MessageType::kPut, 0, "lost", 64);
  EXPECT_TRUE(reply.status().IsUnavailable());
  EXPECT_EQ(client.stats().exhausted, 1u);
  EXPECT_EQ(client.stats().attempts, 3u);
  injector_.Heal("client0", "server0");
  auto healed = client.Call(MessageType::kPut, 0, "back", 64);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ(healed->payload, "back");
}

TEST_F(RpcFaultTest, FailedSendsDoNotLeakRingSlots) {
  // Every failed send must free its request+reply slots, or the rings fill.
  // A failed QP drops the write *after* slot allocation, unlike a partition.
  RpcClient client(&fabric_, "client0", server_.get(), /*buffer_size=*/4096);
  injector_.FailQueuePair(/*owner=*/"server0", /*writer=*/"client0");
  for (int i = 0; i < 200; ++i) {
    auto id = client.SendRequest(MessageType::kPut, 0, "xxxx", 64);
    EXPECT_TRUE(id.status().IsUnavailable()) << "iteration " << i << ": "
                                             << id.status().ToString();
  }
  injector_.RestoreQueuePair("server0", "client0");
  auto reply = client.Call(MessageType::kPut, 0, "after-storm", 64);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
}

// --- replication channel retries --------------------------------------------

struct SendIndexCluster {
  std::unique_ptr<Fabric> fabric = std::make_unique<Fabric>();
  std::unique_ptr<BlockDevice> primary_device;
  std::vector<std::unique_ptr<BlockDevice>> backup_devices;
  std::unique_ptr<PrimaryRegion> primary;
  std::vector<std::unique_ptr<SendIndexBackupRegion>> backups;
};

SendIndexCluster MakeSendIndexCluster(int num_backups, const KvStoreOptions& opts,
                                      int max_attempts = 1) {
  SendIndexCluster c;
  c.primary_device = MakeDevice("primary0-dev");
  auto primary = PrimaryRegion::Create(c.primary_device.get(), opts, ReplicationMode::kSendIndex);
  EXPECT_TRUE(primary.ok());
  c.primary = std::move(*primary);
  for (int i = 0; i < num_backups; ++i) {
    c.backup_devices.push_back(MakeDevice("backup" + std::to_string(i) + "-dev"));
    auto buffer =
        c.fabric->RegisterBuffer("backup" + std::to_string(i), "primary0", kSegmentSize);
    auto backup = SendIndexBackupRegion::Create(c.backup_devices.back().get(), opts, buffer);
    EXPECT_TRUE(backup.ok());
    c.backups.push_back(std::move(*backup));
    c.primary->AddBackup(std::make_unique<LocalBackupChannel>(
        c.fabric.get(), "primary0", buffer, c.backups.back().get(), nullptr, max_attempts));
  }
  return c;
}

struct BuildIndexCluster {
  std::unique_ptr<Fabric> fabric = std::make_unique<Fabric>();
  std::unique_ptr<BlockDevice> primary_device;
  std::vector<std::unique_ptr<BlockDevice>> backup_devices;
  std::unique_ptr<PrimaryRegion> primary;
  std::vector<std::unique_ptr<BuildIndexBackupRegion>> backups;
};

BuildIndexCluster MakeBuildIndexCluster(int num_backups, const KvStoreOptions& opts,
                                        int max_attempts = 1) {
  BuildIndexCluster c;
  c.primary_device = MakeDevice("primary0-dev");
  auto primary = PrimaryRegion::Create(c.primary_device.get(), opts, ReplicationMode::kBuildIndex);
  EXPECT_TRUE(primary.ok());
  c.primary = std::move(*primary);
  for (int i = 0; i < num_backups; ++i) {
    c.backup_devices.push_back(MakeDevice("backup" + std::to_string(i) + "-dev"));
    auto buffer =
        c.fabric->RegisterBuffer("backup" + std::to_string(i), "primary0", kSegmentSize);
    auto backup = BuildIndexBackupRegion::Create(c.backup_devices.back().get(), opts, buffer);
    EXPECT_TRUE(backup.ok());
    c.backups.push_back(std::move(*backup));
    c.primary->AddBackup(std::make_unique<LocalBackupChannel>(
        c.fabric.get(), "primary0", buffer, nullptr, c.backups.back().get(), max_attempts));
  }
  return c;
}

TEST(ChannelRetryTest, LostFlushAckIsRetriedAndDeduplicated) {
  auto cluster = MakeSendIndexCluster(1, SmallOptions(), /*max_attempts=*/3);
  FaultInjector injector;
  cluster.fabric->set_fault_injector(&injector);
  // Lose the first two flush acks: the channel re-sends, the backup detects
  // the duplicate deliveries, and nothing is applied twice.
  injector.FailNth(FaultSite::kReplFlushAck, 0);
  injector.FailNth(FaultSite::kReplFlushAck, 1);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 3000; ++i) {
    std::string key = Key(i % 800);
    std::string value = ValueFor(i);
    ASSERT_TRUE(cluster.primary->Put(key, value).ok()) << i;
    model[key] = value;
  }
  ASSERT_TRUE(cluster.primary->FlushL0().ok());
  EXPECT_EQ(injector.stats().injected[static_cast<int>(FaultSite::kReplFlushAck)], 2u);
  // Exactly one local segment per primary flush despite the re-deliveries.
  EXPECT_EQ(cluster.backups[0]->log_map().size(),
            cluster.primary->store()->value_log()->flushed_segments().size());
  for (const auto& [key, value] : model) {
    auto got = cluster.backups[0]->DebugGet(key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    EXPECT_EQ(*got, value);
  }
}

TEST(ChannelRetryTest, TransientFabricFaultsSurvivedByAppendRetry) {
  auto cluster = MakeSendIndexCluster(1, SmallOptions(), /*max_attempts=*/4);
  FaultInjector injector(/*seed=*/99);
  cluster.fabric->set_fault_injector(&injector);
  injector.FailWithProbability(FaultSite::kFabricWrite, 0.05);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(cluster.primary->Put(Key(i), ValueFor(i)).ok()) << i;
  }
  ASSERT_TRUE(cluster.primary->FlushL0().ok());
  EXPECT_GT(cluster.primary->replication_stats().append_retries, 0u);
  cluster.fabric->set_fault_injector(nullptr);
  for (int i = 0; i < 2000; i += 111) {
    auto got = cluster.backups[0]->DebugGet(Key(i));
    ASSERT_TRUE(got.ok()) << Key(i);
    EXPECT_EQ(*got, ValueFor(i));
  }
}

// --- crash-point matrix (§3.5) ----------------------------------------------
//
// Kill the primary at a given protocol step, promote the backup, and compare
// the promoted store's full contents against a non-faulty reference store
// holding exactly the acknowledged operations. Keys are unique per op, so the
// only permitted difference is the single operation in flight at the crash
// (it may or may not have reached the replica's RDMA buffer — §3.2 says an
// un-acked op makes no promise either way).

constexpr size_t kMatrixOps = 4000;

void VerifyPromotedAgainstReference(KvStore* promoted,
                                    const std::map<std::string, std::string>& acked,
                                    size_t crashed_op) {
  auto ref_device = MakeDevice();
  auto reference = KvStore::Create(ref_device.get(), SmallOptions());
  ASSERT_TRUE(reference.ok());
  for (const auto& [key, value] : acked) {
    ASSERT_TRUE((*reference)->Put(key, value).ok());
  }
  auto ref_scan = (*reference)->Scan(Slice(), kMatrixOps + 16);
  auto prom_scan = promoted->Scan(Slice(), kMatrixOps + 16);
  ASSERT_TRUE(ref_scan.ok()) << ref_scan.status().ToString();
  ASSERT_TRUE(prom_scan.ok()) << prom_scan.status().ToString();
  std::map<std::string, std::string> ref_map, prom_map;
  for (const auto& kv : *ref_scan) ref_map[kv.key] = kv.value;
  for (const auto& kv : *prom_scan) prom_map[kv.key] = kv.value;
  // Discount the ambiguous in-flight op if it survived into the replica.
  const std::string inflight = Key(crashed_op);
  auto it = prom_map.find(inflight);
  if (it != prom_map.end() && acked.count(inflight) == 0) {
    EXPECT_EQ(it->second, ValueFor(crashed_op)) << "in-flight op has wrong value";
    prom_map.erase(it);
  }
  EXPECT_EQ(prom_map.size(), ref_map.size());
  EXPECT_TRUE(prom_map == ref_map) << "promoted store diverges from reference";
}

// Drives puts until the crash surfaces; returns the acked model + crash op.
template <typename Cluster>
void DriveUntilCrash(Cluster* cluster, FaultInjector* injector,
                     std::map<std::string, std::string>* acked, size_t* crashed_op) {
  *crashed_op = kMatrixOps;
  for (size_t i = 0; i < kMatrixOps; ++i) {
    Status s = cluster->primary->Put(Key(i), ValueFor(i));
    if (!s.ok()) {
      EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
      *crashed_op = i;
      break;
    }
    (*acked)[Key(i)] = ValueFor(i);
  }
  ASSERT_TRUE(injector->crash_fired()) << "crash rule never fired within " << kMatrixOps
                                       << " ops";
  ASSERT_LT(*crashed_op, kMatrixOps) << "crash fired but no operation failed";
}

void RunSendIndexCrashCase(FaultSite site, uint64_t n, bool halt_after) {
  SCOPED_TRACE(std::string("site=") + FaultSiteName(site) + " n=" + std::to_string(n) +
               (halt_after ? " halt-after" : " crash-at"));
  auto cluster = MakeSendIndexCluster(1, SmallOptions());
  FaultInjector injector(/*seed=*/7);
  cluster.fabric->set_fault_injector(&injector);
  if (halt_after) {
    injector.HaltAfterNth(site, n, "primary0");
  } else {
    injector.CrashAtNth(site, n, "primary0");
  }
  std::map<std::string, std::string> acked;
  size_t crashed_op = 0;
  DriveUntilCrash(&cluster, &injector, &acked, &crashed_op);
  if (testing::Test::HasFatalFailure()) return;

  // The primary is dead; the backup takes over (§3.5).
  cluster.fabric->set_fault_injector(nullptr);
  auto promoted = cluster.backups[0]->Promote();
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  VerifyPromotedAgainstReference(promoted->get(), acked, crashed_op);
}

void RunBuildIndexCrashCase(FaultSite site, uint64_t n, bool halt_after) {
  SCOPED_TRACE(std::string("site=") + FaultSiteName(site) + " n=" + std::to_string(n) +
               (halt_after ? " halt-after" : " crash-at"));
  auto cluster = MakeBuildIndexCluster(1, SmallOptions());
  FaultInjector injector(/*seed=*/7);
  cluster.fabric->set_fault_injector(&injector);
  if (halt_after) {
    injector.HaltAfterNth(site, n, "primary0");
  } else {
    injector.CrashAtNth(site, n, "primary0");
  }
  std::map<std::string, std::string> acked;
  size_t crashed_op = 0;
  DriveUntilCrash(&cluster, &injector, &acked, &crashed_op);
  if (testing::Test::HasFatalFailure()) return;

  cluster.fabric->set_fault_injector(nullptr);
  auto promoted = cluster.backups[0]->Promote();
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  VerifyPromotedAgainstReference(promoted->get(), acked, crashed_op);
}

// Step 1: the log segment was written and sealed locally, but the flush
// message died with the primary — the backup recovers those records from its
// RDMA buffer image.
TEST(CrashMatrixTest, SendIndex_FlushMessageLost) {
  RunSendIndexCrashCase(FaultSite::kReplFlushSend, 2, /*halt_after=*/false);
}

// Step 2: the backup processed the flush but the ack died with the primary.
TEST(CrashMatrixTest, SendIndex_FlushAckLost) {
  RunSendIndexCrashCase(FaultSite::kReplFlushAck, 2, /*halt_after=*/false);
}

// Step 3: the ack was received, then the primary died.
TEST(CrashMatrixTest, SendIndex_DeathAfterAckReceived) {
  RunSendIndexCrashCase(FaultSite::kReplFlushAck, 2, /*halt_after=*/true);
}

// Step 4: mid-compaction death while shipping an index segment — the backup
// aborts the half-shipped compaction and serves from its previous levels.
TEST(CrashMatrixTest, SendIndex_DeathWhileShippingIndexSegment) {
  RunSendIndexCrashCase(FaultSite::kReplIndexSegmentSend, 3, /*halt_after=*/false);
}

// Step 5: every segment rewritten, but the compaction-end (root install) was
// lost with the primary.
TEST(CrashMatrixTest, SendIndex_RewriteDoneCompactionEndLost) {
  RunSendIndexCrashCase(FaultSite::kReplCompactionEndSend, 1, /*halt_after=*/false);
}

// Step 6: the full shipment completed (end acked), then the primary died.
TEST(CrashMatrixTest, SendIndex_DeathAfterCompactionInstalled) {
  RunSendIndexCrashCase(FaultSite::kReplCompactionEndAck, 1, /*halt_after=*/true);
}

TEST(CrashMatrixTest, BuildIndex_FlushMessageLost) {
  RunBuildIndexCrashCase(FaultSite::kReplFlushSend, 2, /*halt_after=*/false);
}

TEST(CrashMatrixTest, BuildIndex_FlushAckLost) {
  RunBuildIndexCrashCase(FaultSite::kReplFlushAck, 2, /*halt_after=*/false);
}

TEST(CrashMatrixTest, BuildIndex_DeathAfterAckReceived) {
  RunBuildIndexCrashCase(FaultSite::kReplFlushAck, 2, /*halt_after=*/true);
}

}  // namespace
}  // namespace tebis
