// YCSB workloads driven through the *full* network path: TebisClient ->
// RDMA-write message protocol -> region servers -> replication. This is what
// the benchmark harness intentionally skips (single-core scheduling noise);
// here we only verify correctness, counters, and failover under a real
// workload mix.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "src/cluster/client.h"
#include "src/cluster/coordinator.h"
#include "src/cluster/master.h"
#include "src/cluster/region_server.h"
#include "src/ycsb/workload.h"

namespace tebis {
namespace {

struct NetCluster {
  explicit NetCluster(uint64_t key_space = 3000) {
    RegionServerOptions options;
    options.device_options.segment_size = 1 << 16;
    options.device_options.max_segments = 1 << 16;
    options.kv_options.l0_max_entries = 256;
    options.replication_mode = ReplicationMode::kSendIndex;
    std::vector<std::string> names;
    for (int i = 0; i < 3; ++i) {
      names.push_back("server" + std::to_string(i));
      servers.push_back(std::make_unique<RegionServer>(&fabric, &zk, names.back(), options));
      EXPECT_TRUE(servers.back()->Start().ok());
      directory[names.back()] = servers.back().get();
    }
    master = std::make_unique<Master>(&zk, "m0", directory);
    EXPECT_TRUE(master->Campaign().ok());
    auto map = RegionMap::CreateUniform(4, "user", 10, key_space, names, 2);
    EXPECT_TRUE(map.ok());
    EXPECT_TRUE(master->Bootstrap(*map).ok());
    client = std::make_unique<TebisClient>(
        &fabric, "ycsb-client",
        [this](const std::string& name) -> ServerEndpoint* {
          auto it = directory.find(name);
          return (it == directory.end() || it->second->crashed())
                     ? nullptr
                     : it->second->client_endpoint();
        },
        names);
    client->set_rpc_timeout_ns(1'000'000'000ull);
    EXPECT_TRUE(client->Connect().ok());
  }

  ~NetCluster() {
    for (auto& server : servers) {
      server->Stop();
    }
  }

  KvHooks Hooks() {
    KvHooks hooks;
    hooks.put = [this](Slice key, Slice value) { return client->Put(key, value); };
    hooks.read = [this](Slice key) {
      auto v = client->Get(key);
      return v.ok() ? Status::Ok() : v.status();
    };
    return hooks;
  }

  Fabric fabric;
  Coordinator zk;
  std::vector<std::unique_ptr<RegionServer>> servers;
  std::map<std::string, RegionServer*> directory;
  std::unique_ptr<Master> master;
  std::unique_ptr<TebisClient> client;
};

TEST(ClusterYcsbTest, LoadAndRunAOverTheWire) {
  NetCluster cluster;
  YcsbOptions options;
  options.record_count = 3000;
  options.op_count = 2000;
  options.size_mix = kMixSD;
  YcsbWorkload workload(options);
  auto load = workload.RunLoad(cluster.Hooks());
  ASSERT_TRUE(load.ok()) << load.status().ToString();
  EXPECT_EQ(load->ops, 3000u);
  auto run = workload.RunPhase(kRunA, cluster.Hooks());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // Work actually crossed the wire and reached every server.
  uint64_t total_puts = 0;
  uint64_t total_compactions = 0;
  for (auto& server : cluster.servers) {
    RegionServerStats stats = server->Aggregate();
    total_puts += stats.puts;
    total_compactions += stats.compactions;
    EXPECT_GT(server->client_endpoint()->messages_received(), 0u) << server->name();
  }
  EXPECT_GE(total_puts, 3000u);
  EXPECT_GT(total_compactions, 0u);
  EXPECT_GT(cluster.fabric.TotalBytes(), 0u);
}

TEST(ClusterYcsbTest, RunDLatestDistributionOverTheWire) {
  NetCluster cluster(1500);
  YcsbOptions options;
  options.record_count = 1500;
  options.op_count = 1500;
  YcsbWorkload workload(options);
  ASSERT_TRUE(workload.RunLoad(cluster.Hooks()).ok());
  auto run = workload.RunPhase(kRunD, cluster.Hooks());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(workload.inserted(), 1500u);  // D inserted new keys
}

// YCSB B/C/D with reads fanned out across replicas (PR 6). The per-replica
// read counters live on the backup engines — a server that merely proxied a
// replica read to its primary would answer kFlagWrongRegion instead — so
// their scrape-visible sum equaling the client's replica-read count proves
// the replicas actually served.
TEST(ClusterYcsbTest, ReadFanOutAcrossReplicasBCD) {
  // 6000 records over 4 regions pushes every region past its L1 capacity
  // (256 * 4), so the backups hold two shipped levels — which is what makes
  // the filter-negative assertion below meaningful: a replica get for an
  // L2-resident key is screened out of L1 by the shipped filter.
  NetCluster cluster(6000);
  cluster.client->set_read_mode(ReadMode::kBoundedStaleness, /*staleness_bound=*/0);
  YcsbOptions options;
  options.record_count = 6000;
  options.op_count = 1200;
  YcsbWorkload workload(options);
  ASSERT_TRUE(workload.RunLoad(cluster.Hooks()).ok());
  for (const WorkloadSpec& spec : {kRunB, kRunC, kRunD}) {
    auto run = workload.RunPhase(spec, cluster.Hooks());
    ASSERT_TRUE(run.ok()) << spec.name << ": " << run.status().ToString();
  }
  const ClientStats& stats = cluster.client->stats();
  EXPECT_GT(stats.replica_reads, 0u);
  // Every replica attempt (including fence rejects, which also increment the
  // backup counters before rejecting) is visible in the servers' stats
  // scrapes, and their sum matches the client's count exactly.
  uint64_t replica_gets = 0;
  uint64_t backup_filter_negatives = 0;
  int serving_backups = 0;
  for (auto& server : cluster.servers) {
    const MetricsSnapshot snapshot = server->telemetry()->Snapshot();
    const uint64_t served = snapshot.Sum("backup.replica_gets");
    replica_gets += served;
    serving_backups += served > 0 ? 1 : 0;
    backup_filter_negatives += snapshot.Sum("backup.filter_negatives");
    auto scrape = cluster.client->ScrapeStats(server->name());
    ASSERT_TRUE(scrape.ok()) << scrape.status().ToString();
    EXPECT_NE(scrape->find("backup.replica_gets"), std::string::npos) << server->name();
  }
  EXPECT_EQ(replica_gets, stats.replica_reads);
  // Shipped filters worked on the replica read path (PR 7): gets for keys
  // resident in deeper shipped levels are screened out of the shallower
  // levels by the primary-built filters.
  EXPECT_GT(backup_filter_negatives, 0u);
  // The fan-out spread over more than one backup (every server hosts backup
  // regions under the uniform map, so all of them should have served).
  EXPECT_GE(serving_backups, 2);
}

// Read-your-writes mode over the wire: the run-D insert stream immediately
// re-reads its own inserts through replicas; the commit-token fence makes
// that safe, falling back to the primary when a replica is behind.
TEST(ClusterYcsbTest, ReadYourWritesSurvivesRunD) {
  NetCluster cluster(1500);
  cluster.client->set_read_mode(ReadMode::kReadYourWrites);
  YcsbOptions options;
  options.record_count = 1500;
  options.op_count = 1500;
  YcsbWorkload workload(options);
  ASSERT_TRUE(workload.RunLoad(cluster.Hooks()).ok());
  auto run = workload.RunPhase(kRunD, cluster.Hooks());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(workload.inserted(), 1500u);
  const ClientStats& stats = cluster.client->stats();
  EXPECT_GT(stats.replica_reads, 0u);
  // Fallbacks are bounded by replica attempts; each one still completed.
  EXPECT_LE(stats.replica_fallbacks, stats.replica_reads);
}

TEST(ClusterYcsbTest, WorkloadSurvivesMidRunCrash) {
  NetCluster cluster(2000);
  YcsbOptions options;
  options.record_count = 2000;
  YcsbWorkload workload(options);
  ASSERT_TRUE(workload.RunLoad(cluster.Hooks()).ok());
  // Crash one server, then run an update-heavy phase; the client must retry
  // through the new map without surfacing errors.
  cluster.servers[0]->Crash();
  options.op_count = 1000;
  auto run = workload.RunPhase(kRunA, cluster.Hooks());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(cluster.client->stats().map_refreshes, 0u);
}

}  // namespace
}  // namespace tebis
