// Randomized adversarial tests: malformed wire input must fail cleanly,
// allocators must match reference models, and merge/iteration invariants must
// hold under arbitrary interleavings.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/cluster/kv_wire.h"
#include "src/cluster/region_map.h"
#include "src/common/crc32.h"
#include "src/common/random.h"
#include "src/lsm/bloom_filter.h"
#include "src/lsm/btree_builder.h"
#include "src/lsm/btree_reader.h"
#include "src/lsm/compaction.h"
#include "src/lsm/manifest.h"
#include "src/lsm/value_log.h"
#include "src/net/message.h"
#include "src/net/ring_allocator.h"
#include "src/replication/replication_wire.h"
#include "src/storage/block_device.h"

namespace tebis {
namespace {

std::unique_ptr<BlockDevice> MakeDevice() {
  BlockDeviceOptions opts;
  opts.segment_size = 1 << 16;
  opts.max_segments = 1 << 16;
  auto dev = BlockDevice::Create(opts);
  EXPECT_TRUE(dev.ok());
  return std::move(*dev);
}

// --- wire decoders never crash or over-read on garbage -------------------------

class WireFuzzTest : public testing::TestWithParam<uint64_t> {};

TEST_P(WireFuzzTest, RandomBytesFailCleanly) {
  Random rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    std::string junk = rng.Bytes(rng.Uniform(200));
    // Each decoder either succeeds (fine — random bytes can be valid) or
    // returns an error. Either way: no crash, no UB.
    Slice key, value, start;
    uint32_t limit;
    (void)DecodePutRequest(junk, &key, &value);
    (void)DecodeKeyRequest(junk, &key);
    (void)DecodeScanRequest(junk, &start, &limit);
    std::vector<KvPair> pairs;
    (void)DecodeScanReply(junk, &pairs);
    FlushLogMsg flush;
    (void)DecodeFlushLog(junk, &flush);
    IndexSegmentMsg seg;
    (void)DecodeIndexSegment(junk, &seg);
    CompactionEndMsg end;
    (void)DecodeCompactionEnd(junk, &end);
    FilterBlockMsg filter;
    (void)DecodeFilterBlock(junk, &filter);
    RepairFetchMsg fetch;
    (void)DecodeRepairFetch(junk, &fetch);
    RepairSegmentMsg repair;
    (void)DecodeRepairSegment(junk, &repair);
    BloomFilterView view;
    (void)BloomFilterView::Parse(junk, &view);
    (void)RegionMap::Deserialize(junk);
    std::vector<KvBatchOp> batch_ops;
    (void)DecodeKvBatchRequest(junk, &batch_ops);
    std::vector<KvBatchOpStatus> batch_statuses;
    uint64_t epoch, seq;
    (void)DecodeKvBatchReply(junk, &batch_statuses, &epoch, &seq);
  }
}

// --- trailing trace-id wire field (PR 10) --------------------------------------

// The optional [tag][u64] suffix must never turn damage into a crash or a
// misparse: truncating or corrupting it degrades the frame to "unsampled"
// (trace == kNoTrace) with every payload field before it intact, and frames
// encoded without a trace are byte-identical to the pre-tracing format.
TEST_P(WireFuzzTest, TraceFieldDamageDegradesToUnsampled) {
  Random rng(GetParam() + 900);
  for (int i = 0; i < 500; ++i) {
    const std::string key_bytes = rng.Bytes(1 + rng.Uniform(40));
    const std::string value_bytes = rng.Bytes(rng.Uniform(200));
    const TraceId trace = MakeRequestTraceId(rng.Uniform(1 << 15), rng.Uniform(1 << 20));

    // Unsampled frames carry no suffix at all.
    const std::string bare = EncodePutRequest(key_bytes, value_bytes);
    ASSERT_EQ(bare, EncodePutRequest(key_bytes, value_bytes, kNoTrace));
    const std::string tagged = EncodePutRequest(key_bytes, value_bytes, trace);
    ASSERT_EQ(tagged.size(), bare.size() + 9);

    // Intact frame round-trips the id.
    Slice key, value;
    TraceId decoded = kNoTrace;
    ASSERT_TRUE(DecodePutRequest(tagged, &key, &value, &decoded).ok());
    ASSERT_EQ(decoded, trace);

    // Truncate anywhere inside the suffix: decode still succeeds, reads as
    // unsampled, and the payload fields are untouched.
    const size_t cut = 1 + rng.Uniform(9);
    decoded = trace;
    ASSERT_TRUE(DecodePutRequest(Slice(tagged.data(), tagged.size() - cut), &key, &value,
                                 &decoded)
                    .ok());
    EXPECT_EQ(decoded, kNoTrace);
    EXPECT_EQ(key.ToString(), key_bytes);
    EXPECT_EQ(value.ToString(), value_bytes);

    // Corrupt one byte of the suffix: a flipped tag reads as unsampled, a
    // flipped id byte reads as a different id — either way decode succeeds
    // and the payload survives.
    std::string corrupt = tagged;
    const size_t victim = bare.size() + rng.Uniform(9);
    corrupt[victim] = static_cast<char>(corrupt[victim] ^ (1 + rng.Uniform(255)));
    ASSERT_TRUE(DecodePutRequest(corrupt, &key, &value, &decoded).ok());
    EXPECT_EQ(key.ToString(), key_bytes);
    if (static_cast<uint8_t>(corrupt[bare.size()]) != kTraceFieldTag) {
      EXPECT_EQ(decoded, kNoTrace);
    }

    // Callers that never ask for the trace still accept tagged frames.
    ASSERT_TRUE(DecodePutRequest(tagged, &key, &value).ok());
    EXPECT_EQ(value.ToString(), value_bytes);
  }
}

TEST_P(WireFuzzTest, TraceFieldRoundTripsOnEveryRequestKind) {
  Random rng(GetParam() + 950);
  for (int i = 0; i < 300; ++i) {
    const TraceId trace = MakeRequestTraceId(rng.Uniform(1 << 15), rng.Uniform(1 << 20));
    const std::string key_bytes = rng.Bytes(1 + rng.Uniform(40));

    Slice key, start;
    uint32_t limit;
    TraceId decoded;

    decoded = kNoTrace;
    const std::string key_frame = EncodeKeyRequest(key_bytes, trace);
    ASSERT_TRUE(DecodeKeyRequest(key_frame, &key, &decoded).ok());
    EXPECT_EQ(decoded, trace);
    EXPECT_EQ(key.ToString(), key_bytes);
    EXPECT_EQ(EncodeKeyRequest(key_bytes), EncodeKeyRequest(key_bytes, kNoTrace));

    decoded = kNoTrace;
    const uint32_t want_limit = 1 + rng.Uniform(100);
    const std::string scan_frame = EncodeScanRequest(key_bytes, want_limit, trace);
    ASSERT_TRUE(DecodeScanRequest(scan_frame, &start, &limit, &decoded).ok());
    EXPECT_EQ(decoded, trace);
    EXPECT_EQ(limit, want_limit);
    EXPECT_EQ(EncodeScanRequest(key_bytes, want_limit),
              EncodeScanRequest(key_bytes, want_limit, kNoTrace));

    std::vector<std::pair<std::string, std::string>> backing;
    const size_t n = 1 + rng.Uniform(8);
    for (size_t k = 0; k < n; ++k) {
      backing.emplace_back(rng.Bytes(1 + rng.Uniform(20)), rng.Bytes(rng.Uniform(60)));
    }
    std::vector<KvBatchOp> ops;
    for (size_t k = 0; k < n; ++k) {
      ops.push_back(
          KvBatchOp{rng.Uniform(4) == 0, Slice(backing[k].first), Slice(backing[k].second)});
    }
    const std::string batch = EncodeKvBatchRequest(ops, trace);
    std::vector<KvBatchOp> out;
    decoded = kNoTrace;
    ASSERT_TRUE(DecodeKvBatchRequest(batch, &out, &decoded).ok());
    EXPECT_EQ(decoded, trace);
    ASSERT_EQ(out.size(), n);
    EXPECT_EQ(EncodeKvBatchRequest(ops), EncodeKvBatchRequest(ops, kNoTrace));

    // A torn batch frame still fails outright even when a trace suffix is
    // present — the suffix never excuses missing ops.
    const size_t cut = 10 + rng.Uniform(batch.size() - 10);
    if (cut < batch.size() - 9) {
      out.clear();
      EXPECT_FALSE(DecodeKvBatchRequest(Slice(batch.data(), cut), &out).ok());
    }
  }
}

// --- batched kv frames (PR 9) round-trip and reject damage ---------------------

TEST_P(WireFuzzTest, KvBatchRequestRoundTrips) {
  Random rng(GetParam() + 600);
  for (int i = 0; i < 300; ++i) {
    // Own the backing bytes for the encode's Slices.
    std::vector<std::pair<std::string, std::string>> backing;
    const size_t n = 1 + rng.Uniform(24);
    for (size_t k = 0; k < n; ++k) {
      backing.emplace_back(rng.Bytes(1 + rng.Uniform(40)), rng.Bytes(rng.Uniform(300)));
    }
    std::vector<KvBatchOp> ops;
    for (size_t k = 0; k < n; ++k) {
      ops.push_back(KvBatchOp{rng.Uniform(4) == 0, Slice(backing[k].first),
                              Slice(backing[k].second)});
    }
    const std::string encoded = EncodeKvBatchRequest(ops);
    std::vector<KvBatchOp> out;
    ASSERT_TRUE(DecodeKvBatchRequest(encoded, &out).ok());
    ASSERT_EQ(out.size(), ops.size());
    for (size_t k = 0; k < n; ++k) {
      EXPECT_EQ(out[k].tombstone, ops[k].tombstone);
      EXPECT_EQ(out[k].key.ToString(), backing[k].first);
      if (!ops[k].tombstone) {
        EXPECT_EQ(out[k].value.ToString(), backing[k].second);
      }
    }
    // Any strict prefix (a torn frame) must fail, never yield a short batch.
    const size_t cut = rng.Uniform(encoded.size());
    out.clear();
    EXPECT_FALSE(DecodeKvBatchRequest(Slice(encoded.data(), cut), &out).ok());
  }
}

TEST_P(WireFuzzTest, KvBatchReplyRoundTripsAndTruncationFails) {
  Random rng(GetParam() + 700);
  for (int i = 0; i < 300; ++i) {
    const size_t n = 1 + rng.Uniform(24);
    std::vector<KvBatchOpStatus> statuses;
    for (size_t k = 0; k < n; ++k) {
      KvBatchOpStatus s;
      if (rng.Uniform(3) == 0) {
        s.code = 1 + rng.Uniform(10);
        s.message = rng.Bytes(rng.Uniform(60));
      }
      statuses.push_back(std::move(s));
    }
    const uint64_t epoch = rng.Next();
    const uint64_t seq = rng.Next();
    const std::string encoded = EncodeKvBatchReply(statuses, epoch, seq);
    std::vector<KvBatchOpStatus> out;
    uint64_t out_epoch = 0, out_seq = 0;
    ASSERT_TRUE(DecodeKvBatchReply(encoded, &out, &out_epoch, &out_seq).ok());
    ASSERT_EQ(out.size(), statuses.size());
    EXPECT_EQ(out_epoch, epoch);
    EXPECT_EQ(out_seq, seq);
    for (size_t k = 0; k < n; ++k) {
      EXPECT_EQ(out[k].code, statuses[k].code);
      EXPECT_EQ(out[k].message, statuses[k].message);
    }
    const size_t cut = rng.Uniform(encoded.size());
    out.clear();
    EXPECT_FALSE(DecodeKvBatchReply(Slice(encoded.data(), cut), &out, &out_epoch, &out_seq).ok());
  }
}

TEST_P(WireFuzzTest, CorruptKvBatchFramesNeverMisparse) {
  // Flipped bytes in a valid batch frame either fail to decode or still
  // decode into a structurally bounded batch (framing lengths keep every
  // slice inside the payload) — never a crash or over-read.
  Random rng(GetParam() + 800);
  std::vector<std::pair<std::string, std::string>> backing;
  for (int k = 0; k < 8; ++k) {
    backing.emplace_back("key" + std::to_string(k), rng.Bytes(64));
  }
  std::vector<KvBatchOp> ops;
  for (auto& [key, value] : backing) {
    ops.push_back(KvBatchOp{false, Slice(key), Slice(value)});
  }
  const std::string encoded = EncodeKvBatchRequest(ops);
  for (int i = 0; i < 500; ++i) {
    std::string corrupt = encoded;
    corrupt[rng.Uniform(corrupt.size())] ^= static_cast<char>(1 + rng.Uniform(255));
    std::vector<KvBatchOp> out;
    if (DecodeKvBatchRequest(corrupt, &out).ok()) {
      for (const KvBatchOp& op : out) {
        // Every decoded slice must lie inside the corrupt buffer.
        EXPECT_GE(op.key.data(), corrupt.data());
        EXPECT_LE(op.key.data() + op.key.size(), corrupt.data() + corrupt.size());
        EXPECT_GE(op.value.data(), corrupt.data());
        EXPECT_LE(op.value.data() + op.value.size(), corrupt.data() + corrupt.size());
      }
    }
  }
}

TEST_P(WireFuzzTest, TruncatedValidMessagesFail) {
  Random rng(GetParam() + 100);
  for (int i = 0; i < 500; ++i) {
    CompactionEndMsg msg{};
    msg.compaction_id = rng.Next();
    msg.tree.root_offset = rng.Next();
    msg.tree.height = 2;
    msg.tree.num_entries = rng.Uniform(1000);
    for (int s = 0; s < 5; ++s) {
      msg.tree.segments.push_back(rng.Next());
      // Half the rounds ship a checksummed tree (PR 8 trailing field) so the
      // prefix invariant covers both encodings.
      if (i % 2 == 0) {
        msg.tree.seg_checksums.push_back(
            {static_cast<uint32_t>(rng.Next()), static_cast<uint32_t>(1 + rng.Uniform(1 << 16))});
      }
    }
    std::string encoded = EncodeCompactionEnd(msg);
    // Any strict prefix must fail to decode.
    const size_t cut = rng.Uniform(encoded.size());
    CompactionEndMsg out{};
    EXPECT_FALSE(DecodeCompactionEnd(Slice(encoded.data(), cut), &out).ok());
  }
}

TEST_P(WireFuzzTest, TruncatedRepairMessagesFail) {
  Random rng(GetParam() + 400);
  for (int i = 0; i < 500; ++i) {
    RepairFetchMsg fetch{};
    fetch.epoch = 1 + rng.Uniform(1u << 20);
    fetch.level = 1 + rng.Uniform(7);
    fetch.seg_index = rng.Uniform(64);
    std::string encoded = EncodeRepairFetch(fetch);
    RepairFetchMsg fetch_out{};
    EXPECT_FALSE(
        DecodeRepairFetch(Slice(encoded.data(), rng.Uniform(encoded.size())), &fetch_out).ok());

    RepairSegmentMsg seg{};
    seg.epoch = fetch.epoch;
    seg.level = fetch.level;
    seg.seg_index = fetch.seg_index;
    std::string payload = rng.Bytes(1 + rng.Uniform(300));
    seg.crc = Crc32c(payload.data(), payload.size());
    seg.data = payload;
    encoded = EncodeRepairSegment(seg);
    RepairSegmentMsg seg_out{};
    EXPECT_FALSE(
        DecodeRepairSegment(Slice(encoded.data(), rng.Uniform(encoded.size())), &seg_out).ok());
  }
}

TEST_P(WireFuzzTest, CorruptedRepairSegmentsFailCrcVerification) {
  // Bit flips anywhere in an encoded RepairSegment either break the framing
  // (decode fails) or surface as a CRC mismatch the requester checks before
  // installing the bytes — corrupt repair data never installs silently.
  Random rng(GetParam() + 500);
  RepairSegmentMsg msg{};
  msg.epoch = 7;
  msg.level = 2;
  msg.seg_index = 3;
  std::string payload = rng.Bytes(4096);
  msg.crc = Crc32c(payload.data(), payload.size());
  msg.data = payload;
  const std::string encoded = EncodeRepairSegment(msg);
  for (int i = 0; i < 300; ++i) {
    std::string corrupt = encoded;
    corrupt[rng.Uniform(corrupt.size())] ^= static_cast<char>(1 << rng.Uniform(8));
    RepairSegmentMsg out{};
    Status s = DecodeRepairSegment(corrupt, &out);
    if (!s.ok()) continue;
    const bool fields_intact = out.epoch == msg.epoch && out.level == msg.level &&
                               out.seg_index == msg.seg_index;
    const uint32_t actual = Crc32c(out.data.data(), out.data.size());
    // The flip landed somewhere: either a header field changed (the repair
    // path cross-checks those against the request) or the data/crc disagree.
    EXPECT_TRUE(!fields_intact || actual != out.crc);
  }
}

TEST_P(WireFuzzTest, TruncatedFilterBlocksFail) {
  Random rng(GetParam() + 200);
  for (int i = 0; i < 500; ++i) {
    FilterBlockMsg msg{};
    msg.epoch = rng.Next();
    msg.compaction_id = rng.Next();
    msg.dst_level = 1 + rng.Uniform(7);
    msg.stream_id = rng.Uniform(8);
    std::string payload = rng.Bytes(1 + rng.Uniform(300));
    msg.data = payload;
    std::string encoded = EncodeFilterBlock(msg);
    const size_t cut = rng.Uniform(encoded.size());
    FilterBlockMsg out{};
    EXPECT_FALSE(DecodeFilterBlock(Slice(encoded.data(), cut), &out).ok());
  }
}

TEST_P(WireFuzzTest, CorruptedFilterBlocksFailCrc) {
  // A valid serialized filter with any single bit flipped must be rejected by
  // the install-time CRC check — shipped filter bytes are trusted afterwards.
  Random rng(GetParam() + 300);
  BloomFilterBuilder builder;
  for (int i = 0; i < 500; ++i) {
    builder.AddKey(rng.Bytes(8 + rng.Uniform(24)));
  }
  const std::string block = builder.Finish();
  BloomFilterView view;
  ASSERT_TRUE(BloomFilterView::Parse(block, &view).ok());
  for (int i = 0; i < 300; ++i) {
    std::string corrupt = block;
    corrupt[rng.Uniform(corrupt.size())] ^= static_cast<char>(1 << rng.Uniform(8));
    EXPECT_FALSE(BloomFilterView::Parse(corrupt, &view).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzTest, testing::Values(1, 2, 3));

// --- checksummed (v4) manifests reject damage, never misparse ------------------

TEST(ManifestFuzzTest, CorruptedV4ManifestsAreRejected) {
  Random rng(77);
  Manifest m;
  m.levels.resize(3);
  m.level_crcs = {0, 0x1234, 0x5678};
  for (uint32_t lvl = 1; lvl < 3; ++lvl) {
    BuiltTree& tree = m.levels[lvl];
    tree.root_offset = rng.Next();
    tree.height = 2;
    tree.num_entries = rng.Uniform(5000);
    for (int s = 0; s < 4; ++s) {
      tree.segments.push_back(rng.Uniform(1 << 12));
      tree.seg_checksums.push_back(
          {static_cast<uint32_t>(rng.Next()), static_cast<uint32_t>(1 + rng.Uniform(1 << 16))});
    }
  }
  m.log_flushed_segments = {9, 10, 11};
  m.l0_replay_from = 1;
  const std::string encoded = m.Encode();

  auto intact = Manifest::Decode(encoded);
  ASSERT_TRUE(intact.ok());
  ASSERT_EQ(intact->levels[1].seg_checksums.size(), 4u);

  // Single-bit damage anywhere must be caught by the manifest CRC.
  for (int i = 0; i < 500; ++i) {
    std::string corrupt = encoded;
    corrupt[rng.Uniform(corrupt.size())] ^= static_cast<char>(1 << rng.Uniform(8));
    EXPECT_FALSE(Manifest::Decode(corrupt).ok());
  }
  // So must any strict prefix (torn checkpoint write).
  for (int i = 0; i < 300; ++i) {
    EXPECT_FALSE(Manifest::Decode(Slice(encoded.data(), rng.Uniform(encoded.size()))).ok());
  }
  // And random garbage never crashes the decoder.
  for (int i = 0; i < 500; ++i) {
    (void)Manifest::Decode(rng.Bytes(rng.Uniform(400)));
  }
}

// --- corrupted log segments are rejected, not misparsed --------------------------

TEST(LogFuzzTest, CorruptedSegmentImagesFailCleanly) {
  auto dev = MakeDevice();
  auto log = ValueLog::Create(dev.get());
  ASSERT_TRUE(log.ok());
  Random rng(7);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE((*log)->Append("key" + std::to_string(i), rng.Bytes(rng.Uniform(100)), false)
                    .ok());
  }
  ASSERT_TRUE((*log)->FlushTail().ok());
  std::string image(1 << 16, 0);
  uint64_t base = dev->geometry().BaseOffset((*log)->flushed_segments()[0]);
  ASSERT_TRUE(dev->Read(base, image.size(), image.data(), IoClass::kOther).ok());

  for (int trial = 0; trial < 300; ++trial) {
    std::string corrupted = image;
    // Flip a handful of random bytes.
    for (int f = 0; f < 3; ++f) {
      corrupted[rng.Uniform(corrupted.size())] ^= static_cast<char>(1 + rng.Uniform(255));
    }
    int records = 0;
    Status s = ValueLog::ForEachRecord(corrupted, base, [&](const LogRecord& rec) {
      records++;
      return Status::Ok();
    });
    // Either the walk stops cleanly at the corruption (error) or the flips
    // hit padding/values whose CRC still covers them... any record that WAS
    // delivered must have had a valid CRC, so we only check no crash and
    // bounded output.
    EXPECT_LE(records, 200);
    (void)s;
  }
}

// --- ring allocator vs reference model -------------------------------------------

TEST(RingFuzzTest, MatchesReferenceModel) {
  // Model: the ring is correct iff (a) all live regions are disjoint,
  // (b) allocations advance strictly sequentially mod capacity, (c) a filler
  // is demanded exactly when the tail gap cannot fit the request.
  constexpr size_t kCapacity = 8192;
  Random rng(13);
  for (int round = 0; round < 20; ++round) {
    RingAllocator ring(kCapacity);
    std::deque<std::pair<size_t, size_t>> live;  // offset, size
    size_t expected_next = 0;
    for (int op = 0; op < 3000; ++op) {
      if (live.size() < 12 && rng.Uniform(3) != 0) {
        const size_t n = 128 * (1 + rng.Uniform(6));
        auto a = ring.Allocate(n);
        if (a.status == RingAllocator::AllocStatus::kNeedWrap) {
          ASSERT_EQ(a.tail_gap, kCapacity - expected_next);
          auto filler = ring.Allocate(a.tail_gap);
          ASSERT_EQ(filler.status, RingAllocator::AllocStatus::kOk);
          ASSERT_EQ(filler.offset, expected_next);
          live.emplace_back(filler.offset, a.tail_gap);
          expected_next = 0;
          a = ring.Allocate(n);
        }
        if (a.status == RingAllocator::AllocStatus::kOk) {
          ASSERT_EQ(a.offset, expected_next) << "allocation must be sequential";
          // Disjointness with every live region.
          for (const auto& [off, size] : live) {
            const bool overlap = a.offset < off + size && off < a.offset + n;
            ASSERT_FALSE(overlap) << "overlap at " << a.offset;
          }
          live.emplace_back(a.offset, n);
          expected_next = (a.offset + n) % kCapacity;
        }
      } else if (!live.empty()) {
        const size_t idx = rng.Uniform(live.size());
        ring.Free(live[idx].first);
        live.erase(live.begin() + static_cast<long>(idx));
      }
    }
  }
}

// --- merge invariants under many random sources ----------------------------------

TEST(MergeFuzzTest, KWayMergeKeepsNewestAndSorts) {
  Random rng(21);
  for (int round = 0; round < 10; ++round) {
    // Build 2-5 memtables, newest first; track the expected winner per key.
    const int num_sources = 2 + static_cast<int>(rng.Uniform(4));
    std::vector<std::unique_ptr<Memtable>> tables;
    std::map<std::string, uint64_t> expected;
    for (int s = 0; s < num_sources; ++s) {
      tables.push_back(std::make_unique<Memtable>());
      for (int i = 0; i < 300; ++i) {
        char key[32];
        snprintf(key, sizeof(key), "k%06llu", (unsigned long long)rng.Uniform(500));
        const uint64_t offset = (static_cast<uint64_t>(s) << 32) | rng.Uniform(1 << 20);
        tables[s]->Put(key, ValueLocation{offset, false});
        // Newest source (lowest index) wins: only record if no newer source
        // already claimed this key.
        ValueLocation probe;
        bool newer_has_it = false;
        for (int t = 0; t < s; ++t) {
          if (tables[t]->Get(key, &probe)) {
            newer_has_it = true;
            break;
          }
        }
        if (!newer_has_it) {
          // The LAST put of this source for this key wins within the source.
          expected[key] = offset;
        }
      }
    }
    auto dev = MakeDevice();
    BTreeBuilder builder(dev.get(), kDefaultNodeSize, IoClass::kCompactionWrite, nullptr);
    std::vector<std::unique_ptr<MemtableMergeSource>> sources;
    std::vector<MergeSource*> raw;
    for (auto& table : tables) {
      sources.push_back(std::make_unique<MemtableMergeSource>(table.get()));
      raw.push_back(sources.back().get());
    }
    auto written = MergeSources(raw, false, &builder);
    ASSERT_TRUE(written.ok());
    EXPECT_EQ(*written, expected.size());
    auto tree = builder.Finish();
    ASSERT_TRUE(tree.ok());
    // Iterate: sorted, and every entry matches the expected winner.
    BTreeReader reader(dev.get(), nullptr, kDefaultNodeSize, *tree, IoClass::kLookup);
    BTreeIterator it(&reader);
    ASSERT_TRUE(it.SeekToFirst().ok());
    auto want = expected.begin();
    while (it.Valid()) {
      ASSERT_NE(want, expected.end());
      EXPECT_EQ(it.entry().log_offset, want->second) << want->first;
      ++want;
      ASSERT_TRUE(it.Next().ok());
    }
    EXPECT_EQ(want, expected.end());
  }
}

// --- message header detection never fires on random garbage ---------------------

TEST(MessageFuzzTest, GarbageRarelyDecodesAndNeverCrashes) {
  Random rng(31);
  std::vector<char> buf(4096);
  int detections = 0;
  for (int i = 0; i < 5000; ++i) {
    for (auto& b : buf) {
      b = static_cast<char>(rng.Next());
    }
    MessageHeader header;
    if (TryDecodeHeader(buf.data(), &header)) {
      detections++;  // needs the exact 32-bit magic: ~1 in 4 billion
      (void)PayloadComplete(buf.data(), header);
    }
  }
  EXPECT_LE(detections, 1);
}

}  // namespace
}  // namespace tebis
