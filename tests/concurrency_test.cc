// Multi-threaded engine tests (PR 2): one writer plus concurrent readers
// while L0 flushes and level cascades run on a background worker pool. These
// are the suites meant to run under TEBIS_SANITIZE=thread (see tools/check.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/lsm/kv_store.h"
#include "src/net/worker_pool.h"
#include "src/storage/block_device.h"
#include "src/ycsb/sim_cluster.h"

namespace tebis {
namespace {

std::unique_ptr<BlockDevice> MakeDevice(uint64_t segment_size = 1 << 16,
                                        uint64_t max_segments = 8192) {
  BlockDeviceOptions opts;
  opts.segment_size = segment_size;
  opts.max_segments = max_segments;
  auto dev = BlockDevice::Create(opts);
  EXPECT_TRUE(dev.ok());
  return std::move(*dev);
}

// Zero-pads numbers so lexicographic order == numeric order.
std::string Key(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key%010llu", static_cast<unsigned long long>(i));
  return buf;
}

std::string Value(uint64_t i) { return "value-" + std::to_string(i); }

TEST(ConcurrencyTest, ReadersSeeEveryAckedKeyDuringBackgroundCompactions) {
  auto dev = MakeDevice();
  WorkerPool pool(2);
  pool.Start();

  KvStoreOptions opts;
  opts.l0_max_entries = 512;
  opts.cache_bytes = 1 << 18;
  opts.compaction_pool = &pool;
  auto store_or = KvStore::Create(dev.get(), opts);
  ASSERT_TRUE(store_or.ok());
  KvStore* store = store_or->get();

  constexpr uint64_t kKeys = 20000;
  // Readers only query keys below the watermark: those puts have returned, so
  // the exact value must be visible no matter which snapshot the reader gets.
  std::atomic<uint64_t> watermark{0};
  std::atomic<bool> failed{false};

  std::thread writer([&] {
    for (uint64_t i = 0; i < kKeys; ++i) {
      Status s = store->Put(Key(i), Value(i));
      if (!s.ok()) {
        failed.store(true);
        return;
      }
      watermark.store(i + 1, std::memory_order_release);
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      uint64_t x = 88172645463325252ull + r;  // xorshift, thread-local stream
      while (watermark.load(std::memory_order_acquire) < kKeys) {
        const uint64_t high = watermark.load(std::memory_order_acquire);
        if (high == 0) {
          std::this_thread::yield();
          continue;
        }
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const uint64_t i = x % high;
        auto got = store->Get(Key(i));
        if (!got.ok() || *got != Value(i)) {
          failed.store(true);
          return;
        }
      }
    });
  }

  writer.join();
  for (auto& t : readers) {
    t.join();
  }
  ASSERT_FALSE(failed.load());
  ASSERT_TRUE(store->WaitForBackgroundWork().ok());

  const KvStoreStats stats = store->stats();
  EXPECT_GT(stats.background_compactions, 0u);
  EXPECT_GT(stats.compactions, 0u);
  // Spot-check after the pipeline drains.
  for (uint64_t i = 0; i < kKeys; i += 997) {
    auto got = store->Get(Key(i));
    ASSERT_TRUE(got.ok()) << Key(i);
    EXPECT_EQ(*got, Value(i));
  }
  store_or->reset();
  pool.Stop();
}

TEST(ConcurrencyTest, ScansSeeCompleteSnapshotsAcrossLevelPublication) {
  auto dev = MakeDevice();
  WorkerPool pool(2);
  pool.Start();

  KvStoreOptions opts;
  opts.l0_max_entries = 256;
  opts.compaction_pool = &pool;
  auto store_or = KvStore::Create(dev.get(), opts);
  ASSERT_TRUE(store_or.ok());
  KvStore* store = store_or->get();

  constexpr uint64_t kKeys = 400;
  constexpr int kRounds = 24;
  // Round 0 installs every key; later rounds overwrite them. Any scan that
  // starts after round 0 must see *exactly* the full key set — a hole or a
  // duplicate means a reader caught the memtable swap or a level swap
  // half-applied.
  for (uint64_t i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(store->Put(Key(i), Value(0)).ok());
  }

  std::atomic<bool> writing{true};
  std::atomic<bool> failed{false};

  std::thread writer([&] {
    for (int round = 1; round < kRounds; ++round) {
      for (uint64_t i = 0; i < kKeys; ++i) {
        if (!store->Put(Key(i), "round-" + std::to_string(round)).ok()) {
          failed.store(true);
          writing.store(false);
          return;
        }
      }
    }
    writing.store(false);
  });

  std::vector<std::thread> scanners;
  for (int r = 0; r < 2; ++r) {
    scanners.emplace_back([&] {
      while (writing.load(std::memory_order_acquire)) {
        auto scan = store->Scan(Key(0), kKeys + 10);
        if (!scan.ok() || scan->size() != kKeys) {
          failed.store(true);
          return;
        }
        for (uint64_t i = 0; i < kKeys; ++i) {
          if ((*scan)[i].key != Key(i)) {
            failed.store(true);
            return;
          }
        }
      }
    });
  }

  writer.join();
  for (auto& t : scanners) {
    t.join();
  }
  EXPECT_FALSE(failed.load());
  ASSERT_TRUE(store->WaitForBackgroundWork().ok());
  store_or->reset();
  pool.Stop();
}

// Observer that throttles index shipping, so the background flush is slower
// than the writer and the backpressure bands engage.
class SlowShippingObserver : public CompactionObserver {
 public:
  void OnIndexSegment(const CompactionInfo& info, int tree_level, SegmentId segment,
                      Slice bytes) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
};

TEST(ConcurrencyTest, BackpressureEngagesWhenFlushFallsBehind) {
  auto dev = MakeDevice();
  WorkerPool pool(1);
  pool.Start();

  KvStoreOptions opts;
  opts.l0_max_entries = 256;
  opts.compaction_pool = &pool;
  opts.slowdown_sleep_us = 50;
  auto store_or = KvStore::Create(dev.get(), opts);
  ASSERT_TRUE(store_or.ok());
  KvStore* store = store_or->get();
  SlowShippingObserver observer;
  store->set_compaction_observer(&observer);

  constexpr uint64_t kKeys = 4000;
  for (uint64_t i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(store->Put(Key(i), Value(i)).ok());
  }
  ASSERT_TRUE(store->WaitForBackgroundWork().ok());

  const KvStoreStats stats = store->stats();
  EXPECT_GT(stats.write_slowdowns + stats.write_stalls, 0u)
      << "writer never hit the slowdown or stall band";
  // The active L0 never grows past the hard-stop bound.
  EXPECT_LE(store->l0_entries(), 2 * opts.l0_max_entries + opts.l0_max_entries);

  for (uint64_t i = 0; i < kKeys; i += 271) {
    auto got = store->Get(Key(i));
    ASSERT_TRUE(got.ok()) << Key(i);
    EXPECT_EQ(*got, Value(i));
  }
  store_or->reset();
  pool.Stop();
}

TEST(ConcurrencyTest, SendIndexReplicationStaysConsistentWithBackgroundCompactions) {
  SimClusterOptions opts;
  opts.num_servers = 3;
  opts.num_regions = 4;
  opts.replication_factor = 2;
  opts.mode = ReplicationMode::kSendIndex;
  opts.compaction_workers = 2;
  opts.kv_options.l0_max_entries = 512;
  auto cluster_or = SimCluster::Create(opts);
  ASSERT_TRUE(cluster_or.ok());
  SimCluster* cluster = cluster_or->get();

  std::vector<std::string> keys;
  for (uint64_t i = 0; i < 6000; ++i) {
    keys.push_back(Key(i * 7919 % (1ull << 31)));
    ASSERT_TRUE(cluster->Put(keys.back(), Value(i)).ok());
  }
  ASSERT_TRUE(cluster->FlushAll().ok());
  EXPECT_TRUE(cluster->VerifyBackupsConsistent(keys).ok());
}

}  // namespace
}  // namespace tebis
