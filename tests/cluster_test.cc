#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <thread>
#include <string>
#include <vector>

#include "src/cluster/client.h"
#include "src/cluster/coordinator.h"
#include "src/cluster/master.h"
#include "src/cluster/region_map.h"
#include "src/cluster/region_server.h"
#include "src/common/random.h"

namespace tebis {
namespace {

constexpr uint64_t kSegmentSize = 1 << 16;

// --- Coordinator ----------------------------------------------------------

TEST(CoordinatorTest, CreateGetSetDelete) {
  Coordinator zk;
  ASSERT_TRUE(zk.Create(Coordinator::kNoSession, "/cfg", "v1", {}).ok());
  auto v = zk.Get("/cfg");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "v1");
  ASSERT_TRUE(zk.Set("/cfg", "v2").ok());
  EXPECT_EQ(*zk.Get("/cfg"), "v2");
  ASSERT_TRUE(zk.Delete(Coordinator::kNoSession, "/cfg").ok());
  EXPECT_TRUE(zk.Get("/cfg").status().IsNotFound());
}

TEST(CoordinatorTest, ParentMustExist) {
  Coordinator zk;
  EXPECT_TRUE(zk.Create(Coordinator::kNoSession, "/a/b", "", {}).IsNotFound());
  ASSERT_TRUE(zk.Create(Coordinator::kNoSession, "/a", "", {}).ok());
  EXPECT_TRUE(zk.Create(Coordinator::kNoSession, "/a/b", "", {}).ok());
}

TEST(CoordinatorTest, DuplicateCreateFails) {
  Coordinator zk;
  ASSERT_TRUE(zk.Create(Coordinator::kNoSession, "/x", "", {}).ok());
  EXPECT_EQ(zk.Create(Coordinator::kNoSession, "/x", "", {}).code(),
            StatusCode::kAlreadyExists);
}

TEST(CoordinatorTest, EphemeralNodesDieWithSession) {
  Coordinator zk;
  auto session = zk.CreateSession();
  ASSERT_TRUE(zk.Create(session, "/worker", "", {.ephemeral = true}).ok());
  EXPECT_TRUE(zk.Exists("/worker"));
  zk.ExpireSession(session);
  EXPECT_FALSE(zk.Exists("/worker"));
  EXPECT_FALSE(zk.SessionAlive(session));
}

TEST(CoordinatorTest, EphemeralRequiresLiveSession) {
  Coordinator zk;
  EXPECT_FALSE(zk.Create(Coordinator::kNoSession, "/e", "", {.ephemeral = true}).ok());
  auto session = zk.CreateSession();
  zk.ExpireSession(session);
  EXPECT_FALSE(zk.Create(session, "/e", "", {.ephemeral = true}).ok());
}

TEST(CoordinatorTest, SequentialNodesGetIncreasingSuffixes) {
  Coordinator zk;
  ASSERT_TRUE(zk.Create(Coordinator::kNoSession, "/election", "", {}).ok());
  std::string a, b;
  ASSERT_TRUE(zk.Create(Coordinator::kNoSession, "/election/m-", "",
                        {.ephemeral = false, .sequential = true}, &a)
                  .ok());
  ASSERT_TRUE(zk.Create(Coordinator::kNoSession, "/election/m-", "",
                        {.ephemeral = false, .sequential = true}, &b)
                  .ok());
  EXPECT_LT(a, b);
}

TEST(CoordinatorTest, WatchesFireOnce) {
  Coordinator zk;
  int fired = 0;
  ASSERT_TRUE(zk.Create(Coordinator::kNoSession, "/watched", "v", {}).ok());
  ASSERT_TRUE(zk.Get("/watched", [&](const WatchEvent& e) {
                  fired++;
                  EXPECT_EQ(e.type, WatchEventType::kDataChanged);
                }).ok());
  ASSERT_TRUE(zk.Set("/watched", "v2").ok());
  ASSERT_TRUE(zk.Set("/watched", "v3").ok());  // watch is one-shot
  EXPECT_EQ(fired, 1);
}

TEST(CoordinatorTest, ChildWatchFiresOnCreateAndDelete) {
  Coordinator zk;
  ASSERT_TRUE(zk.Create(Coordinator::kNoSession, "/servers", "", {}).ok());
  int fired = 0;
  ASSERT_TRUE(zk.List("/servers", [&](const WatchEvent&) { fired++; }).ok());
  ASSERT_TRUE(zk.Create(Coordinator::kNoSession, "/servers/s1", "", {}).ok());
  EXPECT_EQ(fired, 1);
  ASSERT_TRUE(zk.List("/servers", [&](const WatchEvent&) { fired++; }).ok());
  ASSERT_TRUE(zk.Delete(Coordinator::kNoSession, "/servers/s1").ok());
  EXPECT_EQ(fired, 2);
}

TEST(CoordinatorTest, ListReturnsDirectChildrenOnly) {
  Coordinator zk;
  ASSERT_TRUE(zk.Create(Coordinator::kNoSession, "/a", "", {}).ok());
  ASSERT_TRUE(zk.Create(Coordinator::kNoSession, "/a/x", "", {}).ok());
  ASSERT_TRUE(zk.Create(Coordinator::kNoSession, "/a/y", "", {}).ok());
  ASSERT_TRUE(zk.Create(Coordinator::kNoSession, "/a/x/deep", "", {}).ok());
  auto children = zk.List("/a");
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(*children, (std::vector<std::string>{"x", "y"}));
}

TEST(CoordinatorTest, ConcurrentSessionsAndWatches) {
  Coordinator zk;
  ASSERT_TRUE(zk.Create(Coordinator::kNoSession, "/race", "", {}).ok());
  constexpr int kThreads = 6;
  constexpr int kPerThread = 200;
  std::atomic<int> watch_fires{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto session = zk.CreateSession();
      for (int i = 0; i < kPerThread; ++i) {
        const std::string path = "/race/t" + std::to_string(t) + "-" + std::to_string(i);
        ASSERT_TRUE(zk.Create(session, path, "v", {.ephemeral = true}).ok());
        (void)zk.Get(path, [&](const WatchEvent&) { watch_fires++; });
        if (i % 2 == 0) {
          ASSERT_TRUE(zk.Delete(session, path).ok());
        }
      }
      zk.ExpireSession(session);  // deletes the ephemeral survivors
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  // Every node is gone (half deleted explicitly, half by session expiry) and
  // every one-shot watch fired exactly once.
  auto children = zk.List("/race");
  ASSERT_TRUE(children.ok());
  EXPECT_TRUE(children->empty());
  EXPECT_EQ(watch_fires.load(), kThreads * kPerThread);
}

// --- RegionMap -----------------------------------------------------------------

TEST(RegionMapTest, UniformSplitCoversKeySpace) {
  auto map = RegionMap::CreateUniform(8, "user", 10, 1000000, {"s0", "s1", "s2"}, 2);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map->regions().size(), 8u);
  // Every generated key lands in exactly one region.
  Random rng(3);
  for (int i = 0; i < 1000; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "user%010llu",
             static_cast<unsigned long long>(rng.Uniform(1000000)));
    const RegionInfo* region = map->FindRegion(key);
    ASSERT_NE(region, nullptr) << key;
    EXPECT_TRUE(region->Contains(key));
  }
  // Keys outside the prefix still land somewhere (first/last regions are
  // open-ended).
  EXPECT_NE(map->FindRegion(""), nullptr);
  EXPECT_NE(map->FindRegion("zzzz"), nullptr);
}

TEST(RegionMapTest, RoundRobinPlacementBalances) {
  auto map = RegionMap::CreateUniform(9, "k", 6, 900000, {"s0", "s1", "s2"}, 3);
  ASSERT_TRUE(map.ok());
  for (const auto& server : {"s0", "s1", "s2"}) {
    EXPECT_EQ(map->PrimariesOf(server).size(), 3u) << server;
    EXPECT_EQ(map->BackupsOf(server).size(), 6u) << server;
  }
  // Primary never duplicated in its own backup list.
  for (const auto& region : map->regions()) {
    for (const auto& backup : region.backups) {
      EXPECT_NE(backup, region.primary);
    }
  }
}

TEST(RegionMapTest, SerializeRoundTrip) {
  auto map = RegionMap::CreateUniform(4, "user", 8, 10000, {"a", "b"}, 2);
  ASSERT_TRUE(map.ok());
  std::string data = map->Serialize();
  auto decoded = RegionMap::Deserialize(data);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->version(), map->version());
  ASSERT_EQ(decoded->regions().size(), 4u);
  EXPECT_EQ(decoded->regions()[2].primary, map->regions()[2].primary);
  EXPECT_EQ(decoded->regions()[2].start_key, map->regions()[2].start_key);
}

TEST(RegionMapTest, RejectsBadParameters) {
  EXPECT_FALSE(RegionMap::CreateUniform(0, "k", 4, 100, {"a"}, 1).ok());
  EXPECT_FALSE(RegionMap::CreateUniform(4, "k", 4, 100, {}, 1).ok());
  EXPECT_FALSE(RegionMap::CreateUniform(4, "k", 4, 100, {"a"}, 2).ok());  // rf > servers
}

// --- full cluster integration -----------------------------------------------------

class ClusterFixture {
 public:
  explicit ClusterFixture(ReplicationMode mode, int num_servers = 3, uint32_t num_regions = 4,
                          int replication_factor = 2) {
    RegionServerOptions options;
    options.device_options.segment_size = kSegmentSize;
    options.device_options.max_segments = 1 << 16;
    options.kv_options.l0_max_entries = 256;
    options.kv_options.max_levels = 3;
    options.replication_mode = mode;
    std::vector<std::string> names;
    for (int i = 0; i < num_servers; ++i) {
      names.push_back("server" + std::to_string(i));
      servers.push_back(
          std::make_unique<RegionServer>(&fabric, &zk, names.back(), options));
      EXPECT_TRUE(servers.back()->Start().ok());
      directory[names.back()] = servers.back().get();
    }
    master = std::make_unique<Master>(&zk, "master0", directory);
    EXPECT_TRUE(master->Campaign().ok());
    EXPECT_TRUE(master->IsLeader());
    auto map = RegionMap::CreateUniform(num_regions, "user", 10, 1000000000ull, names,
                                        replication_factor);
    EXPECT_TRUE(map.ok());
    EXPECT_TRUE(master->Bootstrap(*map).ok());
  }

  std::unique_ptr<TebisClient> MakeClient(const std::string& name) {
    std::vector<std::string> seeds;
    for (auto& [server_name, server] : directory) {
      seeds.push_back(server_name);
    }
    auto client = std::make_unique<TebisClient>(
        &fabric, name,
        [this](const std::string& server) -> ServerEndpoint* {
          auto it = directory.find(server);
          if (it == directory.end() || it->second->crashed()) {
            return nullptr;
          }
          return it->second->client_endpoint();
        },
        seeds);
    EXPECT_TRUE(client->Connect().ok());
    return client;
  }

  static std::string Key(uint64_t i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "user%010llu", static_cast<unsigned long long>(i * 7919 % 1000000000ull));
    return buf;
  }

  Fabric fabric;
  Coordinator zk;
  std::vector<std::unique_ptr<RegionServer>> servers;
  std::map<std::string, RegionServer*> directory;
  std::unique_ptr<Master> master;
};

TEST(ClusterTest, PutGetAcrossRegions) {
  ClusterFixture cluster(ReplicationMode::kSendIndex);
  auto client = cluster.MakeClient("client0");
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(client->Put(ClusterFixture::Key(i), "value" + std::to_string(i)).ok()) << i;
  }
  for (int i = 0; i < 500; ++i) {
    auto v = client->Get(ClusterFixture::Key(i));
    ASSERT_TRUE(v.ok()) << i << " " << v.status().ToString();
    EXPECT_EQ(*v, "value" + std::to_string(i));
  }
  EXPECT_TRUE(client->Get("user9999999999").status().IsNotFound());
}

TEST(ClusterTest, DeleteViaClient) {
  ClusterFixture cluster(ReplicationMode::kSendIndex);
  auto client = cluster.MakeClient("client0");
  ASSERT_TRUE(client->Put(ClusterFixture::Key(1), "v").ok());
  ASSERT_TRUE(client->Delete(ClusterFixture::Key(1)).ok());
  EXPECT_TRUE(client->Get(ClusterFixture::Key(1)).status().IsNotFound());
}

TEST(ClusterTest, ScanWithinRegion) {
  ClusterFixture cluster(ReplicationMode::kSendIndex, 3, /*num_regions=*/1);
  auto client = cluster.MakeClient("client0");
  for (int i = 0; i < 100; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "user%010d", i);
    ASSERT_TRUE(client->Put(key, "sv" + std::to_string(i)).ok());
  }
  auto pairs = client->Scan("user0000000010", 5);
  ASSERT_TRUE(pairs.ok()) << pairs.status().ToString();
  ASSERT_EQ(pairs->size(), 5u);
  EXPECT_EQ((*pairs)[0].key, "user0000000010");
  EXPECT_EQ((*pairs)[0].value, "sv10");
  EXPECT_EQ((*pairs)[4].key, "user0000000014");
}

TEST(ClusterTest, ScanCrossesRegionBoundaries) {
  // 4 regions over [0, 1e9); a scan starting near the end of region 0 must
  // continue seamlessly into region 1 (a different primary server).
  ClusterFixture cluster(ReplicationMode::kSendIndex, 3, /*num_regions=*/4);
  auto client = cluster.MakeClient("client0");
  // Keys straddling the first boundary at 250000000.
  std::vector<std::string> keys;
  for (uint64_t base : {249999998ull, 249999999ull, 250000000ull, 250000001ull, 250000002ull}) {
    char key[32];
    snprintf(key, sizeof(key), "user%010llu", (unsigned long long)base);
    keys.push_back(key);
    ASSERT_TRUE(client->Put(key, "x-" + std::to_string(base)).ok());
  }
  auto pairs = client->Scan(keys[0], 5);
  ASSERT_TRUE(pairs.ok()) << pairs.status().ToString();
  ASSERT_EQ(pairs->size(), 5u);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ((*pairs)[i].key, keys[i]);
  }
}

TEST(ClusterTest, LargeValueTriggersTruncatedRetry) {
  ClusterFixture cluster(ReplicationMode::kSendIndex);
  auto client = cluster.MakeClient("client0");
  std::string big(8000, 'B');
  ASSERT_TRUE(client->Put(ClusterFixture::Key(5), big).ok());
  auto v = client->Get(ClusterFixture::Key(5));
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v, big);
  EXPECT_GE(client->stats().truncated_retries, 1u);
}

TEST(ClusterTest, PipelinedOpsComplete) {
  ClusterFixture cluster(ReplicationMode::kSendIndex);
  auto client = cluster.MakeClient("client0");
  std::vector<TebisClient::OpHandle> handles;
  for (int i = 0; i < 200; ++i) {
    auto h = client->PutAsync(ClusterFixture::Key(i), "pipelined");
    ASSERT_TRUE(h.ok());
    handles.push_back(*h);
  }
  ASSERT_TRUE(client->WaitAll().ok());
  for (int i = 0; i < 200; i += 17) {
    auto v = client->Get(ClusterFixture::Key(i));
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, "pipelined");
  }
}

TEST(ClusterTest, BuildIndexModeWorksEndToEnd) {
  ClusterFixture cluster(ReplicationMode::kBuildIndex);
  auto client = cluster.MakeClient("client0");
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(client->Put(ClusterFixture::Key(i % 300), "b" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 300; i += 13) {
    ASSERT_TRUE(client->Get(ClusterFixture::Key(i)).ok());
  }
}

TEST(ClusterTest, WorkloadWithCompactionsThroughWire) {
  ClusterFixture cluster(ReplicationMode::kSendIndex);
  auto client = cluster.MakeClient("client0");
  std::map<std::string, std::string> model;
  Random rng(5);
  for (int i = 0; i < 4000; ++i) {
    std::string key = ClusterFixture::Key(rng.Uniform(500));
    std::string value = rng.Bytes(1 + rng.Uniform(200));
    ASSERT_TRUE(client->Put(key, value).ok()) << i;
    model[key] = value;
  }
  uint64_t compactions = 0;
  for (auto& server : cluster.servers) {
    compactions += server->Aggregate().compactions;
  }
  EXPECT_GT(compactions, 0u);
  for (const auto& [key, value] : model) {
    auto v = client->Get(key);
    ASSERT_TRUE(v.ok()) << key;
    EXPECT_EQ(*v, value);
  }
}

// --- §3.5 failure handling ------------------------------------------------------

TEST(FailoverTest, PrimaryFailurePromotesBackupAndClientRecovers) {
  ClusterFixture cluster(ReplicationMode::kSendIndex, 3, 4, /*replication_factor=*/2);
  auto client = cluster.MakeClient("client0");
  std::map<std::string, std::string> model;
  for (int i = 0; i < 2000; ++i) {
    std::string key = ClusterFixture::Key(i % 600);
    std::string value = "pre-crash-" + std::to_string(i);
    ASSERT_TRUE(client->Put(key, value).ok());
    model[key] = value;
  }
  // Crash server0: the master promotes backups for its primary regions and
  // finds replacements for its backup slots.
  cluster.servers[0]->Crash();
  auto map = cluster.master->current_map();
  ASSERT_NE(map, nullptr);
  for (const auto& region : map->regions()) {
    EXPECT_NE(region.primary, "server0");
    for (const auto& backup : region.backups) {
      EXPECT_NE(backup, "server0");
    }
  }
  // Every acknowledged write must survive (the client refreshes its stale
  // map on the wrong-region reply).
  for (const auto& [key, value] : model) {
    auto v = client->Get(key);
    ASSERT_TRUE(v.ok()) << key << " " << v.status().ToString();
    EXPECT_EQ(*v, value) << key;
  }
  EXPECT_GT(client->stats().wrong_region_retries + client->stats().map_refreshes, 0u);
  // And the cluster accepts new writes.
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(client->Put(ClusterFixture::Key(i % 600), "post-crash").ok());
  }
}

TEST(FailoverTest, BackupFailureTransfersDataToReplacement) {
  ClusterFixture cluster(ReplicationMode::kSendIndex, 3, 2, /*replication_factor=*/2);
  auto client = cluster.MakeClient("client0");
  for (int i = 0; i < 1500; ++i) {
    ASSERT_TRUE(client->Put(ClusterFixture::Key(i % 400), "transfer-" + std::to_string(i)).ok());
  }
  // Find a server that is backup-only victim candidate: crash server1.
  cluster.servers[1]->Crash();
  auto map = cluster.master->current_map();
  ASSERT_NE(map, nullptr);
  for (const auto& region : map->regions()) {
    EXPECT_NE(region.primary, "server1");
    for (const auto& backup : region.backups) {
      EXPECT_NE(backup, "server1");
    }
    EXPECT_EQ(region.backups.size(), 1u);  // replication factor restored
  }
  // Now crash the (possibly new) primaries' server too: data must still be
  // fully recoverable from the freshly synced replicas.
  cluster.servers[2]->Crash();
  for (int i = 0; i < 400; i += 7) {
    auto v = client->Get(ClusterFixture::Key(i));
    ASSERT_TRUE(v.ok()) << i << " " << v.status().ToString();
  }
}

TEST(FailoverTest, ThreeWayReplicationSurvivesPrimaryLoss) {
  ClusterFixture cluster(ReplicationMode::kSendIndex, 4, 4, /*replication_factor=*/3);
  auto client = cluster.MakeClient("client0");
  std::map<std::string, std::string> model;
  for (int i = 0; i < 2500; ++i) {
    std::string key = ClusterFixture::Key(i % 500);
    model[key] = "three-way-" + std::to_string(i);
    ASSERT_TRUE(client->Put(key, model[key]).ok());
  }
  cluster.servers[0]->Crash();
  for (const auto& [key, value] : model) {
    auto v = client->Get(key);
    ASSERT_TRUE(v.ok()) << key;
    EXPECT_EQ(*v, value);
  }
}

TEST(FailoverTest, MasterFailureElectsStandbyWhichHandlesFailures) {
  ClusterFixture cluster(ReplicationMode::kSendIndex, 3, 2, 2);
  // A standby master campaigns and loses.
  Master standby(&cluster.zk, "master1", cluster.directory);
  ASSERT_TRUE(standby.Campaign().ok());
  EXPECT_FALSE(standby.IsLeader());

  auto client = cluster.MakeClient("client0");
  for (int i = 0; i < 800; ++i) {
    ASSERT_TRUE(client->Put(ClusterFixture::Key(i % 200), "m-" + std::to_string(i)).ok());
  }
  // Kill the leader; the standby takes over (§3.5 "master failure").
  cluster.master->Fail();
  EXPECT_TRUE(standby.IsLeader());
  // A region-server failure is now handled by the new leader.
  cluster.servers[0]->Crash();
  auto map = standby.current_map();
  ASSERT_NE(map, nullptr);
  for (const auto& region : map->regions()) {
    EXPECT_NE(region.primary, "server0");
  }
  for (int i = 0; i < 200; i += 11) {
    ASSERT_TRUE(client->Get(ClusterFixture::Key(i)).ok()) << i;
  }
}

TEST(FailoverTest, BuildIndexPrimaryFailover) {
  ClusterFixture cluster(ReplicationMode::kBuildIndex, 3, 2, 2);
  auto client = cluster.MakeClient("client0");
  std::map<std::string, std::string> model;
  for (int i = 0; i < 1500; ++i) {
    std::string key = ClusterFixture::Key(i % 300);
    model[key] = "bi-" + std::to_string(i);
    ASSERT_TRUE(client->Put(key, model[key]).ok());
  }
  cluster.servers[0]->Crash();
  for (const auto& [key, value] : model) {
    auto v = client->Get(key);
    ASSERT_TRUE(v.ok()) << key;
    EXPECT_EQ(*v, value);
  }
}

}  // namespace
}  // namespace tebis
