// Checkpoint + local recovery: a store can be rebuilt from its device after a
// process restart — the manifest restores the levels and the flushed log, and
// the L0 replay boundary restores everything down to the last flushed record.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "src/common/random.h"
#include "src/lsm/kv_store.h"
#include "src/lsm/manifest.h"
#include "src/storage/block_device.h"

namespace tebis {
namespace {

constexpr uint64_t kSegmentSize = 1 << 16;

BlockDeviceOptions DeviceOptions(const std::string& file = "", bool reopen = false) {
  BlockDeviceOptions opts;
  opts.segment_size = kSegmentSize;
  opts.max_segments = 1 << 16;
  opts.backing_file = file;
  opts.reopen_existing = reopen;
  return opts;
}

KvStoreOptions StoreOptions() {
  KvStoreOptions opts;
  opts.l0_max_entries = 256;
  opts.max_levels = 3;
  opts.auto_checkpoint = true;
  return opts;
}

std::string Key(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key%010llu", static_cast<unsigned long long>(i));
  return buf;
}

TEST(ManifestTest, EncodeDecodeRoundTrip) {
  Manifest manifest;
  manifest.levels.resize(4);
  manifest.levels[1].root_offset = 0x12345;
  manifest.levels[1].height = 2;
  manifest.levels[1].num_entries = 999;
  manifest.levels[1].segments = {7, 8, 9};
  manifest.log_flushed_segments = {1, 2, 3, 4};
  manifest.l0_replay_from = 2;
  std::string encoded = manifest.Encode();
  auto decoded = Manifest::Decode(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->levels.size(), 4u);
  EXPECT_EQ(decoded->levels[1].root_offset, 0x12345u);
  EXPECT_EQ(decoded->levels[1].segments, (std::vector<SegmentId>{7, 8, 9}));
  EXPECT_EQ(decoded->log_flushed_segments, (std::vector<SegmentId>{1, 2, 3, 4}));
  EXPECT_EQ(decoded->l0_replay_from, 2u);
}

TEST(ManifestTest, CorruptionDetected) {
  Manifest manifest;
  manifest.levels.resize(2);
  std::string encoded = manifest.Encode();
  encoded[encoded.size() / 2] ^= 0x10;
  EXPECT_TRUE(Manifest::Decode(encoded).status().IsCorruption());
  EXPECT_FALSE(Manifest::Decode(Slice(encoded.data(), 3)).ok());
}

TEST(RecoveryTest, SameDeviceCheckpointRecover) {
  // Simulates a crash where the device object survives (crash of the engine,
  // not the machine): recover from the checkpoint on the same device.
  auto dev = BlockDevice::Create(DeviceOptions());
  ASSERT_TRUE(dev.ok());
  std::map<std::string, std::string> expected;
  SegmentId superblock = kInvalidSegment;
  {
    auto store = KvStore::Create(dev->get(), StoreOptions());
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 2000; ++i) {
      std::string value = "v-" + std::to_string(i);
      ASSERT_TRUE((*store)->Put(Key(i % 500), value).ok());
      expected[Key(i % 500)] = value;
    }
    // Everything up to the last flush is recoverable; force a flush + final
    // checkpoint so the whole dataset is durable.
    ASSERT_TRUE((*store)->value_log()->FlushTail().ok());
    auto checkpoint = (*store)->Checkpoint();
    ASSERT_TRUE(checkpoint.ok());
    superblock = *checkpoint;
    // The store "crashes" here: the unique_ptr dies, memory state is gone.
    // Free the store's segments?? No — a crash does NOT free anything; the
    // device still has them allocated, which is exactly what Recover expects.
  }
  // The same device cannot re-adopt; create the recovered store on a fresh
  // view by using Recover's adoption path against a reopened file instead —
  // covered below. Here we only verify the manifest references live segments.
  std::string image(kSegmentSize, 0);
  ASSERT_TRUE(dev->get()
                  ->Read(dev->get()->geometry().BaseOffset(superblock), kSegmentSize,
                         image.data(), IoClass::kRecovery)
                  .ok());
  uint32_t length;
  memcpy(&length, image.data(), 4);
  auto manifest = Manifest::Decode(Slice(image.data() + 4, length));
  ASSERT_TRUE(manifest.ok());
  for (SegmentId seg : manifest->log_flushed_segments) {
    EXPECT_TRUE(dev->get()->IsAllocated(seg));
  }
}

TEST(RecoveryTest, FileBackedFullRestart) {
  const std::string file = testing::TempDir() + "/tebis_recovery.img";
  std::map<std::string, std::string> expected;
  SegmentId superblock = kInvalidSegment;
  {
    auto dev = BlockDevice::Create(DeviceOptions(file));
    ASSERT_TRUE(dev.ok());
    auto store = KvStore::Create(dev->get(), StoreOptions());
    ASSERT_TRUE(store.ok());
    Random rng(3);
    for (int i = 0; i < 3000; ++i) {
      std::string key = Key(rng.Uniform(600));
      std::string value = rng.Bytes(1 + rng.Uniform(120));
      ASSERT_TRUE((*store)->Put(key, value).ok());
      expected[key] = value;
    }
    for (int i = 0; i < 600; i += 5) {
      ASSERT_TRUE((*store)->Delete(Key(i)).ok());
      expected.erase(Key(i));
    }
    ASSERT_TRUE((*store)->value_log()->FlushTail().ok());
    auto checkpoint = (*store)->Checkpoint();
    ASSERT_TRUE(checkpoint.ok());
    superblock = *checkpoint;
    // Process "dies": device and store destroyed; only the file remains.
  }
  {
    auto dev = BlockDevice::Create(DeviceOptions(file, /*reopen=*/true));
    ASSERT_TRUE(dev.ok());
    auto store = KvStore::Recover(dev->get(), StoreOptions(), superblock);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (const auto& [key, value] : expected) {
      auto v = (*store)->Get(key);
      ASSERT_TRUE(v.ok()) << key << " " << v.status().ToString();
      EXPECT_EQ(*v, value) << key;
    }
    for (int i = 0; i < 600; i += 5) {
      EXPECT_TRUE((*store)->Get(Key(i)).status().IsNotFound()) << i;
    }
    // The recovered store keeps working: writes, compactions, checkpoints.
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE((*store)->Put(Key(i), "post-recovery-" + std::to_string(i)).ok());
    }
    auto v = (*store)->Get(Key(123));
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, "post-recovery-123");
  }
}

TEST(RecoveryTest, RecoverTwiceFromSameCheckpointChain) {
  // Crash again after recovery: the auto-checkpoints taken post-recovery keep
  // a valid chain.
  const std::string file = testing::TempDir() + "/tebis_recovery2.img";
  SegmentId superblock;
  {
    auto dev = BlockDevice::Create(DeviceOptions(file));
    ASSERT_TRUE(dev.ok());
    auto store = KvStore::Create(dev->get(), StoreOptions());
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 1500; ++i) {
      ASSERT_TRUE((*store)->Put(Key(i), "gen1").ok());
    }
    ASSERT_TRUE((*store)->value_log()->FlushTail().ok());
    superblock = *(*store)->Checkpoint();
  }
  {
    auto dev = BlockDevice::Create(DeviceOptions(file, true));
    ASSERT_TRUE(dev.ok());
    auto store = KvStore::Recover(dev->get(), StoreOptions(), superblock);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 1500; ++i) {
      ASSERT_TRUE((*store)->Put(Key(i), "gen2").ok());
    }
    ASSERT_TRUE((*store)->value_log()->FlushTail().ok());
    superblock = *(*store)->Checkpoint();
  }
  {
    auto dev = BlockDevice::Create(DeviceOptions(file, true));
    ASSERT_TRUE(dev.ok());
    auto store = KvStore::Recover(dev->get(), StoreOptions(), superblock);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (int i = 0; i < 1500; i += 97) {
      auto v = (*store)->Get(Key(i));
      ASSERT_TRUE(v.ok()) << i;
      EXPECT_EQ(*v, "gen2");
    }
  }
}

TEST(RecoveryTest, UnflushedTailIsNotRecoveredLocally) {
  // Documents the durability contract: records only in the in-memory tail are
  // not local state (replicas own them, §3.5).
  const std::string file = testing::TempDir() + "/tebis_recovery3.img";
  SegmentId superblock;
  {
    auto dev = BlockDevice::Create(DeviceOptions(file));
    ASSERT_TRUE(dev.ok());
    auto store = KvStore::Create(dev->get(), StoreOptions());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("durable", "flushed-value").ok());
    ASSERT_TRUE((*store)->value_log()->FlushTail().ok());
    superblock = *(*store)->Checkpoint();
    ASSERT_TRUE((*store)->Put("volatile", "tail-only-value").ok());
    // Crash without flushing.
  }
  auto dev = BlockDevice::Create(DeviceOptions(file, true));
  ASSERT_TRUE(dev.ok());
  auto store = KvStore::Recover(dev->get(), StoreOptions(), superblock);
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->Get("durable").ok());
  EXPECT_TRUE((*store)->Get("volatile").status().IsNotFound());
}

TEST(IntegrityTest, CleanStorePassesAndCountsEverything) {
  auto dev = BlockDevice::Create(DeviceOptions());
  ASSERT_TRUE(dev.ok());
  auto store = KvStore::Create(dev->get(), StoreOptions());
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE((*store)->Put(Key(i), "int-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE((*store)->FlushL0().ok());
  auto report = (*store)->CheckIntegrity();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->level_entries_checked, 2000u);
  EXPECT_GE(report->log_records_checked, 2000u);
}

TEST(IntegrityTest, DetectsCorruptedLogRecord) {
  auto dev = BlockDevice::Create(DeviceOptions());
  ASSERT_TRUE(dev.ok());
  auto store = KvStore::Create(dev->get(), StoreOptions());
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE((*store)->Put(Key(i), "victim").ok());
  }
  ASSERT_TRUE((*store)->FlushL0().ok());
  // Flip a byte in the middle of the first flushed log segment.
  SegmentId seg = (*store)->value_log()->flushed_segments()[0];
  uint64_t off = dev->get()->geometry().BaseOffset(seg) + 2000;
  char byte;
  ASSERT_TRUE(dev->get()->Read(off, 1, &byte, IoClass::kOther).ok());
  byte ^= 0x5a;
  ASSERT_TRUE(dev->get()->Write(off, Slice(&byte, 1), IoClass::kOther).ok());
  auto report = (*store)->CheckIntegrity();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsCorruption()) << report.status().ToString();
}

TEST(IntegrityTest, RecoveredStorePassesIntegrity) {
  const std::string file = testing::TempDir() + "/tebis_integrity.img";
  SegmentId superblock;
  {
    auto dev = BlockDevice::Create(DeviceOptions(file));
    ASSERT_TRUE(dev.ok());
    auto store = KvStore::Create(dev->get(), StoreOptions());
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 2500; ++i) {
      ASSERT_TRUE((*store)->Put(Key(i % 400), "gen-" + std::to_string(i)).ok());
    }
    ASSERT_TRUE((*store)->value_log()->FlushTail().ok());
    superblock = *(*store)->Checkpoint();
  }
  auto dev = BlockDevice::Create(DeviceOptions(file, true));
  ASSERT_TRUE(dev.ok());
  auto store = KvStore::Recover(dev->get(), StoreOptions(), superblock);
  ASSERT_TRUE(store.ok());
  auto report = (*store)->CheckIntegrity();
  EXPECT_TRUE(report.ok()) << report.status().ToString();
}

TEST(RecoveryTest, CheckpointAfterGcRecovers) {
  const std::string file = testing::TempDir() + "/tebis_recovery4.img";
  SegmentId superblock;
  std::map<std::string, std::string> expected;
  {
    auto dev = BlockDevice::Create(DeviceOptions(file));
    ASSERT_TRUE(dev.ok());
    KvStoreOptions opts = StoreOptions();
    opts.l0_max_entries = 64;
    auto store = KvStore::Create(dev->get(), opts);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 3000; ++i) {
      std::string value = "gc-" + std::to_string(i);
      ASSERT_TRUE((*store)->Put(Key(i % 40), value).ok());
      expected[Key(i % 40)] = value;
    }
    auto freed = (*store)->GarbageCollectHead(3);
    ASSERT_TRUE(freed.ok());
    ASSERT_TRUE((*store)->value_log()->FlushTail().ok());
    superblock = *(*store)->Checkpoint();
  }
  auto dev = BlockDevice::Create(DeviceOptions(file, true));
  ASSERT_TRUE(dev.ok());
  KvStoreOptions opts = StoreOptions();
  opts.l0_max_entries = 64;
  auto store = KvStore::Recover(dev->get(), opts, superblock);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  for (const auto& [key, value] : expected) {
    auto v = (*store)->Get(key);
    ASSERT_TRUE(v.ok()) << key;
    EXPECT_EQ(*v, value);
  }
}

// --- torn-write recovery ------------------------------------------------------
// A crash can leave the final write of a segment half-applied. Recovery must
// detect the damage via CRCs and degrade gracefully — replay what is intact,
// never crash, never serve garbage.

TEST(TornWriteTest, TornValueLogTailIsTruncatedNotFatal) {
  auto dev = BlockDevice::Create(DeviceOptions());
  ASSERT_TRUE(dev.ok());
  KvStoreOptions opts = StoreOptions();
  opts.l0_max_entries = 1024;  // keep everything in the log replay region
  auto store = KvStore::Create(dev->get(), opts);
  ASSERT_TRUE(store.ok());
  constexpr int kRecords = 300;
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE((*store)->Put(Key(i), "torn-" + std::to_string(i) + std::string(400, 'v')).ok());
  }
  ASSERT_TRUE((*store)->value_log()->FlushTail().ok());
  auto checkpoint = (*store)->Checkpoint();
  ASSERT_TRUE(checkpoint.ok());
  const auto& flushed = (*store)->value_log()->flushed_segments();
  ASSERT_GE(flushed.size(), 2u) << "need >1 segment so the tear hits only the last";

  // Tear the LAST flushed segment at a random byte: everything from the cut
  // to the segment end never reached the device.
  Random rng(2026);
  const SegmentId last = flushed.back();
  const uint64_t cut = 64 + rng.Uniform(50000);
  std::string zeros(kSegmentSize - cut, 0);
  ASSERT_TRUE(dev->get()
                  ->Write(dev->get()->geometry().BaseOffset(last) + cut, Slice(zeros),
                          IoClass::kOther)
                  .ok());

  // "Reboot": recover on a content clone (clean allocation state, §3.5).
  auto cloned = dev->get()->CloneContents();
  ASSERT_TRUE(cloned.ok());
  auto recovered = KvStore::Recover(cloned->get(), opts, *checkpoint);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  // Replay order == insertion order, so the surviving keys form a strict
  // prefix; the torn suffix reads NotFound, never garbage.
  int first_missing = kRecords;
  for (int i = 0; i < kRecords; ++i) {
    auto v = (*recovered)->Get(Key(i));
    if (v.ok()) {
      ASSERT_EQ(first_missing, kRecords) << "key " << i << " present after a missing key";
      EXPECT_EQ(*v, "torn-" + std::to_string(i) + std::string(400, 'v'));
    } else {
      ASSERT_TRUE(v.status().IsNotFound()) << Key(i) << ": " << v.status().ToString();
      if (first_missing == kRecords) first_missing = i;
    }
  }
  EXPECT_GT(first_missing, 0) << "tear destroyed intact earlier segments";
  EXPECT_LT(first_missing, kRecords) << "tear did not actually remove any record";

  // A tear in the MIDDLE of the log (not the final segment) is real data loss
  // under the durability contract and must surface as Corruption, not be
  // silently truncated.
  std::string mid_zeros(kSegmentSize - 64, 0);
  ASSERT_TRUE(dev->get()
                  ->Write(dev->get()->geometry().BaseOffset(flushed.front()) + 64,
                          Slice(mid_zeros), IoClass::kOther)
                  .ok());
  auto cloned2 = dev->get()->CloneContents();
  ASSERT_TRUE(cloned2.ok());
  auto bad = KvStore::Recover(cloned2->get(), opts, *checkpoint);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsCorruption()) << bad.status().ToString();
}

TEST(TornWriteTest, TornIndexSegmentRebuildsFromValueLog) {
  // The level indexes are redundant with the (per-record CRC'd) value log, so
  // a torn/corrupted index segment — e.g. the last shipped segment of a
  // Send-Index rewrite — is survivable: the manifest's per-level CRC detects
  // it and recovery rebuilds the whole index by replaying the log.
  auto dev = BlockDevice::Create(DeviceOptions());
  ASSERT_TRUE(dev.ok());
  auto store = KvStore::Create(dev->get(), StoreOptions());
  ASSERT_TRUE(store.ok());
  constexpr int kRecords = 3000;
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE((*store)->Put(Key(i), "lv-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE((*store)->value_log()->FlushTail().ok());
  auto checkpoint = (*store)->Checkpoint();
  ASSERT_TRUE(checkpoint.ok());

  // Corrupt the last segment of the deepest non-empty level at a random spot.
  SegmentId victim = kInvalidSegment;
  for (uint32_t level = StoreOptions().max_levels; level >= 1; --level) {
    if (!(*store)->level(level).segments.empty()) {
      victim = (*store)->level(level).segments.back();
      break;
    }
  }
  ASSERT_NE(victim, kInvalidSegment) << "no on-device level to corrupt";
  Random rng(77);
  const uint64_t off = dev->get()->geometry().BaseOffset(victim) + rng.Uniform(kSegmentSize - 64);
  char bytes[64];
  ASSERT_TRUE(dev->get()->Read(off, sizeof(bytes), bytes, IoClass::kOther).ok());
  for (char& b : bytes) b ^= 0x5a;
  ASSERT_TRUE(dev->get()->Write(off, Slice(bytes, sizeof(bytes)), IoClass::kOther).ok());

  auto cloned = dev->get()->CloneContents();
  ASSERT_TRUE(cloned.ok());
  auto recovered = KvStore::Recover(cloned->get(), StoreOptions(), *checkpoint);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  // Nothing lost: every record came back from the log.
  for (int i = 0; i < kRecords; ++i) {
    auto v = (*recovered)->Get(Key(i));
    ASSERT_TRUE(v.ok()) << Key(i) << ": " << v.status().ToString();
    EXPECT_EQ(*v, "lv-" + std::to_string(i));
  }
}

}  // namespace
}  // namespace tebis
