#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/storage/block_device.h"
#include "src/storage/segment.h"

namespace tebis {
namespace {

BlockDeviceOptions SmallDeviceOptions() {
  BlockDeviceOptions opts;
  opts.segment_size = 4096;
  opts.max_segments = 64;
  return opts;
}

TEST(SegmentGeometryTest, OffsetDecomposition) {
  SegmentGeometry g(2 * 1024 * 1024);
  EXPECT_TRUE(g.IsValid());
  EXPECT_EQ(g.shift(), 21);
  uint64_t off = g.BaseOffset(5) | 1234;
  EXPECT_EQ(g.SegmentOf(off), 5u);
  EXPECT_EQ(g.OffsetInSegment(off), 1234u);
}

TEST(SegmentGeometryTest, TranslateKeepsLowBits) {
  SegmentGeometry g(1 << 16);
  uint64_t primary_off = g.BaseOffset(42) | 999;
  uint64_t backup_off = g.Translate(primary_off, 7);
  EXPECT_EQ(g.SegmentOf(backup_off), 7u);
  EXPECT_EQ(g.OffsetInSegment(backup_off), 999u);
}

TEST(SegmentGeometryTest, RejectsNonPowerOfTwo) {
  EXPECT_FALSE(SegmentGeometry(3000).IsValid());
  auto dev = BlockDevice::Create([] {
    BlockDeviceOptions o;
    o.segment_size = 3000;
    return o;
  }());
  EXPECT_FALSE(dev.ok());
}

TEST(BlockDeviceTest, AllocateWriteRead) {
  auto dev = BlockDevice::Create(SmallDeviceOptions());
  ASSERT_TRUE(dev.ok());
  auto seg = (*dev)->AllocateSegment();
  ASSERT_TRUE(seg.ok());
  uint64_t base = (*dev)->geometry().BaseOffset(*seg);

  std::string data = "tebis index segment";
  ASSERT_TRUE((*dev)->Write(base + 100, data, IoClass::kLogFlush).ok());

  std::vector<char> out(data.size());
  ASSERT_TRUE((*dev)->Read(base + 100, data.size(), out.data(), IoClass::kLookup).ok());
  EXPECT_EQ(std::string(out.begin(), out.end()), data);
}

TEST(BlockDeviceTest, IoToUnallocatedSegmentFails) {
  auto dev = BlockDevice::Create(SmallDeviceOptions());
  ASSERT_TRUE(dev.ok());
  char b = 'x';
  EXPECT_FALSE((*dev)->Write(0, Slice(&b, 1), IoClass::kOther).ok());
  EXPECT_FALSE((*dev)->Read(0, 1, &b, IoClass::kOther).ok());
}

TEST(BlockDeviceTest, CrossSegmentTransferRejected) {
  auto dev = BlockDevice::Create(SmallDeviceOptions());
  ASSERT_TRUE(dev.ok());
  auto s0 = (*dev)->AllocateSegment();
  auto s1 = (*dev)->AllocateSegment();
  ASSERT_TRUE(s0.ok() && s1.ok());
  std::string data(100, 'z');
  uint64_t near_end = (*dev)->geometry().BaseOffset(*s0) + 4096 - 50;
  EXPECT_FALSE((*dev)->Write(near_end, data, IoClass::kOther).ok());
}

TEST(BlockDeviceTest, FreeSegmentRecycled) {
  auto dev = BlockDevice::Create(SmallDeviceOptions());
  ASSERT_TRUE(dev.ok());
  auto s0 = (*dev)->AllocateSegment();
  ASSERT_TRUE(s0.ok());
  EXPECT_TRUE((*dev)->IsAllocated(*s0));
  ASSERT_TRUE((*dev)->FreeSegment(*s0).ok());
  EXPECT_FALSE((*dev)->IsAllocated(*s0));
  auto s1 = (*dev)->AllocateSegment();
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(*s1, *s0);  // recycled
}

TEST(BlockDeviceTest, DoubleFreeFails) {
  auto dev = BlockDevice::Create(SmallDeviceOptions());
  ASSERT_TRUE(dev.ok());
  auto s0 = (*dev)->AllocateSegment();
  ASSERT_TRUE(s0.ok());
  ASSERT_TRUE((*dev)->FreeSegment(*s0).ok());
  EXPECT_FALSE((*dev)->FreeSegment(*s0).ok());
}

TEST(BlockDeviceTest, CapacityExhaustion) {
  BlockDeviceOptions opts = SmallDeviceOptions();
  opts.max_segments = 2;
  auto dev = BlockDevice::Create(opts);
  ASSERT_TRUE(dev.ok());
  ASSERT_TRUE((*dev)->AllocateSegment().ok());
  ASSERT_TRUE((*dev)->AllocateSegment().ok());
  auto s = (*dev)->AllocateSegment();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kResourceExhausted);
}

TEST(BlockDeviceTest, FreedSegmentContentsZeroedOnReuse) {
  auto dev = BlockDevice::Create(SmallDeviceOptions());
  ASSERT_TRUE(dev.ok());
  auto s0 = (*dev)->AllocateSegment();
  ASSERT_TRUE(s0.ok());
  uint64_t base = (*dev)->geometry().BaseOffset(*s0);
  std::string data = "sensitive";
  ASSERT_TRUE((*dev)->Write(base, data, IoClass::kOther).ok());
  ASSERT_TRUE((*dev)->FreeSegment(*s0).ok());
  auto s1 = (*dev)->AllocateSegment();
  ASSERT_TRUE(s1.ok());
  std::vector<char> out(data.size(), 'q');
  ASSERT_TRUE((*dev)->Read(base, data.size(), out.data(), IoClass::kOther).ok());
  for (char c : out) {
    EXPECT_EQ(c, '\0');
  }
}

TEST(BlockDeviceTest, StatsAccounting) {
  auto dev = BlockDevice::Create(SmallDeviceOptions());
  ASSERT_TRUE(dev.ok());
  auto s0 = (*dev)->AllocateSegment();
  ASSERT_TRUE(s0.ok());
  uint64_t base = (*dev)->geometry().BaseOffset(*s0);
  std::string data(128, 'a');
  ASSERT_TRUE((*dev)->Write(base, data, IoClass::kLogFlush).ok());
  ASSERT_TRUE((*dev)->Write(base + 128, data, IoClass::kCompactionWrite).ok());
  char out[64];
  ASSERT_TRUE((*dev)->Read(base, 64, out, IoClass::kCompactionRead).ok());

  const IoStats& st = (*dev)->stats();
  EXPECT_EQ(st.WriteBytes(IoClass::kLogFlush), 128u);
  EXPECT_EQ(st.WriteBytes(IoClass::kCompactionWrite), 128u);
  EXPECT_EQ(st.ReadBytes(IoClass::kCompactionRead), 64u);
  EXPECT_EQ(st.TotalWriteBytes(), 256u);
  EXPECT_EQ(st.TotalReadBytes(), 64u);
  EXPECT_EQ(st.WriteOps(), 2u);
  EXPECT_EQ(st.ReadOps(), 1u);
}

TEST(BlockDeviceTest, FileBackedPersistsToFile) {
  BlockDeviceOptions opts = SmallDeviceOptions();
  opts.backing_file = testing::TempDir() + "/tebis_dev_test.img";
  auto dev = BlockDevice::Create(opts);
  ASSERT_TRUE(dev.ok());
  auto s0 = (*dev)->AllocateSegment();
  ASSERT_TRUE(s0.ok());
  uint64_t base = (*dev)->geometry().BaseOffset(*s0);
  std::string data = "persisted bytes";
  ASSERT_TRUE((*dev)->Write(base + 8, data, IoClass::kLogFlush).ok());

  // Verify through the file, not the device.
  FILE* f = fopen(opts.backing_file.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(fseek(f, static_cast<long>(base + 8), SEEK_SET), 0);
  std::vector<char> out(data.size());
  ASSERT_EQ(fread(out.data(), 1, out.size(), f), out.size());
  fclose(f);
  EXPECT_EQ(std::string(out.begin(), out.end()), data);
}

TEST(BlockDeviceTest, ConcurrentAllocAndIo) {
  BlockDeviceOptions opts = SmallDeviceOptions();
  opts.max_segments = 1024;
  auto dev = BlockDevice::Create(opts);
  ASSERT_TRUE(dev.ok());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 32;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        auto seg = (*dev)->AllocateSegment();
        if (!seg.ok()) {
          failures++;
          continue;
        }
        uint64_t base = (*dev)->geometry().BaseOffset(*seg);
        std::string data = "thread" + std::to_string(t) + "iter" + std::to_string(i);
        if (!(*dev)->Write(base, data, IoClass::kOther).ok()) {
          failures++;
        }
        std::vector<char> out(data.size());
        if (!(*dev)->Read(base, data.size(), out.data(), IoClass::kOther).ok() ||
            std::string(out.begin(), out.end()) != data) {
          failures++;
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ((*dev)->AllocatedSegments(), static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(IoStatsTest, ResetZeroesEverything) {
  IoStats st;
  st.AddRead(IoClass::kLookup, 100);
  st.AddWrite(IoClass::kLogFlush, 200);
  st.Reset();
  EXPECT_EQ(st.TotalBytes(), 0u);
  EXPECT_EQ(st.ReadOps(), 0u);
  EXPECT_EQ(st.WriteOps(), 0u);
}

TEST(IoStatsTest, ClassNamesDistinct) {
  std::set<std::string> names;
  for (int i = 0; i < kNumIoClasses; ++i) {
    names.insert(IoClassName(static_cast<IoClass>(i)));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumIoClasses));
}

TEST(BlockDeviceCostModelTest, ThrottleSlowsLargeTransfers) {
  BlockDeviceOptions opts = SmallDeviceOptions();
  opts.max_segments = 512;
  opts.cost_model.write_bandwidth_bytes_per_sec = 16 * 1024 * 1024;  // 16 MB/s
  auto dev = BlockDevice::Create(opts);
  ASSERT_TRUE(dev.ok());
  std::string data(4096, 'b');
  uint64_t start = NowNanos();
  for (int i = 0; i < 256; ++i) {  // 1 MB total => ~62ms at 16MB/s
    auto seg = (*dev)->AllocateSegment();
    ASSERT_TRUE(seg.ok());
    ASSERT_TRUE((*dev)->Write((*dev)->geometry().BaseOffset(*seg), data, IoClass::kOther).ok());
  }
  uint64_t elapsed_ms = (NowNanos() - start) / 1000000;
  EXPECT_GE(elapsed_ms, 40u);
}

}  // namespace
}  // namespace tebis
