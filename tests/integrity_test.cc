// PR 8 end-to-end integrity: checksummed segments, seeded corruption faults,
// background scrub, and epoch-fenced online repair from peer replicas.
//
// The tests walk the stack bottom-up: KvStore read-path verification and
// scrub/quarantine/repair, the Send-Index replication pair (backup heals from
// primary, primary heals from backup — byte-identical in primary space,
// §3.3), the cluster wire protocol (kRepairFetch / kRepairSegment, epoch
// fencing), the client's corruption failover, and a seeded RF=3 corruption
// chaos soak where every injected flip must be detected and healed online.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/cluster/client.h"
#include "src/cluster/coordinator.h"
#include "src/cluster/master.h"
#include "src/cluster/region_map.h"
#include "src/cluster/region_server.h"
#include "src/common/crc32.h"
#include "src/common/random.h"
#include "src/lsm/kv_store.h"
#include "src/lsm/manifest.h"
#include "src/net/fabric.h"
#include "src/net/rpc_client.h"
#include "src/net/worker_pool.h"
#include "src/replication/local_backup_channel.h"
#include "src/replication/primary_region.h"
#include "src/replication/replication_wire.h"
#include "src/replication/send_index_backup.h"
#include "src/storage/block_device.h"
#include "src/testing/fault_injector.h"

namespace tebis {
namespace {

constexpr uint64_t kSegmentSize = 1 << 16;

std::unique_ptr<BlockDevice> MakeDevice(const std::string& name = "") {
  BlockDeviceOptions opts;
  opts.segment_size = kSegmentSize;
  opts.max_segments = 1 << 16;
  opts.name = name;
  auto dev = BlockDevice::Create(opts);
  EXPECT_TRUE(dev.ok());
  return std::move(*dev);
}

KvStoreOptions SmallOptions() {
  KvStoreOptions opts;
  opts.l0_max_entries = 256;
  opts.growth_factor = 4;
  opts.max_levels = 3;
  return opts;
}

std::string Key(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key%010llu", static_cast<unsigned long long>(i));
  return buf;
}

std::string ValueFor(uint64_t i) { return "value-" + std::to_string(i); }

// Chaos runs are seeded from the environment for replay: failing seeds print
// in the test output and TEBIS_CHAOS_SEED pins them.
uint64_t ChaosSeed(uint64_t fallback) {
  const char* env = std::getenv("TEBIS_CHAOS_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return fallback;
}

// The deepest published level with at least one checksummed segment, or -1.
template <typename Engine>
int DeepestChecksummedLevel(const Engine& engine, int max_levels) {
  for (int level = max_levels - 1; level >= 1; --level) {
    const BuiltTree& tree = engine.level(level);
    if (!tree.segments.empty() && tree.checksummed()) {
      return level;
    }
  }
  return -1;
}

// Burns seeded bit flips into the checksummed prefix of one index segment.
// FlipBitsInRange fires on the device's *next* read, whatever it targets, so
// a 1-byte probe read triggers the burn deterministically.
void BurnFlipsIntoSegment(BlockDevice* device, FaultInjector* injector, const BuiltTree& tree,
                          size_t seg_index, int bits = 3) {
  ASSERT_LT(seg_index, tree.segments.size());
  ASSERT_TRUE(tree.checksummed());
  const SegmentChecksum& sc = tree.seg_checksums[seg_index];
  ASSERT_GT(sc.length, 0u);
  const uint64_t base = device->geometry().BaseOffset(tree.segments[seg_index]);
  injector->FlipBitsInRange(device->name(), base, sc.length, bits);
  char probe = 0;
  ASSERT_TRUE(device->Read(base, 1, &probe, IoClass::kOther).ok());
}

// --- KvStore: checksummed build -------------------------------------------

struct LoadedStore {
  std::unique_ptr<BlockDevice> device;
  std::unique_ptr<KvStore> store;
  std::map<std::string, std::string> model;
};

LoadedStore MakeLoadedStore(const std::string& device_name, FaultInjector* injector = nullptr,
                            int keys = 2000) {
  LoadedStore ls;
  ls.device = MakeDevice(device_name);
  if (injector != nullptr) {
    ls.device->set_fault_hook(injector);
  }
  auto store = KvStore::Create(ls.device.get(), SmallOptions());
  EXPECT_TRUE(store.ok());
  ls.store = std::move(*store);
  for (int i = 0; i < keys; ++i) {
    const std::string key = Key(i % (keys / 2));
    const std::string value = ValueFor(i);
    EXPECT_TRUE(ls.store->Put(key, value).ok());
    ls.model[key] = value;
  }
  EXPECT_TRUE(ls.store->FlushL0().ok());
  return ls;
}

TEST(IntegrityBuildTest, CompactionProducesChecksummedLevels) {
  auto ls = MakeLoadedStore("dev0");
  ASSERT_GT(ls.store->stats().compactions, 0u);
  const int level = DeepestChecksummedLevel(*ls.store, SmallOptions().max_levels);
  ASSERT_GE(level, 1) << "no checksummed level was published";
  const BuiltTree& tree = ls.store->level(level);
  ASSERT_EQ(tree.seg_checksums.size(), tree.segments.size());
  for (size_t i = 0; i < tree.segments.size(); ++i) {
    const SegmentChecksum& sc = tree.seg_checksums[i];
    EXPECT_GT(sc.length, 0u) << "segment " << i;
    EXPECT_LE(sc.length, kSegmentSize) << "segment " << i;
    // The recorded CRC matches a fresh read of the device bytes.
    std::string bytes(sc.length, 0);
    const uint64_t base = ls.device->geometry().BaseOffset(tree.segments[i]);
    ASSERT_TRUE(ls.device->Read(base, sc.length, bytes.data(), IoClass::kOther).ok());
    EXPECT_EQ(Crc32c(bytes.data(), bytes.size()), sc.crc) << "segment " << i;
  }
}

// --- KvStore: read-path detection + quarantine -----------------------------

TEST(IntegrityReadTest, ReadPathDetectsBitRotAndQuarantines) {
  FaultInjector injector;
  auto ls = MakeLoadedStore("dev0", &injector);
  const int level = DeepestChecksummedLevel(*ls.store, SmallOptions().max_levels);
  ASSERT_GE(level, 1);
  BurnFlipsIntoSegment(ls.device.get(), &injector, ls.store->level(level), 0);
  ASSERT_GE(injector.stats().corruptions, 1u);

  // Some read must walk the damaged segment: the first one to touch it fails
  // verification and quarantines the level; later reads of that level keep
  // failing without re-reading the device.
  std::string corrupt_key;
  for (const auto& [key, value] : ls.model) {
    auto got = ls.store->Get(key);
    if (!got.ok()) {
      ASSERT_TRUE(got.status().IsCorruption()) << key << ": " << got.status().ToString();
      corrupt_key = key;
      break;
    }
    EXPECT_EQ(*got, value) << key << " served wrong bytes instead of failing";
  }
  ASSERT_FALSE(corrupt_key.empty()) << "no read ever touched the rotten segment";
  EXPECT_EQ(ls.store->QuarantinedLevels(), std::vector<int>{level});
  EXPECT_GE(ls.store->stats().read_corruptions, 1u);
  EXPECT_EQ(ls.store->stats().quarantined_levels, 1u);
  // Quarantine is sticky: the same key keeps failing, never serves rot.
  EXPECT_TRUE(ls.store->Get(corrupt_key).status().IsCorruption());
  // Writes keep flowing while the level is quarantined (degraded, not down).
  EXPECT_TRUE(ls.store->Put("fresh-key", "fresh-value").ok());
  auto fresh = ls.store->Get("fresh-key");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(*fresh, "fresh-value");
}

TEST(IntegrityReadTest, ValueLogRotSurfacesAsReadCorruption) {
  FaultInjector injector;
  auto ls = MakeLoadedStore("dev0", &injector);
  const auto flushed = ls.store->value_log()->FlushedSegmentsSnapshot();
  ASSERT_FALSE(flushed.empty());
  // Rot every flushed log segment. A read whose value record fails its CRC
  // must answer kCorruption (naming device + offset) and bump the
  // kv.read_corruptions counter; a read whose *key compare* walked rotten
  // bytes may answer NotFound. What must never happen is serving wrong bytes.
  for (SegmentId seg : flushed) {
    const uint64_t base = ls.device->geometry().BaseOffset(seg);
    injector.FlipBitsInRange(ls.device->name(), base, kSegmentSize, /*bits=*/64);
    char probe = 0;
    ASSERT_TRUE(ls.device->Read(base, 1, &probe, IoClass::kOther).ok());
  }

  uint64_t corrupt_reads = 0;
  for (const auto& [key, value] : ls.model) {
    auto got = ls.store->Get(key);
    if (!got.ok()) {
      EXPECT_TRUE(got.status().IsCorruption() || got.status().IsNotFound())
          << key << ": " << got.status().ToString();
      if (got.status().IsCorruption()) {
        EXPECT_NE(got.status().ToString().find("dev0"), std::string::npos)
            << "corruption report must name the device: " << got.status().ToString();
        ++corrupt_reads;
      }
    } else {
      EXPECT_EQ(*got, value) << key << " served wrong bytes instead of failing";
    }
  }
  ASSERT_GT(corrupt_reads, 0u) << "no read landed in a rotten record";
  EXPECT_GE(ls.store->stats().read_corruptions, corrupt_reads);

  // The value-log scrub walk detects the rot too (the catch-all for damage
  // reads happen to dodge); the value log is not a level, so nothing
  // quarantines.
  KvStore::ScrubOptions options;
  options.include_value_log = true;
  auto report = ls.store->Scrub(options);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->corruptions_found, 1u);
}

// --- KvStore: scrub --------------------------------------------------------

TEST(IntegrityScrubTest, ScrubFindsSeededRotAndQuarantines) {
  FaultInjector injector;
  auto ls = MakeLoadedStore("dev0", &injector);
  const int level = DeepestChecksummedLevel(*ls.store, SmallOptions().max_levels);
  ASSERT_GE(level, 1);

  // A clean store scrubs clean.
  auto clean = ls.store->Scrub();
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->corruptions_found, 0u);
  EXPECT_GT(clean->bytes_scrubbed, 0u);
  EXPECT_TRUE(clean->quarantined_levels.empty());

  BurnFlipsIntoSegment(ls.device.get(), &injector, ls.store->level(level), 0);
  auto report = ls.store->Scrub();
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->corruptions_found, 1u);
  EXPECT_EQ(report->quarantined_levels, std::vector<int>{level});
  EXPECT_EQ(ls.store->QuarantinedLevels(), std::vector<int>{level});
  EXPECT_GE(ls.store->stats().corruptions_found, 1u);
  EXPECT_GT(ls.store->stats().scrub_bytes, clean->bytes_scrubbed);
  // Scrub reads are accounted to their own I/O class (observable pacing).
  EXPECT_GT(ls.device->stats().ReadBytes(IoClass::kScrub), 0u);
}

TEST(IntegrityScrubTest, ScheduledScrubRunsInBackground) {
  // Background scrubs ride the compaction WorkerPool as low-priority jobs.
  FaultInjector injector;
  auto device = MakeDevice("dev0");
  device->set_fault_hook(&injector);
  WorkerPool pool(2);
  pool.Start();
  KvStoreOptions opts = SmallOptions();
  opts.compaction_pool = &pool;
  auto store_or = KvStore::Create(device.get(), opts);
  ASSERT_TRUE(store_or.ok());
  auto store = std::move(*store_or);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(store->Put(Key(i % 1000), ValueFor(i)).ok());
  }
  ASSERT_TRUE(store->FlushL0().ok());
  const int level = DeepestChecksummedLevel(*store, SmallOptions().max_levels);
  ASSERT_GE(level, 1);
  BurnFlipsIntoSegment(device.get(), &injector, store->level(level), 0);

  std::promise<KvStore::ScrubReport> done;
  auto fut = done.get_future();
  ASSERT_TRUE(store
                  ->ScheduleScrub(KvStore::ScrubOptions(),
                                  [&](const StatusOr<KvStore::ScrubReport>& report) {
                                    ASSERT_TRUE(report.ok());
                                    done.set_value(*report);
                                  })
                  .ok());
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  EXPECT_GE(fut.get().corruptions_found, 1u);
  EXPECT_EQ(store->QuarantinedLevels(), std::vector<int>{level});
  store.reset();  // the store must drain before the pool stops
  pool.Stop();
}

TEST(IntegrityScrubTest, ScrubPacingThrottlesBandwidth) {
  auto ls = MakeLoadedStore("dev0");
  auto unpaced = ls.store->Scrub();
  ASSERT_TRUE(unpaced.ok());
  const uint64_t total = unpaced->bytes_scrubbed;
  ASSERT_GT(total, 0u);

  // Pace at ~4x-total-per-second: the scrub must take at least a significant
  // fraction of the ideal time (lower bound only — sanitizers only slow it).
  KvStore::ScrubOptions options;
  options.bytes_per_sec = total * 4;
  const auto begin = std::chrono::steady_clock::now();
  auto paced = ls.store->Scrub(options);
  const auto elapsed = std::chrono::steady_clock::now() - begin;
  ASSERT_TRUE(paced.ok());
  EXPECT_EQ(paced->bytes_scrubbed, total);
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 50);
}

// --- KvStore: online repair ------------------------------------------------

TEST(IntegrityRepairTest, OnlineRepairRestoresLevelFromFetchedBytes) {
  FaultInjector injector;
  auto ls = MakeLoadedStore("dev0", &injector);
  const int level = DeepestChecksummedLevel(*ls.store, SmallOptions().max_levels);
  ASSERT_GE(level, 1);
  const BuiltTree& tree = ls.store->level(level);

  // Stash every segment's good bytes first (the "healthy peer").
  std::map<size_t, std::string> good;
  for (size_t i = 0; i < tree.segments.size(); ++i) {
    auto bytes = ls.store->ReadLevelSegmentVerified(level, i);
    ASSERT_TRUE(bytes.ok()) << "segment " << i << ": " << bytes.status().ToString();
    good[i] = std::move(*bytes);
  }

  BurnFlipsIntoSegment(ls.device.get(), &injector, tree, 0);
  auto report = ls.store->Scrub();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->quarantined_levels, std::vector<int>{level});
  // The donor side refuses to serve rot.
  EXPECT_TRUE(ls.store->ReadLevelSegmentVerified(level, 0).status().IsCorruption());

  uint64_t fetches = 0;
  ASSERT_TRUE(ls.store
                  ->RepairQuarantinedLevels([&](int l, size_t seg) -> StatusOr<std::string> {
                    EXPECT_EQ(l, level);
                    ++fetches;
                    return good.at(seg);
                  })
                  .ok());
  EXPECT_GE(fetches, 1u);
  EXPECT_TRUE(ls.store->QuarantinedLevels().empty());
  EXPECT_GE(ls.store->stats().corruptions_repaired, 1u);
  EXPECT_GE(ls.store->stats().repair_fetches, fetches);
  EXPECT_EQ(ls.store->stats().quarantined_levels, 0u);
  for (const auto& [key, value] : ls.model) {
    auto got = ls.store->Get(key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    EXPECT_EQ(*got, value) << key;
  }
  // Zero residual rot.
  auto post = ls.store->Scrub();
  ASSERT_TRUE(post.ok());
  EXPECT_EQ(post->corruptions_found, 0u);
}

TEST(IntegrityRepairTest, RepairRejectsBytesThatFailTheExpectedCrc) {
  FaultInjector injector;
  auto ls = MakeLoadedStore("dev0", &injector);
  const int level = DeepestChecksummedLevel(*ls.store, SmallOptions().max_levels);
  ASSERT_GE(level, 1);
  BurnFlipsIntoSegment(ls.device.get(), &injector, ls.store->level(level), 0);
  ASSERT_TRUE(ls.store->Scrub().ok());
  ASSERT_FALSE(ls.store->QuarantinedLevels().empty());

  // A peer feeding garbage must not lift the quarantine.
  Status s = ls.store->RepairQuarantinedLevels(
      [&](int, size_t) -> StatusOr<std::string> { return std::string(512, 'z'); });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(ls.store->QuarantinedLevels(), std::vector<int>{level});
}

// --- seeded corruption faults ---------------------------------------------

TEST(IntegrityFaultTest, CorruptNthDeviceReadIsSeededAndReplayable) {
  // Two identically-seeded injectors driving the same operation sequence burn
  // the exact same flips — the replay contract chaos tests rely on.
  std::vector<std::string> histories;
  for (int run = 0; run < 2; ++run) {
    FaultInjector injector(/*seed=*/1234);
    auto dev = MakeDevice("dev0");
    dev->set_fault_hook(&injector);
    auto seg = dev->AllocateSegment();
    ASSERT_TRUE(seg.ok());
    const uint64_t base = dev->geometry().BaseOffset(*seg);
    std::string data(1024, 'd');
    ASSERT_TRUE(dev->Write(base, Slice(data), IoClass::kOther).ok());
    // Aim at the next read via the device's transfer counter.
    injector.CorruptNthDeviceRead("dev0", dev->read_seq(), /*bits=*/4);
    std::string out(1024, 0);
    ASSERT_TRUE(dev->Read(base, out.size(), out.data(), IoClass::kOther).ok());
    EXPECT_NE(out, data) << "the read that burned the flips must observe them";
    EXPECT_EQ(injector.stats().corruptions, 4u);
    ASSERT_EQ(injector.history().size(), 1u);
    histories.push_back(injector.history()[0].detail);
  }
  EXPECT_EQ(histories[0], histories[1]);
}

// --- manifest compatibility ------------------------------------------------

TEST(IntegrityManifestTest, V3ManifestStillOpensWithoutChecksums) {
  Manifest m;
  m.levels.resize(3);
  m.levels[1].root_offset = 0x40;
  m.levels[1].height = 2;
  m.levels[1].num_entries = 100;
  m.levels[1].segments = {7, 8};
  m.levels[1].seg_checksums = {{0xdead, 512}, {0xbeef, 1024}};
  m.level_crcs = {0, 0x1234, 0};
  m.log_flushed_segments = {3, 4, 5};
  m.l0_replay_from = 1;

  // v4 round-trips the per-segment checksums.
  auto v4 = Manifest::Decode(m.Encode());
  ASSERT_TRUE(v4.ok());
  ASSERT_EQ(v4->levels[1].seg_checksums.size(), 2u);
  EXPECT_EQ(v4->levels[1].seg_checksums[0].crc, 0xdeadu);
  EXPECT_EQ(v4->levels[1].seg_checksums[1].length, 1024u);
  EXPECT_TRUE(v4->levels[1].checksummed());

  // A v3 (pre-checksum) manifest still decodes: same trees, no checksums —
  // the read path falls back to structural checks until the next compaction.
  auto v3 = Manifest::Decode(m.Encode(/*version=*/3));
  ASSERT_TRUE(v3.ok()) << v3.status().ToString();
  EXPECT_EQ(v3->levels[1].segments, (std::vector<SegmentId>{7, 8}));
  EXPECT_EQ(v3->levels[1].num_entries, 100u);
  EXPECT_TRUE(v3->levels[1].seg_checksums.empty());
  EXPECT_FALSE(v3->levels[1].checksummed());
  EXPECT_EQ(v3->log_flushed_segments, m.log_flushed_segments);

  // Bit flips anywhere in a v4 image are caught by the manifest's own CRC.
  const std::string encoded = m.Encode();
  Random rng(99);
  for (int i = 0; i < 64; ++i) {
    std::string mangled = encoded;
    mangled[rng.Uniform(mangled.size())] ^= static_cast<char>(1u << rng.Uniform(8));
    auto decoded = Manifest::Decode(mangled);
    if (mangled != encoded) {
      EXPECT_FALSE(decoded.ok()) << "flip " << i << " accepted";
    }
  }
}

// --- crash during repair ---------------------------------------------------

TEST(IntegrityCrashTest, CrashDuringRepairRecoversIdempotently) {
  // Extends the PR 1 crash-point matrix: the machine dies on the repair's
  // first segment rewrite. The snapshot still has the rotten level on flash;
  // recovery must detect it (level CRC mismatch) and come back serving every
  // checkpointed record — and the live store's finished repair must be clean.
  FaultInjector injector;
  auto ls = MakeLoadedStore("dev0", &injector);
  ASSERT_TRUE(ls.store->value_log()->FlushTail().ok());
  auto checkpoint = ls.store->Checkpoint();
  ASSERT_TRUE(checkpoint.ok());
  const int level = DeepestChecksummedLevel(*ls.store, SmallOptions().max_levels);
  ASSERT_GE(level, 1);
  const BuiltTree& tree = ls.store->level(level);

  std::map<size_t, std::string> good;
  for (size_t i = 0; i < tree.segments.size(); ++i) {
    auto bytes = ls.store->ReadLevelSegmentVerified(level, i);
    ASSERT_TRUE(bytes.ok());
    good[i] = std::move(*bytes);
  }
  BurnFlipsIntoSegment(ls.device.get(), &injector, tree, 0);
  ASSERT_TRUE(ls.store->Scrub().ok());
  ASSERT_EQ(ls.store->QuarantinedLevels(), std::vector<int>{level});

  // Crash at the repair's next device write (the segment rewrite).
  const uint64_t next_write = injector.stats().seen[static_cast<int>(FaultSite::kDeviceWrite)];
  injector.ArmCrashSnapshot("dev0", next_write);
  ASSERT_TRUE(ls.store
                  ->RepairQuarantinedLevels(
                      [&](int, size_t seg) -> StatusOr<std::string> { return good.at(seg); })
                  .ok());
  std::unique_ptr<BlockDevice> snapshot = ls.device->TakeCrashSnapshot();
  ASSERT_NE(snapshot, nullptr);

  // The live store completed the repair: clean scrub, all data served.
  EXPECT_TRUE(ls.store->QuarantinedLevels().empty());
  auto post = ls.store->Scrub();
  ASSERT_TRUE(post.ok());
  EXPECT_EQ(post->corruptions_found, 0u);

  // The crashed image recovers: the level CRC mismatch is detected and the
  // level rebuilt from the value log, so recovery is repair-idempotent.
  auto recovered = KvStore::Recover(snapshot.get(), SmallOptions(), *checkpoint);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  for (const auto& [key, value] : ls.model) {
    auto got = (*recovered)->Get(key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    EXPECT_EQ(*got, value) << key;
  }
  EXPECT_TRUE((*recovered)->QuarantinedLevels().empty());
  auto rescrub = (*recovered)->Scrub();
  ASSERT_TRUE(rescrub.ok());
  EXPECT_EQ(rescrub->corruptions_found, 0u);
}

// --- Send-Index replication pair ------------------------------------------

struct SendIndexCluster {
  std::unique_ptr<Fabric> fabric = std::make_unique<Fabric>();
  std::unique_ptr<BlockDevice> primary_device;
  std::vector<std::unique_ptr<BlockDevice>> backup_devices;
  std::unique_ptr<PrimaryRegion> primary;
  std::vector<std::unique_ptr<SendIndexBackupRegion>> backups;
  std::vector<std::shared_ptr<RegisteredBuffer>> buffers;
};

SendIndexCluster MakeSendIndexCluster(int num_backups, KvStoreOptions opts,
                                      FaultInjector* injector = nullptr) {
  SendIndexCluster c;
  c.primary_device = MakeDevice("primary-dev");
  if (injector != nullptr) {
    c.primary_device->set_fault_hook(injector);
  }
  auto primary = PrimaryRegion::Create(c.primary_device.get(), opts, ReplicationMode::kSendIndex);
  EXPECT_TRUE(primary.ok());
  c.primary = std::move(*primary);
  for (int i = 0; i < num_backups; ++i) {
    c.backup_devices.push_back(MakeDevice("backup-dev" + std::to_string(i)));
    if (injector != nullptr) {
      c.backup_devices.back()->set_fault_hook(injector);
    }
    auto buffer =
        c.fabric->RegisterBuffer("backup" + std::to_string(i), "primary0", kSegmentSize);
    c.buffers.push_back(buffer);
    auto backup = SendIndexBackupRegion::Create(c.backup_devices.back().get(), opts, buffer);
    EXPECT_TRUE(backup.ok());
    c.backups.push_back(std::move(*backup));
    c.primary->AddBackup(std::make_unique<LocalBackupChannel>(
        c.fabric.get(), "primary0", buffer, c.backups.back().get(), nullptr));
  }
  return c;
}

std::map<std::string, std::string> LoadCluster(SendIndexCluster* cluster, int n = 3000,
                                               int key_space = 800) {
  std::map<std::string, std::string> model;
  for (int i = 0; i < n; ++i) {
    const std::string key = Key(i % key_space);
    const std::string value = "v" + std::to_string(i);
    EXPECT_TRUE(cluster->primary->Put(key, value).ok());
    model[key] = value;
  }
  EXPECT_TRUE(cluster->primary->FlushL0().ok());
  return model;
}

TEST(IntegrityShipTest, BackupRejectsMangledShippedSegment) {
  auto cluster = MakeSendIndexCluster(1, SmallOptions());
  auto* backup = cluster.backups[0].get();
  ASSERT_TRUE(backup->HandleCompactionBegin(/*compaction_id=*/1, 0, 1).ok());
  // Bytes mangled in flight: the wire CRC does not match the payload. The
  // backup must reject before rewriting a single pointer.
  const std::string garbage(2048, 'g');
  const uint32_t crc_of_other_bytes = Crc32c("not the payload", 15);
  Status s = backup->HandleIndexSegment(/*compaction_id=*/1, /*dst_level=*/1,
                                        /*tree_level=*/0, /*primary_segment=*/7,
                                        Slice(garbage), /*stream=*/0, crc_of_other_bytes);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_EQ(backup->stats().segments_crc_rejected, 1u);
  // With a matching CRC the wire check passes; the same bytes now fail the
  // *structural* rewrite instead — a different guard, so the CRC-rejection
  // counter must not move.
  Status structural = backup->HandleIndexSegment(1, 1, 0, 7, Slice(garbage), 0,
                                                 Crc32c(garbage.data(), garbage.size()));
  EXPECT_FALSE(structural.ok());
  EXPECT_EQ(backup->stats().segments_crc_rejected, 1u);
}

TEST(IntegrityShipTest, ShippedLevelsAreChecksummedOnTheBackup) {
  auto cluster = MakeSendIndexCluster(1, SmallOptions());
  LoadCluster(&cluster);
  ASSERT_GT(cluster.primary->store()->stats().compactions, 0u);
  const int level =
      DeepestChecksummedLevel(*cluster.backups[0], SmallOptions().max_levels);
  ASSERT_GE(level, 1) << "backup installed no checksummed level";
  const BuiltTree& local = cluster.backups[0]->level(level);
  const BuiltTree& primary = cluster.primary->store()->level(level);
  // Same shape, different spaces: the backup's checksums cover its *local*
  // bytes; the primary's cover primary-space bytes.
  ASSERT_EQ(local.segments.size(), primary.segments.size());
  ASSERT_EQ(local.seg_checksums.size(), local.segments.size());
}

TEST(IntegrityShipTest, BackupScrubsAndRepairsFromPrimary) {
  FaultInjector injector(ChaosSeed(7));
  auto cluster = MakeSendIndexCluster(2, SmallOptions(), &injector);
  auto model = LoadCluster(&cluster);
  auto* backup = cluster.backups[0].get();
  const int level = DeepestChecksummedLevel(*backup, SmallOptions().max_levels);
  ASSERT_GE(level, 1);

  BurnFlipsIntoSegment(cluster.backup_devices[0].get(), &injector, backup->level(level), 0);
  auto report = backup->Scrub();
  ASSERT_TRUE(report.ok());
  ASSERT_GE(report->corruptions_found, 1u);
  ASSERT_EQ(backup->QuarantinedLevels(), std::vector<int>{level});
  // Reads of the quarantined level fail loudly instead of serving rot.
  bool saw_corruption = false;
  for (const auto& [key, value] : model) {
    auto got = backup->DebugGet(key);
    if (!got.ok()) {
      ASSERT_TRUE(got.status().IsCorruption()) << key << ": " << got.status().ToString();
      saw_corruption = true;
      break;
    }
    ASSERT_EQ(*got, value) << key;
  }
  EXPECT_TRUE(saw_corruption);

  // Heal from the primary: the fetcher returns PRIMARY-space bytes (§3.3
  // byte-identity makes replicas interchangeable donors); the backup rewrites
  // them into local space and re-verifies against its local checksum.
  ASSERT_TRUE(backup
                  ->RepairQuarantinedLevels([&](int l, size_t seg) -> StatusOr<std::string> {
                    return cluster.primary->store()->ReadLevelSegmentVerified(l, seg);
                  })
                  .ok());
  EXPECT_TRUE(backup->QuarantinedLevels().empty());
  EXPECT_GE(backup->stats().corruptions_repaired, 1u);
  EXPECT_GE(backup->stats().repair_fetches, 1u);
  for (const auto& [key, value] : model) {
    auto got = backup->DebugGet(key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    EXPECT_EQ(*got, value) << key;
  }
  auto post = backup->Scrub();
  ASSERT_TRUE(post.ok());
  EXPECT_EQ(post->corruptions_found, 0u);

  // Round two: heal from the *other backup* — a peer replica serves the
  // repair fetch by inverting its own rewrite back into primary space.
  BurnFlipsIntoSegment(cluster.backup_devices[0].get(), &injector, backup->level(level), 0);
  ASSERT_TRUE(backup->Scrub().ok());
  ASSERT_EQ(backup->QuarantinedLevels(), std::vector<int>{level});
  auto* donor = cluster.backups[1].get();
  ASSERT_TRUE(backup
                  ->RepairQuarantinedLevels([&](int l, size_t seg) -> StatusOr<std::string> {
                    return donor->ServeRepairFetch(l, seg);
                  })
                  .ok());
  EXPECT_TRUE(backup->QuarantinedLevels().empty());
  EXPECT_GE(donor->stats().repair_serves, 1u);
  for (const auto& [key, value] : model) {
    auto got = backup->DebugGet(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, value) << key;
  }
}

TEST(IntegrityShipTest, PrimaryRepairsFromBackupReplica) {
  FaultInjector injector(ChaosSeed(11));
  auto cluster = MakeSendIndexCluster(1, SmallOptions(), &injector);
  auto model = LoadCluster(&cluster);
  KvStore* store = cluster.primary->store();
  const int level = DeepestChecksummedLevel(*store, SmallOptions().max_levels);
  ASSERT_GE(level, 1);

  BurnFlipsIntoSegment(cluster.primary_device.get(), &injector, store->level(level), 0);
  auto report = store->Scrub();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->quarantined_levels, std::vector<int>{level});

  // The backup re-derives primary-space bytes by inverting its rewrite; the
  // primary installs them verbatim after checking the expected CRC.
  ASSERT_TRUE(store
                  ->RepairQuarantinedLevels([&](int l, size_t seg) -> StatusOr<std::string> {
                    return cluster.backups[0]->ServeRepairFetch(l, seg);
                  })
                  .ok());
  EXPECT_TRUE(store->QuarantinedLevels().empty());
  EXPECT_GE(cluster.backups[0]->stats().repair_serves, 1u);
  for (const auto& [key, value] : model) {
    auto got = cluster.primary->Get(key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    EXPECT_EQ(*got, value) << key;
  }
  auto post = store->Scrub();
  ASSERT_TRUE(post.ok());
  EXPECT_EQ(post->corruptions_found, 0u);
}

// --- cluster wire protocol -------------------------------------------------

struct WireCluster {
  Fabric fabric;
  Coordinator zk;
  std::vector<std::string> names;
  std::vector<std::unique_ptr<RegionServer>> servers;
  std::map<std::string, RegionServer*> directory;
  std::unique_ptr<Master> master;
  RegionMap map;

  explicit WireCluster(FaultInjector* injector = nullptr, int replication_factor = 3) {
    RegionServerOptions options;
    options.device_options.segment_size = kSegmentSize;
    options.device_options.max_segments = 1 << 16;
    options.kv_options.l0_max_entries = 256;
    options.replication_mode = ReplicationMode::kSendIndex;
    for (int i = 0; i < 3; ++i) {
      names.push_back("server" + std::to_string(i));
      options.device_options.name = names.back() + "-dev";
      servers.push_back(std::make_unique<RegionServer>(&fabric, &zk, names.back(), options));
      EXPECT_TRUE(servers.back()->Start().ok());
      if (injector != nullptr) {
        servers.back()->device()->set_fault_hook(injector);
      }
      directory[names.back()] = servers.back().get();
    }
    master = std::make_unique<Master>(&zk, "m0", directory);
    EXPECT_TRUE(master->Campaign().ok());
    auto created = RegionMap::CreateUniform(2, "user", 10, 4000, names, replication_factor);
    EXPECT_TRUE(created.ok());
    map = *created;
    EXPECT_TRUE(master->Bootstrap(map).ok());
  }

  ~WireCluster() {
    for (auto& server : servers) {
      server->Stop();
    }
  }

  std::unique_ptr<TebisClient> MakeClient(const std::string& name) {
    auto client = std::make_unique<TebisClient>(
        &fabric, name,
        [this](const std::string& server) -> ServerEndpoint* {
          auto it = directory.find(server);
          return it == directory.end() ? nullptr : it->second->client_endpoint();
        },
        names);
    EXPECT_TRUE(client->Connect().ok());
    return client;
  }

  RegionServer* Server(const std::string& name) { return directory.at(name); }
};

// Quarantines one level of `server`'s replica of `region_id` by burning a
// flip into the first index-segment read of a value-log-free scrub.
void QuarantineViaScrub(WireCluster* cluster, FaultInjector* injector, RegionServer* server,
                        uint32_t region_id) {
  KvStore::ScrubOptions index_only;
  index_only.include_value_log = false;
  // The scrub's own first read both burns and observes the flip (the device
  // applies image flips before copying out), so one pass detects it.
  injector->CorruptNthDeviceRead(server->device()->name(), server->device()->read_seq(),
                                 /*bits=*/3);
  auto report = server->ScrubRegion(region_id, index_only);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_GE(report->corruptions_found, 1u) << "scrub read no index segments";
  auto quarantined = server->QuarantinedLevels(region_id);
  ASSERT_TRUE(quarantined.ok());
  ASSERT_FALSE(quarantined->empty());
}

TEST(IntegrityWireTest, RepairRegionHealsQuarantinedBackupOverTheWire) {
  FaultInjector injector(ChaosSeed(13));
  WireCluster cluster(&injector);
  auto client = cluster.MakeClient("loader");
  std::map<std::string, std::string> model;
  for (int i = 0; i < 3000; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "user%010d", i % 1500);
    const std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(client->Put(key, value).ok());
    model[key] = value;
  }

  // Pick a region whose backup has published index levels to corrupt.
  const RegionInfo* victim_region = nullptr;
  RegionServer* victim = nullptr;
  KvStore::ScrubOptions index_only;
  index_only.include_value_log = false;
  for (const RegionInfo& region : cluster.map.regions()) {
    for (const std::string& backup : region.backups) {
      auto report = cluster.Server(backup)->ScrubRegion(region.region_id, index_only);
      if (report.ok() && report->bytes_scrubbed > 0) {
        victim_region = &region;
        victim = cluster.Server(backup);
        break;
      }
    }
    if (victim != nullptr) {
      break;
    }
  }
  ASSERT_NE(victim, nullptr) << "no backup has index levels — load more data";

  QuarantineViaScrub(&cluster, &injector, victim, victim_region->region_id);

  // Online repair over kRepairFetch/kRepairSegment from the region's primary.
  RegionServer* donor = cluster.Server(victim_region->primary);
  ASSERT_TRUE(victim->RepairRegion(victim_region->region_id, donor).ok());
  auto healed = victim->QuarantinedLevels(victim_region->region_id);
  ASSERT_TRUE(healed.ok());
  EXPECT_TRUE(healed->empty());
  EXPECT_GT(victim->telemetry()->Snapshot().Sum("integrity.repair_fetches"), 0u);

  // Zero residual rot on the healed replica; every key still reads clean.
  auto post = victim->ScrubRegion(victim_region->region_id, index_only);
  ASSERT_TRUE(post.ok());
  EXPECT_EQ(post->corruptions_found, 0u);
  for (const auto& [key, value] : model) {
    auto got = client->Get(key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    EXPECT_EQ(*got, value) << key;
  }
}

TEST(IntegrityWireTest, RepairFetchIsEpochFenced) {
  WireCluster cluster;
  auto client = cluster.MakeClient("loader");
  for (int i = 0; i < 2000; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "user%010d", i);
    ASSERT_TRUE(client->Put(key, "v").ok());
  }
  const RegionInfo& region = cluster.map.regions().front();
  RegionServer* primary = cluster.Server(region.primary);

  // A requester at the wrong configuration generation is refused: a stale
  // donor must never feed bytes into a newer epoch, and vice versa.
  RpcClient rpc(&cluster.fabric, "fence-probe", primary->replication_endpoint(),
                kSegmentSize * 4);
  RepairFetchMsg stale{/*epoch=*/999, /*level=*/1, /*seg_index=*/0};
  auto reply = rpc.Call(MessageType::kRepairFetch, region.region_id,
                        EncodeRepairFetch(stale), kSegmentSize * 2);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_NE(reply->header.flags & kFlagError, 0);
  EXPECT_EQ(reply->payload.rfind("FailedPrecondition", 0), 0u)
      << "fence must surface as FailedPrecondition, got: " << reply->payload;

  // The correct epoch is served (level 1 exists after this much data).
  RepairFetchMsg fresh{region.epoch, /*level=*/1, /*seg_index=*/0};
  auto good = rpc.Call(MessageType::kRepairFetch, region.region_id, EncodeRepairFetch(fresh),
                       kSegmentSize * 2);
  ASSERT_TRUE(good.ok());
  if ((good->header.flags & kFlagError) == 0) {
    RepairSegmentMsg seg{};
    ASSERT_TRUE(DecodeRepairSegment(good->payload, &seg).ok());
    EXPECT_EQ(seg.level, 1u);
    EXPECT_EQ(Crc32c(seg.data.data(), seg.data.size()), seg.crc);
  }
}

TEST(IntegrityClientTest, ClientRetriesCorruptReadOnReplica) {
  FaultInjector injector(ChaosSeed(17));
  WireCluster cluster(&injector);
  auto client = cluster.MakeClient("loader");
  std::map<std::string, std::string> model;
  for (int i = 0; i < 3000; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "user%010d", i % 1500);
    const std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(client->Put(key, value).ok());
    model[key] = value;
  }

  // Quarantine a level on some region's PRIMARY. Reads of that level now
  // answer kCorruption — the client must fail over to a leased replica.
  const RegionInfo* victim_region = nullptr;
  KvStore::ScrubOptions index_only;
  index_only.include_value_log = false;
  for (const RegionInfo& region : cluster.map.regions()) {
    auto report = cluster.Server(region.primary)->ScrubRegion(region.region_id, index_only);
    if (report.ok() && report->bytes_scrubbed > 0 && !region.read_leases.empty()) {
      victim_region = &region;
      break;
    }
  }
  ASSERT_NE(victim_region, nullptr);
  QuarantineViaScrub(&cluster, &injector, cluster.Server(victim_region->primary),
                     victim_region->region_id);

  // Every read still succeeds — corrupt replies reroute, they never surface
  // as wrong bytes or client-visible errors.
  auto reader = cluster.MakeClient("reader");
  for (const auto& [key, value] : model) {
    auto got = reader->Get(key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    ASSERT_EQ(*got, value) << key;
  }
  EXPECT_GE(reader->stats().corruption_retries, 1u)
      << "no read ever touched the quarantined level";

  // Heal the primary from any backup and the rerouting stops being needed.
  RegionServer* primary = cluster.Server(victim_region->primary);
  RegionServer* donor = cluster.Server(victim_region->backups.front());
  ASSERT_TRUE(primary->RepairRegion(victim_region->region_id, donor).ok());
  auto healed = primary->QuarantinedLevels(victim_region->region_id);
  ASSERT_TRUE(healed.ok());
  EXPECT_TRUE(healed->empty());
}

// --- RF=3 seeded corruption chaos soak ------------------------------------

TEST(IntegrityChaosTest, CorruptionSoakDetectsAndHealsEveryInjectedFlip) {
  const uint64_t seed = ChaosSeed(23);
  SCOPED_TRACE("seed=" + std::to_string(seed) + " — replay with TEBIS_CHAOS_SEED=" +
               std::to_string(seed));
  FaultInjector injector(seed);
  Random rng(seed);
  auto cluster = MakeSendIndexCluster(2, SmallOptions(), &injector);

  std::map<std::string, std::string> model;
  uint64_t version = 0;
  auto put_batch = [&](int n) {
    for (int i = 0; i < n; ++i) {
      const std::string key = Key(rng.Uniform(600));
      const std::string value = "v" + std::to_string(++version);
      ASSERT_TRUE(cluster.primary->Put(key, value).ok());
      model[key] = value;
    }
  };
  put_batch(3000);
  ASSERT_TRUE(cluster.primary->FlushL0().ok());

  // Replica r: 0 = primary, 1..2 = backups. All three must end byte-clean.
  auto engine_level = [&](int r) {
    return r == 0
               ? DeepestChecksummedLevel(*cluster.primary->store(), SmallOptions().max_levels)
               : DeepestChecksummedLevel(*cluster.backups[r - 1], SmallOptions().max_levels);
  };
  auto engine_tree = [&](int r, int level) -> const BuiltTree& {
    return r == 0 ? cluster.primary->store()->level(level)
                  : cluster.backups[r - 1]->level(level);
  };
  auto engine_device = [&](int r) {
    return r == 0 ? cluster.primary_device.get() : cluster.backup_devices[r - 1].get();
  };

  constexpr int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    // Puts keep flowing while rot appears and is healed.
    put_batch(200);
    const int victim = static_cast<int>(rng.Uniform(3));
    const int level = engine_level(victim);
    ASSERT_GE(level, 1);
    const BuiltTree& tree = engine_tree(victim, level);
    const size_t seg = rng.Uniform(tree.segments.size());
    BurnFlipsIntoSegment(engine_device(victim), &injector, tree, seg,
                         /*bits=*/1 + static_cast<int>(rng.Uniform(4)));

    if (victim == 0) {
      // Primary: the scrub detects, a seeded backup donates over ServeRepairFetch.
      auto report = cluster.primary->store()->Scrub();
      ASSERT_TRUE(report.ok());
      ASSERT_GE(report->corruptions_found, 1u);
      auto* donor = cluster.backups[rng.Uniform(2)].get();
      ASSERT_TRUE(cluster.primary->store()
                      ->RepairQuarantinedLevels(
                          [&](int l, size_t s) -> StatusOr<std::string> {
                            return donor->ServeRepairFetch(l, s);
                          })
                      .ok());
      ASSERT_TRUE(cluster.primary->store()->QuarantinedLevels().empty());
    } else {
      auto* hurt = cluster.backups[victim - 1].get();
      auto report = hurt->Scrub();
      ASSERT_TRUE(report.ok());
      ASSERT_GE(report->corruptions_found, 1u);
      // Donor by seed: the primary or the other backup — §3.3 byte-identity
      // in primary space makes them interchangeable.
      const bool from_primary = rng.Uniform(2) == 0;
      auto* other = cluster.backups[2 - victim].get();
      ASSERT_TRUE(hurt->RepairQuarantinedLevels(
                          [&](int l, size_t s) -> StatusOr<std::string> {
                            return from_primary
                                       ? cluster.primary->store()->ReadLevelSegmentVerified(l, s)
                                       : other->ServeRepairFetch(l, s);
                          })
                      .ok());
      ASSERT_TRUE(hurt->QuarantinedLevels().empty());
    }

    // Spot reads after the heal: correct bytes or nothing, never rot.
    int probes = 0;
    for (const auto& [key, value] : model) {
      if (++probes > 50) {
        break;
      }
      auto got = cluster.primary->Get(key);
      ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
      ASSERT_EQ(*got, value) << key;
    }
  }

  // Soak over: every injected flip was burned (and therefore detected above —
  // each round asserted corruptions_found >= 1 and a clean quarantine list).
  ASSERT_GT(injector.stats().corruptions, 0u);

  // Post-soak: stop injecting and require zero residual rot everywhere.
  injector.ClearRules();
  ASSERT_TRUE(cluster.primary->FlushL0().ok());
  auto primary_scrub = cluster.primary->store()->Scrub();
  ASSERT_TRUE(primary_scrub.ok());
  EXPECT_EQ(primary_scrub->corruptions_found, 0u);
  for (auto& backup : cluster.backups) {
    auto scrub = backup->Scrub();
    ASSERT_TRUE(scrub.ok());
    EXPECT_EQ(scrub->corruptions_found, 0u);
    EXPECT_TRUE(backup->QuarantinedLevels().empty());
  }
  // Full model check on every replica: no client-visible read ever returns
  // corrupt bytes, on the primary or on either backup.
  for (const auto& [key, value] : model) {
    auto got = cluster.primary->Get(key);
    ASSERT_TRUE(got.ok()) << key;
    ASSERT_EQ(*got, value) << key;
    for (auto& backup : cluster.backups) {
      auto replica = backup->DebugGet(key);
      ASSERT_TRUE(replica.ok()) << key << ": " << replica.status().ToString();
      ASSERT_EQ(*replica, value) << key;
    }
  }
}

}  // namespace
}  // namespace tebis
