// Unified telemetry plane (PR 5): registry snapshot consistency under
// concurrent shipping streams, trace-id propagation primary -> backup across
// a SimCluster compaction, span ring-buffer eviction order, the scrape RPC,
// and the chaos case — a fenced stale primary shows up in scrapes as
// repl.fence_errors / backup.epoch_rejected.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/cluster/client.h"
#include "src/cluster/coordinator.h"
#include "src/cluster/master.h"
#include "src/cluster/region_server.h"
#include "src/replication/local_backup_channel.h"
#include "src/replication/primary_region.h"
#include "src/replication/send_index_backup.h"
#include "src/storage/block_device.h"
#include "src/telemetry/telemetry.h"
#include "src/ycsb/sim_cluster.h"

namespace tebis {
namespace {

std::string Key(int i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "user%010d", i);
  return buf;
}

// --- registry ------------------------------------------------------------------

TEST(MetricsRegistryTest, SameNameAndLabelsResolveToOneInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("kv.puts", {{"node", "s0"}, {"role", "primary"}});
  // Label order must not matter: the registry canonicalizes.
  Counter* b = registry.GetCounter("kv.puts", {{"role", "primary"}, {"node", "s0"}});
  EXPECT_EQ(a, b);
  // A different label set is a different instrument.
  Counter* c = registry.GetCounter("kv.puts", {{"node", "s1"}, {"role", "primary"}});
  EXPECT_NE(a, c);
  a->Add(3);
  c->Add(4);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Sum("kv.puts"), 7u);
  EXPECT_EQ(snap.Sum("kv.puts", "node", "s0"), 3u);
  EXPECT_EQ(snap.Sum("kv.puts", "node", "s1"), 4u);
}

TEST(MetricsRegistryTest, GaugeAndHistogramInstruments) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("repl.credits_in_flight", {{"backup", "b0"}});
  gauge->Set(10);
  gauge->Add(-3);
  gauge->SetMax(5);  // below current: no-op
  EXPECT_EQ(gauge->Value(), 7);
  gauge->SetMax(20);
  EXPECT_EQ(gauge->Value(), 20);

  HistogramInstrument* hist = registry.GetHistogram("kv.compaction_duration_ns");
  for (int i = 1; i <= 100; ++i) {
    hist->Record(static_cast<uint64_t>(i) * 1000);
  }
  MetricsSnapshot snap = registry.Snapshot();
  const MetricSample* sample = snap.Find("kv.compaction_duration_ns");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->kind, InstrumentKind::kHistogram);
  EXPECT_EQ(sample->histogram.count(), 100u);
  const MetricSample* g = snap.Find("repl.credits_in_flight", "backup", "b0");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->value, 20);
}

TEST(MetricsRegistryTest, SnapshotConsistentUnderConcurrentWriters) {
  // Writers hammer instruments while a reader snapshots: every snapshot value
  // must be monotonically non-decreasing (counters never go backwards or tear)
  // and the final walk must account for every increment exactly once.
  MetricsRegistry registry;
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 50000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&registry, w] {
      Counter* mine = registry.GetCounter("test.ops", {{"writer", std::to_string(w)}});
      Counter* shared = registry.GetCounter("test.shared_ops");
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        mine->Increment();
        shared->Increment();
      }
    });
  }
  uint64_t last_total = 0;
  while (!stop.load(std::memory_order_acquire)) {
    MetricsSnapshot snap = registry.Snapshot();
    const uint64_t total = snap.Sum("test.ops");
    EXPECT_GE(total, last_total);
    EXPECT_LE(total, kWriters * kPerWriter);
    // Per-instrument atomicity: the shared counter obeys the same bounds.
    EXPECT_LE(snap.Sum("test.shared_ops"), kWriters * kPerWriter);
    last_total = total;
    if (total == kWriters * kPerWriter) {
      stop.store(true, std::memory_order_release);
    }
  }
  for (auto& writer : writers) {
    writer.join();
  }
  MetricsSnapshot final_snap = registry.Snapshot();
  EXPECT_EQ(final_snap.Sum("test.ops"), kWriters * kPerWriter);
  EXPECT_EQ(final_snap.Sum("test.shared_ops"), kWriters * kPerWriter);
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_EQ(final_snap.Sum("test.ops", "writer", std::to_string(w)), kPerWriter);
  }
}

// --- span ring buffer ----------------------------------------------------------

SpanRecord MakeSpan(uint64_t i) {
  SpanRecord span;
  span.trace = MakeTraceId(0, static_cast<uint32_t>(i));
  span.compaction_id = i;
  span.name = "claim";
  span.node = "n";
  span.start_ns = i * 100;
  span.end_ns = i * 100 + 10;
  return span;
}

TEST(TraceBufferTest, EvictsOldestFirst) {
  TraceBuffer buffer(4);
  ASSERT_TRUE(buffer.enabled());
  for (uint64_t i = 0; i < 10; ++i) {
    buffer.Record(MakeSpan(i));
  }
  std::vector<SpanRecord> spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // The oldest six were overwritten; survivors come out oldest-first.
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].compaction_id, 6 + i);
  }
  EXPECT_EQ(buffer.dropped(), 6u);
}

TEST(TraceBufferTest, ZeroCapacityDisablesRecording) {
  TraceBuffer buffer(0);
  EXPECT_FALSE(buffer.enabled());
  buffer.Record(MakeSpan(1));
  EXPECT_TRUE(buffer.Snapshot().empty());
  EXPECT_EQ(buffer.dropped(), 0u);
}

// --- SimCluster: snapshot vs legacy structs, trace propagation -----------------

SimClusterOptions SmallClusterOptions(int regions, int workers) {
  SimClusterOptions options;
  options.num_servers = 3;
  options.num_regions = regions;
  options.replication_factor = 3;
  options.mode = ReplicationMode::kSendIndex;
  options.compaction_workers = workers;
  options.kv_options.l0_max_entries = 128;
  options.kv_options.growth_factor = 4;
  options.kv_options.max_levels = 3;
  options.device_options.segment_size = 1 << 16;
  options.device_options.max_segments = 1 << 14;
  options.key_space = 1ull << 32;
  return options;
}

TEST(SimClusterTelemetryTest, RegistryTotalsMatchLegacyStructsUnderConcurrentStreams) {
  // Multiple regions + background workers = concurrent shipping streams all
  // updating the shared plane. After the run drains, the registry totals must
  // equal the legacy per-object struct views exactly: no counter lost to the
  // migration, none double-counted.
  auto cluster_or = SimCluster::Create(SmallClusterOptions(/*regions=*/4, /*workers=*/2));
  ASSERT_TRUE(cluster_or.ok()) << cluster_or.status().ToString();
  auto cluster = std::move(*cluster_or);
  constexpr int kPuts = 2000;
  for (int i = 0; i < kPuts; ++i) {
    ASSERT_TRUE(cluster->Put(Key(i * 7919 % 100000), "value-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(cluster->FlushAll().ok());

  MetricsSnapshot snap = cluster->MetricsNow();
  uint64_t struct_segments = 0, struct_bytes = 0, struct_streams = 0, struct_log_flushes = 0;
  uint64_t struct_rewritten = 0, struct_backup_streams = 0;
  for (int r = 0; r < cluster->num_regions(); ++r) {
    const ReplicationStats rs = cluster->region(r)->replication_stats();
    struct_segments += rs.index_segments_shipped;
    struct_bytes += rs.index_bytes_shipped;
    struct_streams += rs.streams_opened;
    struct_log_flushes += rs.log_flushes;
    for (size_t b = 0; b < cluster->num_send_backups(r); ++b) {
      const SendIndexBackupStats bs = cluster->send_backup(r, b)->stats();
      struct_rewritten += bs.segments_rewritten;
      struct_backup_streams += bs.streams_opened;
    }
  }
  EXPECT_GT(struct_segments, 0u);
  EXPECT_EQ(snap.Sum("repl.index_segments_shipped"), struct_segments);
  EXPECT_EQ(snap.Sum("repl.index_bytes_shipped"), struct_bytes);
  EXPECT_EQ(snap.Sum("repl.streams_opened"), struct_streams);
  EXPECT_EQ(snap.Sum("repl.log_flushes"), struct_log_flushes);
  EXPECT_EQ(snap.Sum("backup.segments_rewritten"), struct_rewritten);
  EXPECT_EQ(snap.Sum("backup.streams_opened"), struct_backup_streams);
  // The primary engines' put counters carry the whole workload, once.
  EXPECT_EQ(snap.Sum("kv.puts", "role", "primary"), static_cast<uint64_t>(kPuts));
}

TEST(SimClusterTelemetryTest, TraceIdPropagatesFromPrimaryToBothBackups) {
  auto cluster_or = SimCluster::Create(SmallClusterOptions(/*regions=*/1, /*workers=*/0));
  ASSERT_TRUE(cluster_or.ok()) << cluster_or.status().ToString();
  auto cluster = std::move(*cluster_or);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(cluster->Put(Key(i), "value-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(cluster->FlushAll().ok());

  // Group spans by (trace, compaction): one group per pipeline run.
  std::map<std::pair<TraceId, uint64_t>, std::vector<SpanRecord>> runs;
  for (const SpanRecord& span : cluster->Traces()) {
    EXPECT_NE(span.trace, kNoTrace);
    runs[{span.trace, span.compaction_id}].push_back(span);
  }
  ASSERT_FALSE(runs.empty());

  // At least one run must carry the full tree: scheduler claim -> merge/build
  // -> per-segment ship on the primary, plus rewrite + commit attached to the
  // SAME trace id by BOTH backups (each a distinct node).
  bool full_tree_found = false;
  for (const auto& [key, spans] : runs) {
    std::map<std::string, std::set<std::string>> nodes_by_name;
    for (const SpanRecord& span : spans) {
      nodes_by_name[span.name].insert(span.node);
    }
    if (nodes_by_name["claim"].size() == 1 && nodes_by_name["merge_build"].size() == 1 &&
        !nodes_by_name["ship_segment"].empty() && nodes_by_name["rewrite_segment"].size() == 2 &&
        nodes_by_name["commit"].size() == 2) {
      // Backups are different nodes than the primary.
      const std::string primary_node = *nodes_by_name["claim"].begin();
      EXPECT_EQ(nodes_by_name["rewrite_segment"].count(primary_node), 0u);
      full_tree_found = true;
    }
  }
  std::string dump;
  for (const auto& [key, spans] : runs) {
    dump += "trace " + std::to_string(key.first) + " compaction " + std::to_string(key.second) + ":";
    for (const SpanRecord& span : spans) {
      dump += " " + std::string(span.name) + "@" + span.node;
    }
    dump += "\n";
  }
  EXPECT_TRUE(full_tree_found)
      << "no compaction produced the full claim/merge_build/ship/rewrite/commit span tree\n"
      << dump;

  // The whole capture renders as chrome://tracing JSON, and the scrape
  // payload embeds it alongside the metrics snapshot.
  const std::string chrome = ChromeTraceJson(cluster->Traces());
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ship_segment\""), std::string::npos);
  EXPECT_NE(chrome.find("\"rewrite_segment\""), std::string::npos);
  const std::string scrape = cluster->ScrapeJson();
  EXPECT_NE(scrape.find("\"node\": \"sim-cluster\""), std::string::npos);
  EXPECT_NE(scrape.find("repl.index_segments_shipped"), std::string::npos);
  EXPECT_NE(scrape.find("\"commit\""), std::string::npos);
}

// --- scrape RPC ----------------------------------------------------------------

TEST(ScrapeRpcTest, ClientFetchesNodeScrapeOverWire) {
  Fabric fabric;
  Coordinator zk;
  std::map<std::string, RegionServer*> directory;
  RegionServerOptions server_options;
  server_options.device_options.segment_size = 1 << 16;
  server_options.device_options.max_segments = 1 << 14;
  server_options.kv_options.l0_max_entries = 128;
  RegionServer s0(&fabric, &zk, "s0", server_options);
  RegionServer s1(&fabric, &zk, "s1", server_options);
  ASSERT_TRUE(s0.Start().ok());
  ASSERT_TRUE(s1.Start().ok());
  directory["s0"] = &s0;
  directory["s1"] = &s1;
  Master master(&zk, "m", directory);
  ASSERT_TRUE(master.Campaign().ok());
  auto map = RegionMap::CreateUniform(1, "user", 10, 1000, {"s0", "s1"}, 2);
  ASSERT_TRUE(master.Bootstrap(*map).ok());

  TebisClient client(
      &fabric, "c",
      [&](const std::string& name) -> ServerEndpoint* {
        return directory.contains(name) ? directory[name]->client_endpoint() : nullptr;
      },
      {"s0", "s1"});
  ASSERT_TRUE(client.Connect().ok());
  // Enough writes to trip compactions so the scrape carries spans too.
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(client.Put(Key(i), "value-" + std::to_string(i)).ok());
  }

  auto scrape = client.ScrapeStats("s0");
  ASSERT_TRUE(scrape.ok()) << scrape.status().ToString();
  EXPECT_NE(scrape->find("\"node\": \"s0\""), std::string::npos);
  EXPECT_NE(scrape->find("kv.puts"), std::string::npos);
  EXPECT_NE(scrape->find("\"traceEvents\""), std::string::npos);
  // The direct accessor and the wire reply come from the same plane.
  EXPECT_EQ(*scrape, s0.ScrapeJson());
  // The other server answers independently with its own node stamp.
  auto other = client.ScrapeStats("s1");
  ASSERT_TRUE(other.ok()) << other.status().ToString();
  EXPECT_NE(other->find("\"node\": \"s1\""), std::string::npos);
  s0.Stop();
  s1.Stop();
}

// --- chaos: a fenced stale primary is visible in scrapes -----------------------

TEST(ChaosScrapeTest, StalePrimaryFencingShowsInScrape) {
  // One shared plane across both ends, as a RegionServer would wire it.
  Telemetry plane(/*trace_capacity=*/256);
  BlockDeviceOptions dev_opts;
  dev_opts.segment_size = 1 << 16;
  dev_opts.max_segments = 1 << 14;
  auto primary_device_or = BlockDevice::Create(dev_opts);
  auto primary_device = std::move(*primary_device_or);
  auto backup_device_or = BlockDevice::Create(dev_opts);
  auto backup_device = std::move(*backup_device_or);
  Fabric fabric;

  KvStoreOptions primary_options;
  primary_options.l0_max_entries = 256;
  primary_options.telemetry = &plane;
  primary_options.telemetry_labels = {{"node", "p0"}, {"role", "primary"}};
  auto primary_or =
      PrimaryRegion::Create(primary_device.get(), primary_options, ReplicationMode::kSendIndex);
  ASSERT_TRUE(primary_or.ok()) << primary_or.status().ToString();
  auto primary = std::move(*primary_or);

  KvStoreOptions backup_options;
  backup_options.l0_max_entries = 256;
  backup_options.telemetry = &plane;
  backup_options.telemetry_labels = {{"node", "b0"}, {"role", "backup"}};
  auto buffer = fabric.RegisterBuffer("b0", "p0", 1 << 16);
  auto backup_or = SendIndexBackupRegion::Create(backup_device.get(), backup_options, buffer);
  ASSERT_TRUE(backup_or.ok()) << backup_or.status().ToString();
  auto backup = std::move(*backup_or);
  primary->AddBackup(
      std::make_unique<LocalBackupChannel>(&fabric, "p0", buffer, backup.get(), nullptr));

  primary->set_epoch(1);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(primary->Put(Key(i), "v" + std::to_string(i)).ok());
  }
  // The backup learns of epoch 2: this primary is now deposed. Its writes and
  // stale control traffic must be fenced — and the fencing must be visible in
  // the scrape, not just in per-object structs.
  backup->set_region_epoch(2);
  Status fenced = primary->Put("stale-key", "stale-value");
  EXPECT_TRUE(fenced.IsFailedPrecondition()) << fenced.ToString();
  LocalBackupChannel stale_channel(&fabric, "p0", buffer, backup.get(), nullptr);
  stale_channel.set_epoch(1);
  EXPECT_TRUE(stale_channel.FlushLog(0).IsFailedPrecondition());

  MetricsSnapshot snap = plane.Snapshot();
  EXPECT_GT(snap.Sum("repl.fence_errors"), 0u);
  EXPECT_GT(snap.Sum("backup.epoch_rejected"), 0u);
  EXPECT_EQ(snap.Sum("repl.fence_errors", "node", "p0"), snap.Sum("repl.fence_errors"));
  // Registry view == legacy struct view, even mid-chaos.
  EXPECT_EQ(snap.Sum("repl.fence_errors"), primary->replication_stats().fence_errors);
  EXPECT_EQ(snap.Sum("backup.epoch_rejected"), backup->stats().epoch_rejected);
  const std::string scrape = plane.ScrapeJson("p0");
  EXPECT_NE(scrape.find("repl.fence_errors"), std::string::npos);
  EXPECT_NE(scrape.find("backup.epoch_rejected"), std::string::npos);
}

}  // namespace
}  // namespace tebis
