#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/crc32.h"
#include "src/common/histogram.h"
#include "src/common/random.h"
#include "src/common/slice.h"
#include "src/common/status.h"

namespace tebis {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("key xyz");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: key xyz");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status::Ok());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::IoError("disk");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kIoError);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> p = std::move(v).value();
  EXPECT_EQ(*p, 7);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) {
    return Status::InvalidArgument("not positive");
  }
  return x;
}

Status UseAssignOrReturn(int x, int* out) {
  TEBIS_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return Status::Ok();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(3, &out).ok());
  EXPECT_EQ(out, 6);
  EXPECT_EQ(UseAssignOrReturn(-1, &out).code(), StatusCode::kInvalidArgument);
}

TEST(SliceTest, BasicAccessors) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s[1], 'e');
  EXPECT_EQ(s.ToString(), "hello");
}

TEST(SliceTest, CompareIsMemcmpOrder) {
  EXPECT_LT(Slice("abc").Compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").Compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").Compare(Slice("abc")), 0);
  // Shorter prefix sorts first.
  EXPECT_LT(Slice("ab").Compare(Slice("abc")), 0);
}

TEST(SliceTest, StartsWithAndRemovePrefix) {
  Slice s("segment42");
  EXPECT_TRUE(s.StartsWith("segment"));
  EXPECT_FALSE(s.StartsWith("segmenz"));
  s.RemovePrefix(7);
  EXPECT_EQ(s.ToString(), "42");
}

TEST(Crc32Test, KnownVectors) {
  // CRC32C("123456789") = 0xE3069283 (well-known check value).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const char* data = "The quick brown fox jumps over the lazy dog";
  const size_t n = strlen(data);
  uint32_t whole = Crc32c(data, n);
  uint32_t part = Crc32c(data, 10);
  part = Crc32c(data + 10, n - 10, part);
  EXPECT_EQ(part, whole);
}

TEST(Crc32Test, DetectsBitFlip) {
  std::string data = "some log record payload";
  uint32_t before = Crc32c(data.data(), data.size());
  data[5] ^= 1;
  EXPECT_NE(Crc32c(data.data(), data.size()), before);
}

TEST(RandomTest, Deterministic) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += (a.Next() == b.Next()) ? 1 : 0;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, UniformInRange) {
  Random r(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = r.UniformRange(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random r(9);
  for (int i = 0; i < 1000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BytesHasRequestedSize) {
  Random r(11);
  EXPECT_EQ(r.Bytes(0).size(), 0u);
  EXPECT_EQ(r.Bytes(33).size(), 33u);
  EXPECT_EQ(r.Bytes(1023).size(), 1023u);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000u);
  EXPECT_EQ(h.max(), 1000u);
  // Bucketing error is <= ~3%.
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 1000.0, 35.0);
}

TEST(HistogramTest, PercentilesAreMonotone) {
  Histogram h;
  Random r(5);
  for (int i = 0; i < 100000; ++i) {
    h.Record(r.UniformRange(100, 1000000));
  }
  uint64_t prev = 0;
  for (double p : {10.0, 50.0, 90.0, 99.0, 99.9, 99.99}) {
    uint64_t v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    prev = v;
  }
  EXPECT_LE(h.Percentile(100), h.max());
}

TEST(HistogramTest, UniformMedianNearMidpoint) {
  Histogram h;
  Random r(5);
  for (int i = 0; i < 200000; ++i) {
    h.Record(r.UniformRange(0, 10000));
  }
  uint64_t p50 = h.Percentile(50);
  EXPECT_GT(p50, 4500u);
  EXPECT_LT(p50, 5500u);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a, b;
  a.Record(10);
  a.Record(20);
  b.Record(1000000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000000u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(ClockTest, MonotonicAdvances) {
  uint64_t a = NowNanos();
  uint64_t b = NowNanos();
  EXPECT_GE(b, a);
}

TEST(ClockTest, ThreadCpuTimeGrowsUnderWork) {
  uint64_t start = ThreadCpuNanos();
  uint64_t sink = 0;
  for (int i = 0; i < 2000000; ++i) {
    sink += static_cast<uint64_t>(i) * 2654435761u;
  }
  asm volatile("" : : "r"(sink));
  EXPECT_GT(ThreadCpuNanos(), start);
}

TEST(ClockTest, ScopedTimerAccumulates) {
  uint64_t acc = 0;
  {
    ScopedTimer t(&acc);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(acc, 1000000u);  // at least 1ms
}

}  // namespace
}  // namespace tebis
