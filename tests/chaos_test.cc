// Seeded randomized fault soak: a YCSB mix runs through a SimCluster while
// 1-5% of fabric/control-plane events fail (plus occasional injected delays),
// survivable via the append/channel retry budgets. After the storm, backups in
// both replication modes must converge with their primaries, and the two
// modes must agree with each other. Every run is reproducible: the failure
// message names the seed, and TEBIS_CHAOS_SEED=<n> replays exactly that
// schedule.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/testing/fault_injector.h"
#include "src/ycsb/sim_cluster.h"
#include "src/ycsb/workload.h"

namespace tebis {
namespace {

SimClusterOptions ChaosOptions(ReplicationMode mode) {
  SimClusterOptions options;
  options.num_servers = 3;
  options.num_regions = 4;
  options.replication_factor = 2;
  options.mode = mode;
  options.kv_options.l0_max_entries = 256;
  options.kv_options.growth_factor = 4;
  options.kv_options.max_levels = 3;
  options.device_options.segment_size = 1 << 16;
  options.device_options.max_segments = 1 << 16;
  options.channel_max_attempts = 6;  // outlasts any plausible fault streak
  return options;
}

constexpr uint64_t kRecords = 1200;
constexpr uint64_t kRunOps = 1200;

YcsbOptions ChaosWorkloadOptions(uint64_t seed) {
  YcsbOptions options;
  options.record_count = kRecords;
  options.op_count = kRunOps;
  options.seed = seed;
  return options;
}

void InstallChaosRules(FaultInjector* injector, uint64_t seed) {
  // Derive the fault intensity from the seed so different seeds explore
  // different points in the 1-5% drop range.
  Random knob(seed * 0x9e3779b97f4a7c15ull + 1);
  const double drop_p = 0.01 + 0.04 * knob.NextDouble();
  injector->FailWithProbability(FaultSite::kFabricWrite, drop_p);
  injector->FailWithProbability(FaultSite::kReplFlushSend, drop_p);
  injector->FailWithProbability(FaultSite::kReplFlushAck, drop_p);
  injector->FailWithProbability(FaultSite::kReplIndexSegmentSend, drop_p);
  injector->FailWithProbability(FaultSite::kReplIndexSegmentAck, drop_p);
  injector->FailWithProbability(FaultSite::kReplCompactionEndAck, drop_p);
  // A stalled backup: occasional control-message delays (§3.2's slow-replica
  // concern), bounded so the soak stays fast.
  injector->DelayWithProbability(FaultSite::kReplFlushSend, 0.01, /*delay_micros=*/100);
}

// Runs one seeded soak in one mode; returns the per-key primary values so the
// caller can cross-check modes. Appends to *schedule the fired-fault history.
void RunChaosSoak(uint64_t seed, ReplicationMode mode,
                  std::vector<std::string>* primary_values,
                  std::vector<FiredFault>* schedule) {
  SCOPED_TRACE("seed=" + std::to_string(seed) + " mode=" + ReplicationModeName(mode) +
               " — replay with TEBIS_CHAOS_SEED=" + std::to_string(seed));
  auto cluster = SimCluster::Create(ChaosOptions(mode));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  FaultInjector injector(seed);
  InstallChaosRules(&injector, seed);
  (*cluster)->AttachFaultInjector(&injector);

  YcsbWorkload workload(ChaosWorkloadOptions(seed));
  auto load = workload.RunLoad((*cluster)->Hooks());
  ASSERT_TRUE(load.ok()) << load.status().ToString();
  auto run = workload.RunPhase(kRunA, (*cluster)->Hooks());
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  // The storm must actually have injected something, or the soak proves
  // nothing about fault tolerance.
  EXPECT_GT(injector.stats().TotalInjected(), 0u) << "no faults fired";

  // Calm the network, then require full convergence.
  (*cluster)->AttachFaultInjector(nullptr);
  std::vector<std::string> keys;
  keys.reserve(kRecords);
  for (uint64_t i = 0; i < kRecords; ++i) {
    keys.push_back(YcsbKey(i));
  }
  Status consistent = (*cluster)->VerifyBackupsConsistent(keys);
  EXPECT_TRUE(consistent.ok()) << consistent.ToString();

  if (primary_values != nullptr) {
    primary_values->clear();
    primary_values->reserve(kRecords);
    for (const std::string& key : keys) {
      auto value = (*cluster)->Get(key);
      ASSERT_TRUE(value.ok()) << key << ": " << value.status().ToString();
      primary_values->push_back(std::move(*value));
    }
  }
  if (schedule != nullptr) {
    const auto history = injector.history();
    schedule->insert(schedule->end(), history.begin(), history.end());
  }
}

std::vector<uint64_t> SeedsUnderTest() {
  // TEBIS_CHAOS_SEED replays a single seed (e.g. one that failed in CI).
  if (const char* env = std::getenv("TEBIS_CHAOS_SEED")) {
    return {static_cast<uint64_t>(std::strtoull(env, nullptr, 10))};
  }
  std::vector<uint64_t> seeds;
  for (uint64_t s = 1; s <= 10; ++s) {
    seeds.push_back(s);
  }
  return seeds;
}

TEST(ChaosTest, SeededSoakConvergesInBothModes) {
  for (uint64_t seed : SeedsUnderTest()) {
    std::vector<std::string> send_values, build_values;
    RunChaosSoak(seed, ReplicationMode::kSendIndex, &send_values, nullptr);
    if (testing::Test::HasFatalFailure()) return;
    RunChaosSoak(seed, ReplicationMode::kBuildIndex, &build_values, nullptr);
    if (testing::Test::HasFatalFailure()) return;
    // Same ops, same seed: the two replication modes must hold identical data.
    ASSERT_EQ(send_values.size(), build_values.size());
    for (size_t i = 0; i < send_values.size(); ++i) {
      ASSERT_EQ(send_values[i], build_values[i])
          << "mode divergence on " << YcsbKey(i) << " (seed " << seed
          << " — replay with TEBIS_CHAOS_SEED=" << seed << ")";
    }
  }
}

TEST(ChaosTest, SameSeedReplaysIdenticalFaultSchedule) {
  const uint64_t seed = 5;
  std::vector<FiredFault> first, second;
  RunChaosSoak(seed, ReplicationMode::kSendIndex, nullptr, &first);
  if (testing::Test::HasFatalFailure()) return;
  RunChaosSoak(seed, ReplicationMode::kSendIndex, nullptr, &second);
  if (testing::Test::HasFatalFailure()) return;
  ASSERT_EQ(first.size(), second.size()) << "fault schedules differ in length";
  for (size_t i = 0; i < first.size(); ++i) {
    ASSERT_TRUE(first[i] == second[i]) << "fault schedules diverge at index " << i;
  }
  EXPECT_GT(first.size(), 0u);
}

}  // namespace
}  // namespace tebis
