// Multiplexed shipping streams (PR 4): compactions of disjoint level pairs
// run concurrently on the background pool and each ships on its own stream.
// This suite proves the concurrency (a gated observer holds one compaction
// mid-ship until a second one begins), checks cross-stream consistency on the
// full replication plane, and exercises the failure matrix: transient
// per-stream faults retried through idempotent handlers, a halted backup
// detached by per-stream strikes while the survivors commit, and promotion
// aborting every half-shipped stream.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/lsm/kv_store.h"
#include "src/net/worker_pool.h"
#include "src/replication/local_backup_channel.h"
#include "src/replication/primary_region.h"
#include "src/replication/send_index_backup.h"
#include "src/storage/block_device.h"
#include "src/testing/fault_injector.h"
#include "src/ycsb/sim_cluster.h"

namespace tebis {
namespace {

constexpr uint64_t kSegmentSize = 1 << 16;

std::string Key(int i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "k-%07d", i);
  return buf;
}

std::string Value(int i) { return "value-" + std::to_string(i) + std::string(48, 'v'); }

// Keys in the SimCluster's range-partitioned "user" space.
std::string UserKey(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "user%010llu", static_cast<unsigned long long>(i));
  return buf;
}

std::unique_ptr<BlockDevice> MakeDevice() {
  BlockDeviceOptions opts;
  opts.segment_size = kSegmentSize;
  opts.max_segments = 1 << 16;
  auto dev = BlockDevice::Create(opts);
  EXPECT_TRUE(dev.ok());
  return std::move(*dev);
}

KvStoreOptions DeepOptions() {
  KvStoreOptions opts;
  opts.l0_max_entries = 128;
  opts.growth_factor = 2;
  opts.max_levels = 4;
  return opts;
}

// --- the concurrency proof --------------------------------------------------
//
// Holds the first deep (src >= 2) compaction hostage in the middle of its
// shipping callbacks until an L0 spill *begins*. The deep job owns levels
// {2, 3} (or {3, 4}); an L0 spill owns {0, 1} — disjoint, so a scheduler that
// claims per-level ownership dispatches the spill while the deep job is still
// blocked in here, and the begin arrives before the timeout. A serialized
// pipeline can never overlap them and times out.
class GateObserver : public CompactionObserver {
 public:
  void OnCompactionBegin(const CompactionInfo& info) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (info.src_level == 0) {
      ++l0_begins_;
      cv_.notify_all();
    }
  }

  void OnIndexSegment(const CompactionInfo& info, int /*tree_level*/, SegmentId /*segment*/,
                      Slice /*bytes*/) override {
    if (info.src_level < 2) {
      return;
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (done_) {
      return;
    }
    const uint64_t seen = l0_begins_;
    overlapped_ =
        cv_.wait_for(lock, std::chrono::seconds(30), [&] { return l0_begins_ > seen; });
    done_ = true;
  }

  bool done() const {
    std::lock_guard<std::mutex> lock(mu_);
    return done_;
  }
  bool overlapped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return overlapped_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t l0_begins_ = 0;
  bool done_ = false;
  bool overlapped_ = false;
};

TEST(ShippingStreamsTest, DisjointLevelPairsCompactConcurrently) {
  auto device = MakeDevice();
  WorkerPool pool(3);
  pool.Start();
  KvStoreOptions opts = DeepOptions();
  opts.compaction_pool = &pool;
  auto store_or = KvStore::Create(device.get(), opts);
  ASSERT_TRUE(store_or.ok());
  std::unique_ptr<KvStore> store = std::move(*store_or);

  GateObserver gate;
  store->set_compaction_observer(&gate);

  // Distinct keys so every level keeps growing and deep compactions recur;
  // stop as soon as the gate has resolved (plus a little settling room).
  for (int i = 0; i < 12000 && !gate.done(); ++i) {
    ASSERT_TRUE(store->Put(Key(i), Value(i)).ok());
  }
  ASSERT_TRUE(store->WaitForBackgroundWork().ok());
  store->set_compaction_observer(nullptr);

  ASSERT_TRUE(gate.done()) << "no deep (src >= 2) compaction ever ran";
  EXPECT_TRUE(gate.overlapped())
      << "an L0 spill never began while a deep compaction was mid-ship";
  EXPECT_GE(store->stats().concurrent_compaction_peak, 2u);

  // The interleaved compactions must not have corrupted anything.
  auto report = store->CheckIntegrity();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (int i : {0, 17, 5000, 11000}) {
    auto value = store->Get(Key(i));
    if (value.ok()) {
      EXPECT_EQ(*value, Value(i));
    } else {
      EXPECT_TRUE(value.status().IsNotFound());  // loop may have ended early
    }
  }
  pool.Stop();
}

// --- full-plane consistency under multiplexed streams -----------------------

TEST(ShippingStreamsTest, MultiplexedShippingKeepsBackupsConsistent) {
  SimClusterOptions options;
  options.num_servers = 3;
  options.num_regions = 4;
  options.replication_factor = 2;
  options.mode = ReplicationMode::kSendIndex;
  options.compaction_workers = 3;
  options.kv_options.l0_max_entries = 128;
  options.kv_options.growth_factor = 2;
  options.kv_options.max_levels = 3;
  options.device_options.segment_size = kSegmentSize;
  options.device_options.max_segments = 1 << 16;
  options.key_space = 8192;
  auto cluster_or = SimCluster::Create(options);
  ASSERT_TRUE(cluster_or.ok());
  auto cluster = std::move(*cluster_or);
  for (int r = 0; r < cluster->num_regions(); ++r) {
    cluster->region(r)->set_stream_flow_pool(4 * kSegmentSize);
  }

  std::vector<std::string> keys;
  for (uint64_t i = 0; i < 6000; ++i) {
    keys.push_back(UserKey(i));
    ASSERT_TRUE(cluster->Put(keys.back(), Value(static_cast<int>(i))).ok());
  }
  Status consistent = cluster->VerifyBackupsConsistent(keys);
  EXPECT_TRUE(consistent.ok()) << consistent.ToString();

  uint64_t streams_opened = 0, background = 0;
  for (int r = 0; r < cluster->num_regions(); ++r) {
    streams_opened += cluster->region(r)->replication_stats().streams_opened;
    background += cluster->region(r)->store()->stats().background_compactions;
  }
  EXPECT_GE(streams_opened, 8u);
  EXPECT_GE(background, 1u);
}

// --- transient per-stream faults are absorbed by retries --------------------

TEST(ShippingStreamsTest, TransientStreamFaultsAreRetried) {
  SimClusterOptions options;
  options.num_servers = 3;
  options.num_regions = 2;
  options.replication_factor = 2;
  options.mode = ReplicationMode::kSendIndex;
  options.compaction_workers = 2;
  options.kv_options.l0_max_entries = 128;
  options.kv_options.growth_factor = 2;
  options.kv_options.max_levels = 3;
  options.device_options.segment_size = kSegmentSize;
  options.device_options.max_segments = 1 << 16;
  options.key_space = 8192;
  options.channel_max_attempts = 3;
  // Declared before the cluster so its destructor runs after the cluster has
  // joined its compaction workers — they call into the injector on every op.
  FaultInjector injector(/*seed=*/4242);
  auto cluster_or = SimCluster::Create(options);
  ASSERT_TRUE(cluster_or.ok());
  auto cluster = std::move(*cluster_or);

  // One lost request and one lost acknowledgment on each half of a stream's
  // lifecycle. Ack-lost retries re-deliver an already-applied message, so
  // this doubles as the handler-idempotency check (begin dedup by stream,
  // end dedup through last_completed_).
  injector.FailNth(FaultSite::kReplCompactionBeginSend, 0);
  injector.FailNth(FaultSite::kReplIndexSegmentSend, 1);
  injector.FailNth(FaultSite::kReplIndexSegmentAck, 2);
  injector.FailNth(FaultSite::kReplCompactionEndAck, 0);
  cluster->AttachFaultInjector(&injector);

  std::vector<std::string> keys;
  for (uint64_t i = 0; i < 4000; ++i) {
    keys.push_back(UserKey(i));
    ASSERT_TRUE(cluster->Put(keys.back(), Value(static_cast<int>(i))).ok());
  }
  Status consistent = cluster->VerifyBackupsConsistent(keys);
  EXPECT_TRUE(consistent.ok()) << consistent.ToString();
  EXPECT_EQ(injector.stats().TotalInjected(), 4u);  // every rule fired once
  cluster->AttachFaultInjector(nullptr);
}

// --- a killed backup detaches; the surviving replica keeps committing -------

TEST(ShippingStreamsTest, HaltedBackupDetachesWhileSurvivorCommits) {
  SimClusterOptions options;
  options.num_servers = 3;
  options.num_regions = 1;  // primary on server0, backups on server1/server2
  options.replication_factor = 3;
  options.mode = ReplicationMode::kSendIndex;
  options.compaction_workers = 2;
  options.kv_options.l0_max_entries = 128;
  options.kv_options.growth_factor = 2;
  options.kv_options.max_levels = 3;
  options.device_options.segment_size = kSegmentSize;
  options.device_options.max_segments = 1 << 16;
  options.key_space = 8192;
  // Declared before the cluster so its destructor runs after the cluster has
  // joined its compaction workers — they call into the injector on every op.
  FaultInjector injector(/*seed=*/7);
  auto cluster_or = SimCluster::Create(options);
  ASSERT_TRUE(cluster_or.ok());
  auto cluster = std::move(*cluster_or);

  ReplicationPolicy policy;
  policy.max_consecutive_failures = 2;
  cluster->region(0)->set_replication_policy(policy);
  ASSERT_EQ(cluster->region(0)->num_backups(), 2u);

  cluster->AttachFaultInjector(&injector);

  std::vector<std::string> keys;
  for (uint64_t i = 0; i < 500; ++i) {
    keys.push_back(UserKey(i));
    ASSERT_TRUE(cluster->Put(keys.back(), Value(static_cast<int>(i))).ok());
  }

  // Kill one backup mid-run: every fabric write and control message touching
  // it now fails, striking out whatever stream (or the data plane) hits it.
  injector.HaltNode("server1");
  uint64_t i = 500;
  for (; i < 4000; ++i) {
    // Tolerated: the parked replication error surfaces on writes until the
    // health policy drops the dead replica. Only keys whose Put succeeded
    // are checked against the survivor below.
    if (cluster->Put(UserKey(i), Value(static_cast<int>(i))).ok()) {
      keys.push_back(UserKey(i));
    }
    if (cluster->region(0)->replication_stats().backups_detached >= 1) {
      break;
    }
  }
  ASSERT_GE(cluster->region(0)->replication_stats().backups_detached, 1u)
      << "halted backup was never detached";
  EXPECT_EQ(cluster->region(0)->num_backups(), 1u);

  // Degraded mode: compactions that raced the detach may each surface one
  // parked error on a later write, so tolerate Puts until the plane drains
  // (a streak of clean writes), then demand that every write succeeds.
  int consecutive_ok = 0;
  for (int spin = 0; spin < 2000 && consecutive_ok < 50; ++spin) {
    ++i;
    if (cluster->Put(UserKey(i), Value(static_cast<int>(i))).ok()) {
      keys.push_back(UserKey(i));
      ++consecutive_ok;
    } else {
      consecutive_ok = 0;
    }
  }
  ASSERT_GE(consecutive_ok, 50) << "writes never stabilized after the detach";
  for (uint64_t j = i + 1; j < i + 301; ++j) {
    keys.push_back(UserKey(j));
    ASSERT_TRUE(cluster->Put(keys.back(), Value(static_cast<int>(j))).ok());
  }
  ASSERT_TRUE(cluster->FlushAll().ok());

  // The survivor must hold every key the primary holds — the dead replica's
  // stream failures never blocked or corrupted the healthy stream.
  size_t survivors = 0;
  for (size_t b = 0; b < cluster->num_send_backups(0); ++b) {
    SendIndexBackupRegion* backup = cluster->send_backup(0, b);
    if (backup->rdma_buffer()->owner() == "server1") {
      continue;  // the halted replica is stale by design
    }
    survivors++;
    for (const std::string& key : keys) {
      auto primary_value = cluster->region(0)->Get(key);
      ASSERT_TRUE(primary_value.ok()) << key;
      auto backup_value = backup->DebugGet(key);
      ASSERT_TRUE(backup_value.ok()) << key << ": " << backup_value.status().ToString();
      EXPECT_EQ(*primary_value, *backup_value) << key;
    }
  }
  EXPECT_EQ(survivors, 1u);
  cluster->AttachFaultInjector(nullptr);
}

// --- per-stream strikes: a mid-ship failure detaches only that replica ------

// Counters live outside the channel: detaching the replica destroys the
// channel (the region owns it), but the test still wants the totals after.
class MidShipFailChannel : public BackupChannel {
 public:
  MidShipFailChannel(std::atomic<uint64_t>* ship_calls, std::atomic<StreamId>* last_stream)
      : ship_calls_(ship_calls), last_stream_(last_stream) {}

  Status RdmaWriteLog(uint64_t, Slice) override { return Status::Ok(); }
  Status FlushLog(SegmentId, StreamId, uint64_t) override { return Status::Ok(); }
  Status CompactionBegin(uint64_t, int, int, StreamId) override { return Status::Ok(); }
  Status ShipIndexSegment(uint64_t, int, int, SegmentId, Slice, StreamId stream,
                          uint32_t) override {
    last_stream_->store(stream, std::memory_order_relaxed);
    ship_calls_->fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("injected mid-ship drop");
  }
  Status CompactionEnd(uint64_t, int, int, const BuiltTree&, StreamId,
                       const std::vector<SegmentChecksum>&) override {
    return Status::Ok();
  }
  Status TrimLog(size_t) override { return Status::Ok(); }
  Status SetLogReplayStart(size_t) override { return Status::Ok(); }
  const std::string& backup_name() const override { return name_; }

 private:
  const std::string name_ = "flaky-backup";
  std::atomic<uint64_t>* ship_calls_;
  std::atomic<StreamId>* last_stream_;
};

TEST(ShippingStreamsTest, MidShipFailureDetachesOnlyThatReplica) {
  Fabric fabric;
  auto primary_device = MakeDevice();
  auto backup_device = MakeDevice();
  KvStoreOptions opts;
  opts.l0_max_entries = 128;
  opts.growth_factor = 2;
  opts.max_levels = 3;
  auto primary_or = PrimaryRegion::Create(primary_device.get(), opts, ReplicationMode::kSendIndex);
  ASSERT_TRUE(primary_or.ok());
  auto primary = std::move(*primary_or);
  auto buffer = fabric.RegisterBuffer("good-backup", "primary0", kSegmentSize);
  auto backup_or = SendIndexBackupRegion::Create(backup_device.get(), opts, buffer);
  ASSERT_TRUE(backup_or.ok());
  auto backup = std::move(*backup_or);
  primary->AddBackup(std::make_unique<LocalBackupChannel>(&fabric, "primary0", buffer,
                                                          backup.get(), nullptr));
  std::atomic<uint64_t> ship_calls{0};
  std::atomic<StreamId> last_stream{kNoStream};
  primary->AddBackup(std::make_unique<MidShipFailChannel>(&ship_calls, &last_stream));

  ReplicationPolicy policy;
  policy.max_consecutive_failures = 1;
  primary->set_replication_policy(policy);

  std::mutex mu;
  std::string detached_name;
  StreamId detached_stream = kNoStream;
  primary->set_detach_listener([&](const std::string& name, uint64_t, StreamId stream) {
    std::lock_guard<std::mutex> lock(mu);
    detached_name = name;
    detached_stream = stream;
  });

  // With max_consecutive_failures = 1 the flaky replica strikes out on its
  // first dropped segment, so no client write ever surfaces the error.
  for (int i = 0; i < 1500; ++i) {
    ASSERT_TRUE(primary->Put(Key(i), Value(i)).ok());
  }
  ASSERT_TRUE(primary->FlushL0().ok());

  EXPECT_GE(ship_calls.load(), 1u);
  EXPECT_EQ(primary->replication_stats().backups_detached, 1u);
  EXPECT_EQ(primary->num_backups(), 1u);
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(detached_name, "flaky-backup");
    // The strike that triggered the detach was on a shipping stream, not the
    // data plane — the whole point of per-stream accounting.
    EXPECT_LT(detached_stream, kMaxShippingStreams);
    EXPECT_EQ(last_stream.load(), detached_stream);
  }

  // The healthy replica committed every stream the flaky one dropped.
  for (int i = 0; i < 1500; ++i) {
    auto primary_value = primary->Get(Key(i));
    ASSERT_TRUE(primary_value.ok());
    auto backup_value = backup->DebugGet(Key(i));
    ASSERT_TRUE(backup_value.ok()) << Key(i) << ": " << backup_value.status().ToString();
    EXPECT_EQ(*primary_value, *backup_value);
  }
}

// --- promotion aborts every half-shipped stream -----------------------------

TEST(ShippingStreamsTest, PromoteAbortsActiveStreams) {
  Fabric fabric;
  auto primary_device = MakeDevice();
  auto backup_device = MakeDevice();
  KvStoreOptions opts = DeepOptions();
  auto primary_or = PrimaryRegion::Create(primary_device.get(), opts, ReplicationMode::kSendIndex);
  ASSERT_TRUE(primary_or.ok());
  auto primary = std::move(*primary_or);
  auto buffer = fabric.RegisterBuffer("backup0", "primary0", kSegmentSize);
  auto backup_or = SendIndexBackupRegion::Create(backup_device.get(), opts, buffer);
  ASSERT_TRUE(backup_or.ok());
  auto backup = std::move(*backup_or);
  primary->AddBackup(std::make_unique<LocalBackupChannel>(&fabric, "primary0", buffer,
                                                          backup.get(), nullptr));

  for (int i = 0; i < 700; ++i) {
    ASSERT_TRUE(primary->Put(Key(i), Value(i)).ok());
  }
  ASSERT_TRUE(primary->FlushL0().ok());

  // Open two concurrent rewrite state machines by hand, as if two compactions
  // were mid-ship when the primary died.
  ASSERT_TRUE(backup->HandleCompactionBegin(801, 1, 2, /*stream=*/5).ok());
  // One stream carries one compaction at a time.
  EXPECT_TRUE(backup->HandleCompactionBegin(802, 3, 4, 5).IsFailedPrecondition());
  // Streams may not own overlapping level pairs.
  EXPECT_TRUE(backup->HandleCompactionBegin(803, 2, 3, 6).IsFailedPrecondition());
  ASSERT_TRUE(backup->HandleCompactionBegin(804, 3, 4, 6).ok());
  EXPECT_EQ(backup->active_streams(), 2u);
  // A begin retry (lost ack) is idempotent.
  ASSERT_TRUE(backup->HandleCompactionBegin(801, 1, 2, 5).ok());
  EXPECT_EQ(backup->active_streams(), 2u);
  // A segment tagged with a stream that carries a different compaction is
  // rejected before any rewrite work.
  std::string junk(256, 'x');
  EXPECT_TRUE(backup->HandleIndexSegment(999, 2, 0, 77, Slice(junk), 5).IsFailedPrecondition());

  auto promoted_or = backup->Promote();
  ASSERT_TRUE(promoted_or.ok()) << promoted_or.status().ToString();
  EXPECT_EQ(backup->stats().streams_aborted, 2u);
  EXPECT_EQ(backup->active_streams(), 0u);

  // The promoted engine serves the full replicated dataset.
  std::unique_ptr<KvStore> promoted = std::move(*promoted_or);
  for (int i = 0; i < 700; ++i) {
    auto value = promoted->Get(Key(i));
    ASSERT_TRUE(value.ok()) << Key(i) << ": " << value.status().ToString();
    EXPECT_EQ(*value, Value(i));
  }
}

}  // namespace
}  // namespace tebis
