#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "src/common/random.h"
#include "src/ycsb/generator.h"
#include "src/ycsb/kv_size_mix.h"
#include "src/ycsb/sim_cluster.h"
#include "src/ycsb/workload.h"

namespace tebis {
namespace {

// --- generators -------------------------------------------------------------

TEST(GeneratorTest, UniformCoversRange) {
  UniformGenerator gen(100);
  Random rng(1);
  std::set<uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = gen.Next(&rng);
    ASSERT_LT(v, 100u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(GeneratorTest, ZipfianIsSkewed) {
  ZipfianGenerator gen(10000);
  Random rng(2);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) {
    counts[gen.Next(&rng)]++;
  }
  // Item 0 dominates; the head is much hotter than the tail.
  int head = 0;
  for (uint64_t item = 0; item < 100; ++item) {
    head += counts.contains(item) ? counts[item] : 0;
  }
  EXPECT_GT(head, 100000 / 3);  // >1/3 of probability mass in the top 1%
  EXPECT_GT(counts[0], counts.contains(5000) ? counts[5000] * 10 : 1000);
}

TEST(GeneratorTest, ZipfianStaysInRange) {
  ZipfianGenerator gen(777);
  Random rng(3);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_LT(gen.Next(&rng), 777u);
  }
}

TEST(GeneratorTest, ScrambledZipfianSpreadsHotKeys) {
  ScrambledZipfianGenerator gen(10000);
  Random rng(4);
  // The hottest keys should not all be small indexes: bucket by item/1000 and
  // expect multiple buckets to receive heavy traffic.
  std::map<uint64_t, int> bucket_counts;
  for (int i = 0; i < 100000; ++i) {
    bucket_counts[gen.Next(&rng) / 1000]++;
  }
  int heavy_buckets = 0;
  for (auto& [bucket, count] : bucket_counts) {
    if (count > 2000) {
      heavy_buckets++;
    }
  }
  EXPECT_GE(heavy_buckets, 5);
}

TEST(GeneratorTest, LatestFavorsRecentInserts) {
  std::atomic<uint64_t> inserted{10000};
  LatestGenerator gen(&inserted);
  Random rng(5);
  uint64_t recent = 0;
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = gen.Next(&rng);
    ASSERT_LT(v, 10000u);
    if (v >= 9000) {
      recent++;
    }
  }
  EXPECT_GT(recent, 10000u);  // more than half of accesses in the newest 10%
}

TEST(GeneratorTest, FnvIsDeterministic) {
  EXPECT_EQ(FnvHash64(42), FnvHash64(42));
  EXPECT_NE(FnvHash64(42), FnvHash64(43));
}

// --- size mixes -------------------------------------------------------------

TEST(KvSizeMixTest, PureMixesAreConstant) {
  Random rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(kMixS.SampleKvBytes(&rng), kSmallKvBytes);
    EXPECT_EQ(kMixM.SampleKvBytes(&rng), kMediumKvBytes);
    EXPECT_EQ(kMixL.SampleKvBytes(&rng), kLargeKvBytes);
  }
}

TEST(KvSizeMixTest, SdMixMatchesProportions) {
  Random rng(7);
  std::map<size_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    counts[kMixSD.SampleKvBytes(&rng)]++;
  }
  EXPECT_NEAR(counts[kSmallKvBytes], n * 0.6, n * 0.02);
  EXPECT_NEAR(counts[kMediumKvBytes], n * 0.2, n * 0.02);
  EXPECT_NEAR(counts[kLargeKvBytes], n * 0.2, n * 0.02);
}

TEST(KvSizeMixTest, AverageSizesMatchTable2Ordering) {
  // Table 2 dataset sizes: S < M < SD < MD < LD < L.
  EXPECT_LT(kMixS.AverageKvBytes(), kMixM.AverageKvBytes());
  EXPECT_LT(kMixM.AverageKvBytes(), kMixSD.AverageKvBytes());
  EXPECT_LT(kMixSD.AverageKvBytes(), kMixMD.AverageKvBytes());
  EXPECT_LT(kMixMD.AverageKvBytes(), kMixLD.AverageKvBytes());
  EXPECT_LT(kMixLD.AverageKvBytes(), kMixL.AverageKvBytes());
}

TEST(KvSizeMixTest, SweepMixSumsTo100) {
  for (int pct : {40, 60, 80, 100}) {
    KvSizeMix mix = SmallSweepMix(pct);
    EXPECT_EQ(mix.pct_small + mix.pct_medium + mix.pct_large, 100);
    EXPECT_EQ(mix.pct_small, pct);
  }
}

// --- workload ---------------------------------------------------------------

TEST(YcsbWorkloadTest, LoadInsertsEveryKeyOnce) {
  YcsbOptions options;
  options.record_count = 1000;
  YcsbWorkload workload(options);
  std::set<std::string> keys;
  KvHooks hooks;
  hooks.put = [&](Slice key, Slice value) {
    EXPECT_TRUE(keys.insert(key.ToString()).second) << "duplicate " << key.ToString();
    return Status::Ok();
  };
  hooks.read = [](Slice) { return Status::Ok(); };
  auto result = workload.RunLoad(hooks);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(keys.size(), 1000u);
  EXPECT_EQ(result->ops, 1000u);
  EXPECT_GT(result->kops_per_sec, 0.0);
  // All keys within the record space.
  EXPECT_TRUE(keys.contains(YcsbKey(0)));
  EXPECT_TRUE(keys.contains(YcsbKey(999)));
}

TEST(YcsbWorkloadTest, ValueSizesDeterministicPerKey) {
  YcsbOptions options;
  options.size_mix = kMixSD;
  YcsbWorkload a(options), b(options);
  for (uint64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(a.ValueBytesFor(i), b.ValueBytesFor(i));
  }
}

TEST(YcsbWorkloadTest, RunAMixesReadsAndUpdates) {
  YcsbOptions options;
  options.record_count = 500;
  options.op_count = 10000;
  YcsbWorkload workload(options);
  int puts = 0, reads = 0;
  KvHooks hooks;
  hooks.put = [&](Slice, Slice) {
    puts++;
    return Status::Ok();
  };
  hooks.read = [&](Slice) {
    reads++;
    return Status::Ok();
  };
  ASSERT_TRUE(workload.RunLoad(hooks).ok());
  puts = 0;
  auto result = workload.RunPhase(kRunA, hooks);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(puts, 5000, 300);
  EXPECT_NEAR(reads, 5000, 300);
  EXPECT_EQ(result->read_latency.count() + result->update_latency.count(), 10000u);
}

TEST(YcsbWorkloadTest, RunDInsertsExtendKeySpace) {
  YcsbOptions options;
  options.record_count = 500;
  options.op_count = 4000;
  YcsbWorkload workload(options);
  std::set<std::string> keys;
  KvHooks hooks;
  hooks.put = [&](Slice key, Slice) {
    keys.insert(key.ToString());
    return Status::Ok();
  };
  hooks.read = [](Slice) { return Status::Ok(); };
  ASSERT_TRUE(workload.RunLoad(hooks).ok());
  ASSERT_TRUE(workload.RunPhase(kRunD, hooks).ok());
  EXPECT_GT(workload.inserted(), 500u);  // ~5% of 4000 new inserts
  EXPECT_GT(keys.size(), 500u);
}

// --- SimCluster end-to-end -----------------------------------------------------

SimClusterOptions SmallSimOptions(ReplicationMode mode, int rf = 2) {
  SimClusterOptions options;
  options.num_servers = 3;
  options.num_regions = 4;
  options.replication_factor = rf;
  options.mode = mode;
  options.kv_options.l0_max_entries = 256;
  options.kv_options.max_levels = 3;
  options.device_options.segment_size = 1 << 16;
  options.device_options.max_segments = 1 << 16;
  options.key_space = 100000;
  return options;
}

TEST(SimClusterTest, YcsbLoadAndRunAThroughCluster) {
  auto cluster = SimCluster::Create(SmallSimOptions(ReplicationMode::kSendIndex));
  ASSERT_TRUE(cluster.ok());
  YcsbOptions options;
  options.record_count = 5000;
  options.op_count = 5000;
  options.size_mix = kMixSD;
  YcsbWorkload workload(options);
  auto load = workload.RunLoad((*cluster)->Hooks());
  ASSERT_TRUE(load.ok()) << load.status().ToString();
  auto run = workload.RunPhase(kRunA, (*cluster)->Hooks());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT((*cluster)->TotalCompactions(), 0u);
  EXPECT_GT((*cluster)->NetworkBytes(), 0u);
}

TEST(SimClusterTest, SendIndexBackupsConsistentAfterYcsb) {
  auto cluster = SimCluster::Create(SmallSimOptions(ReplicationMode::kSendIndex));
  ASSERT_TRUE(cluster.ok());
  YcsbOptions options;
  options.record_count = 4000;
  YcsbWorkload workload(options);
  ASSERT_TRUE(workload.RunLoad((*cluster)->Hooks()).ok());
  std::vector<std::string> keys;
  for (uint64_t i = 0; i < 4000; i += 97) {
    keys.push_back(YcsbKey(i));
  }
  Status s = (*cluster)->VerifyBackupsConsistent(keys);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(SimClusterTest, SendIndexSavesBackupMemoryAndIo) {
  auto send = SimCluster::Create(SmallSimOptions(ReplicationMode::kSendIndex));
  auto build = SimCluster::Create(SmallSimOptions(ReplicationMode::kBuildIndex));
  ASSERT_TRUE(send.ok() && build.ok());
  YcsbOptions options;
  options.record_count = 6000;
  for (auto* cluster : {send->get(), build->get()}) {
    YcsbWorkload workload(options);
    ASSERT_TRUE(workload.RunLoad(cluster->Hooks()).ok());
  }
  // Memory: Build-Index keeps 2x the L0s (rf=2).
  EXPECT_GT((*build)->TotalL0MemoryBytes(), (*send)->TotalL0MemoryBytes());
  // I/O: Build-Index pays compaction reads on backups too.
  EXPECT_GT((*build)->DeviceBytes(IoClass::kCompactionRead, true),
            (*send)->DeviceBytes(IoClass::kCompactionRead, true));
  // Network: Send-Index ships indexes.
  EXPECT_GT((*send)->NetworkBytes(), (*build)->NetworkBytes());
  // CPU: Build-Index burns more compaction time overall.
  EXPECT_GT((*build)->CpuBreakdown().backup_compaction_ns, 0u);
  EXPECT_EQ((*send)->CpuBreakdown().backup_compaction_ns, 0u);
  EXPECT_GT((*send)->CpuBreakdown().rewrite_index_ns, 0u);
}

TEST(SimClusterTest, NoReplicationHasNoNetworkTraffic) {
  auto cluster = SimCluster::Create(SmallSimOptions(ReplicationMode::kNoReplication, /*rf=*/1));
  ASSERT_TRUE(cluster.ok());
  YcsbOptions options;
  options.record_count = 2000;
  YcsbWorkload workload(options);
  ASSERT_TRUE(workload.RunLoad((*cluster)->Hooks()).ok());
  EXPECT_EQ((*cluster)->NetworkBytes(), 0u);
  EXPECT_EQ((*cluster)->CpuBreakdown().log_replication_ns, 0u);
}

TEST(SimClusterTest, ThreeWayReplication) {
  auto cluster = SimCluster::Create(SmallSimOptions(ReplicationMode::kSendIndex, /*rf=*/3));
  ASSERT_TRUE(cluster.ok());
  YcsbOptions options;
  options.record_count = 3000;
  YcsbWorkload workload(options);
  ASSERT_TRUE(workload.RunLoad((*cluster)->Hooks()).ok());
  std::vector<std::string> keys;
  for (uint64_t i = 0; i < 3000; i += 131) {
    keys.push_back(YcsbKey(i));
  }
  Status s = (*cluster)->VerifyBackupsConsistent(keys);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(SimClusterTest, TrafficCountersReset) {
  auto cluster = SimCluster::Create(SmallSimOptions(ReplicationMode::kSendIndex));
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->Put(YcsbKey(1), "x").ok());
  ASSERT_GT((*cluster)->NetworkBytes(), 0u);
  (*cluster)->ResetTrafficCounters();
  EXPECT_EQ((*cluster)->NetworkBytes(), 0u);
  EXPECT_EQ((*cluster)->TotalDeviceBytes(), 0u);
}

}  // namespace
}  // namespace tebis
