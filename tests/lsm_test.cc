#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/lsm/btree_builder.h"
#include "src/lsm/btree_node.h"
#include "src/lsm/btree_reader.h"
#include "src/lsm/compaction.h"
#include "src/lsm/format.h"
#include "src/lsm/kv_store.h"
#include "src/lsm/memtable.h"
#include "src/lsm/page_cache.h"
#include "src/lsm/value_log.h"
#include "src/storage/block_device.h"

namespace tebis {
namespace {

std::unique_ptr<BlockDevice> MakeDevice(uint64_t segment_size = 1 << 16,
                                        uint64_t max_segments = 4096) {
  BlockDeviceOptions opts;
  opts.segment_size = segment_size;
  opts.max_segments = max_segments;
  auto dev = BlockDevice::Create(opts);
  EXPECT_TRUE(dev.ok());
  return std::move(*dev);
}

// Zero-pads numbers so lexicographic order == numeric order.
std::string Key(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key%010llu", static_cast<unsigned long long>(i));
  return buf;
}

// --- ValueLog -----------------------------------------------------------------

TEST(ValueLogTest, AppendAndReadBack) {
  auto dev = MakeDevice();
  auto log = ValueLog::Create(dev.get());
  ASSERT_TRUE(log.ok());
  auto res = (*log)->Append("alpha", "value-1", false);
  ASSERT_TRUE(res.ok());
  LogRecord rec;
  ASSERT_TRUE((*log)->ReadRecord(res->offset, &rec, nullptr, IoClass::kLookup).ok());
  EXPECT_EQ(rec.key, "alpha");
  EXPECT_EQ(rec.value, "value-1");
  EXPECT_FALSE(rec.tombstone);
}

TEST(ValueLogTest, TombstoneRoundTrip) {
  auto dev = MakeDevice();
  auto log = ValueLog::Create(dev.get());
  ASSERT_TRUE(log.ok());
  auto res = (*log)->Append("gone", "", true);
  ASSERT_TRUE(res.ok());
  LogRecord rec;
  ASSERT_TRUE((*log)->ReadRecord(res->offset, &rec, nullptr, IoClass::kLookup).ok());
  EXPECT_TRUE(rec.tombstone);
  std::string key;
  bool tomb = false;
  ASSERT_TRUE((*log)->ReadKey(res->offset, &key, &tomb, nullptr, IoClass::kLookup).ok());
  EXPECT_EQ(key, "gone");
  EXPECT_TRUE(tomb);
}

TEST(ValueLogTest, RejectsBadKeySizes) {
  auto dev = MakeDevice();
  auto log = ValueLog::Create(dev.get());
  ASSERT_TRUE(log.ok());
  EXPECT_FALSE((*log)->Append("", "v", false).ok());
  EXPECT_FALSE((*log)->Append(std::string(kMaxKeySize + 1, 'k'), "v", false).ok());
}

TEST(ValueLogTest, RejectsRecordLargerThanSegment) {
  auto dev = MakeDevice(4096);
  auto log = ValueLog::Create(dev.get());
  ASSERT_TRUE(log.ok());
  EXPECT_FALSE((*log)->Append("k", std::string(5000, 'v'), false).ok());
}

TEST(ValueLogTest, SegmentRolloverAndReadFromFlushed) {
  auto dev = MakeDevice(4096);
  auto log = ValueLog::Create(dev.get());
  ASSERT_TRUE(log.ok());
  std::vector<uint64_t> offsets;
  const std::string value(500, 'v');
  for (int i = 0; i < 40; ++i) {  // ~20KB total => several 4KB segments
    auto res = (*log)->Append(Key(i), value, false);
    ASSERT_TRUE(res.ok());
    offsets.push_back(res->offset);
  }
  EXPECT_GE((*log)->flushed_segments().size(), 3u);
  for (int i = 0; i < 40; ++i) {
    LogRecord rec;
    ASSERT_TRUE((*log)->ReadRecord(offsets[i], &rec, nullptr, IoClass::kLookup).ok());
    EXPECT_EQ(rec.key, Key(i));
    EXPECT_EQ(rec.value, value);
  }
}

class TrackingLogObserver : public ValueLogObserver {
 public:
  void OnAppend(SegmentId seg, uint64_t off, Slice bytes) override {
    appends++;
    append_bytes += bytes.size();
  }
  void OnTailFlush(SegmentId seg, Slice bytes) override {
    flushes++;
    flushed_segments.push_back(seg);
    EXPECT_EQ(bytes.size(), 4096u);
  }
  int appends = 0;
  uint64_t append_bytes = 0;
  int flushes = 0;
  std::vector<SegmentId> flushed_segments;
};

TEST(ValueLogTest, ObserverSeesAppendsAndFlushes) {
  auto dev = MakeDevice(4096);
  auto log = ValueLog::Create(dev.get());
  ASSERT_TRUE(log.ok());
  TrackingLogObserver obs;
  (*log)->set_observer(&obs);
  const std::string value(1000, 'v');
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE((*log)->Append(Key(i), value, false).ok());
  }
  EXPECT_EQ(obs.appends, 8);
  EXPECT_GE(obs.flushes, 1);
  EXPECT_EQ(obs.flushed_segments, (*log)->flushed_segments());
}

TEST(ValueLogTest, FlushTailPersistsAndOpensNewTail) {
  auto dev = MakeDevice(4096);
  auto log = ValueLog::Create(dev.get());
  ASSERT_TRUE(log.ok());
  auto res = (*log)->Append("k1", "v1", false);
  ASSERT_TRUE(res.ok());
  SegmentId old_tail = (*log)->tail_segment();
  ASSERT_TRUE((*log)->FlushTail().ok());
  EXPECT_NE((*log)->tail_segment(), old_tail);
  EXPECT_EQ((*log)->tail_used(), 0u);
  // Record remains readable from the flushed segment.
  LogRecord rec;
  ASSERT_TRUE((*log)->ReadRecord(res->offset, &rec, nullptr, IoClass::kLookup).ok());
  EXPECT_EQ(rec.value, "v1");
}

TEST(ValueLogTest, ForEachRecordWalksSegmentImage) {
  auto dev = MakeDevice(4096);
  auto log = ValueLog::Create(dev.get());
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*log)->Append(Key(i), "v" + std::to_string(i), false).ok());
  }
  ASSERT_TRUE((*log)->FlushTail().ok());
  SegmentId seg = (*log)->flushed_segments()[0];
  std::string buf(4096, 0);
  uint64_t base = dev->geometry().BaseOffset(seg);
  ASSERT_TRUE(dev->Read(base, 4096, buf.data(), IoClass::kRecovery).ok());
  std::vector<std::string> keys;
  ASSERT_TRUE(ValueLog::ForEachRecord(buf, base, [&](const LogRecord& r) {
                keys.push_back(r.key);
                return Status::Ok();
              }).ok());
  ASSERT_EQ(keys.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(keys[i], Key(i));
  }
}

TEST(ValueLogTest, AppendRawSegmentReadable) {
  auto dev_a = MakeDevice(4096);
  auto dev_b = MakeDevice(4096);
  auto log_a = ValueLog::Create(dev_a.get());
  auto log_b = ValueLog::Create(dev_b.get());
  ASSERT_TRUE(log_a.ok() && log_b.ok());
  ASSERT_TRUE((*log_a)->Append("mirrored", "payload", false).ok());
  ASSERT_TRUE((*log_a)->FlushTail().ok());
  // Copy A's flushed segment image into B as a raw segment ("RDMA buffer").
  SegmentId seg_a = (*log_a)->flushed_segments()[0];
  std::string image(4096, 0);
  ASSERT_TRUE(dev_a->Read(dev_a->geometry().BaseOffset(seg_a), 4096, image.data(),
                          IoClass::kOther)
                  .ok());
  auto seg_b = (*log_b)->AppendRawSegment(image);
  ASSERT_TRUE(seg_b.ok());
  LogRecord rec;
  uint64_t off_b = dev_b->geometry().BaseOffset(*seg_b);  // record at offset 0 in segment
  ASSERT_TRUE((*log_b)->ReadRecord(off_b, &rec, nullptr, IoClass::kLookup).ok());
  EXPECT_EQ(rec.key, "mirrored");
  EXPECT_EQ(rec.value, "payload");
}

TEST(ValueLogTest, CorruptionDetected) {
  auto dev = MakeDevice(4096);
  auto log = ValueLog::Create(dev.get());
  ASSERT_TRUE(log.ok());
  auto res = (*log)->Append("kk", "vv", false);
  ASSERT_TRUE(res.ok());
  ASSERT_TRUE((*log)->FlushTail().ok());
  // Flip a byte of the record on the device.
  char byte;
  ASSERT_TRUE(dev->Read(res->offset + kLogRecordHeaderSize, 1, &byte, IoClass::kOther).ok());
  byte ^= 0x40;
  ASSERT_TRUE(dev->Write(res->offset + kLogRecordHeaderSize, Slice(&byte, 1), IoClass::kOther)
                  .ok());
  LogRecord rec;
  Status s = (*log)->ReadRecord(res->offset, &rec, nullptr, IoClass::kLookup);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

// --- Memtable --------------------------------------------------------------

TEST(MemtableTest, PutGetOverwrite) {
  Memtable table;
  table.Put("a", ValueLocation{100, false});
  table.Put("b", ValueLocation{200, false});
  ValueLocation loc;
  ASSERT_TRUE(table.Get("a", &loc));
  EXPECT_EQ(loc.log_offset, 100u);
  table.Put("a", ValueLocation{300, true});
  ASSERT_TRUE(table.Get("a", &loc));
  EXPECT_EQ(loc.log_offset, 300u);
  EXPECT_TRUE(loc.tombstone);
  EXPECT_EQ(table.entries(), 2u);  // overwrite does not add entries
  EXPECT_FALSE(table.Get("c", &loc));
}

TEST(MemtableTest, IterationIsSorted) {
  Memtable table;
  Random rng(42);
  std::set<std::string> keys;
  for (int i = 0; i < 1000; ++i) {
    std::string k = rng.Bytes(1 + rng.Uniform(20));
    keys.insert(k);
    table.Put(k, ValueLocation{static_cast<uint64_t>(i), false});
  }
  EXPECT_EQ(table.entries(), keys.size());
  auto it = table.NewIterator();
  it.SeekToFirst();
  auto expect = keys.begin();
  while (it.Valid()) {
    ASSERT_NE(expect, keys.end());
    EXPECT_EQ(it.key().ToString(), *expect);
    ++expect;
    it.Next();
  }
  EXPECT_EQ(expect, keys.end());
}

TEST(MemtableTest, SeekFindsLowerBound) {
  Memtable table;
  for (int i = 0; i < 100; i += 2) {
    table.Put(Key(i), ValueLocation{static_cast<uint64_t>(i), false});
  }
  auto it = table.NewIterator();
  it.Seek(Key(31));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key().ToString(), Key(32));
  it.Seek(Key(98));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key().ToString(), Key(98));
  it.Seek(Key(99));
  EXPECT_FALSE(it.Valid());
}

TEST(MemtableTest, MemoryGrowsWithEntries) {
  Memtable table;
  size_t before = table.ApproximateMemoryBytes();
  for (int i = 0; i < 100; ++i) {
    table.Put(Key(i), ValueLocation{0, false});
  }
  EXPECT_GT(table.ApproximateMemoryBytes(), before);
}

// --- B+ tree node layer --------------------------------------------------------

TEST(BTreeNodeTest, LeafBuildAndSearch) {
  // Key(i) is 13 bytes, one longer than kPrefixSize, so equal-prefix ties
  // exercise the full-key loader exactly like KV separation does.
  std::vector<char> buf(kDefaultNodeSize);
  LeafNodeBuilder builder(buf.data(), buf.size());
  std::map<uint64_t, std::string> by_offset;
  for (int i = 0; i < 50; ++i) {
    const uint64_t offset = 1000 + i;
    by_offset[offset] = Key(i * 3);
    builder.Add(Key(i * 3), offset);
  }
  builder.Finish();

  LeafNodeView view(buf.data(), buf.size());
  ASSERT_TRUE(view.IsValid());
  EXPECT_EQ(view.num_entries(), 50u);
  auto full_key = [&](uint64_t off) -> StatusOr<std::string> { return by_offset.at(off); };
  auto found = view.Find(Key(9), full_key);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(view.entry(*found).log_offset, 1003u);
  EXPECT_TRUE(view.Find(Key(10), full_key).status().IsNotFound());
}

TEST(BTreeNodeTest, LeafPrefixCollisionUsesFullKey) {
  // Keys share the 12-byte prefix and differ afterwards.
  std::vector<char> buf(kDefaultNodeSize);
  LeafNodeBuilder builder(buf.data(), buf.size());
  std::string base = "sameprefix12";  // exactly kPrefixSize
  ASSERT_EQ(base.size(), kPrefixSize);
  std::map<uint64_t, std::string> stored;
  for (int i = 0; i < 5; ++i) {
    std::string k = base + std::string(1, static_cast<char>('a' + i));
    stored[100 + i] = k;
    builder.Add(k, 100 + i);
  }
  builder.Finish();
  LeafNodeView view(buf.data(), buf.size());
  int full_key_calls = 0;
  auto full_key = [&](uint64_t off) -> StatusOr<std::string> {
    full_key_calls++;
    return stored.at(off);
  };
  auto found = view.Find(base + "c", full_key);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(view.entry(*found).log_offset, 102u);
  EXPECT_GT(full_key_calls, 0);
  EXPECT_TRUE(view.Find(base + "z", full_key).status().IsNotFound());
}

TEST(BTreeNodeTest, ShortKeysDecidedWithoutLogRead) {
  std::vector<char> buf(kDefaultNodeSize);
  LeafNodeBuilder builder(buf.data(), buf.size());
  builder.Add("ab", 1);
  builder.Add("abc", 2);  // shares short prefix, both fit in kPrefixSize
  builder.Finish();
  LeafNodeView view(buf.data(), buf.size());
  auto no_full_key = [](uint64_t) -> StatusOr<std::string> {
    return Status::Internal("should not be called");
  };
  auto found = view.Find("abc", no_full_key);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(view.entry(*found).log_offset, 2u);
  found = view.Find("ab", no_full_key);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(view.entry(*found).log_offset, 1u);
}

TEST(BTreeNodeTest, IndexNodeSearch) {
  std::vector<char> buf(kDefaultNodeSize);
  IndexNodeBuilder builder(buf.data(), buf.size());
  builder.Add(Key(0), 1000);
  builder.Add(Key(10), 2000);
  builder.Add(Key(20), 3000);
  builder.Finish(1);

  IndexNodeView view(buf.data(), buf.size());
  ASSERT_TRUE(view.IsValid());
  EXPECT_EQ(view.num_entries(), 3u);
  EXPECT_EQ(view.header().tree_height, 1u);
  EXPECT_EQ(view.child(view.FindChild(Key(5))), 1000u);
  EXPECT_EQ(view.child(view.FindChild(Key(10))), 2000u);
  EXPECT_EQ(view.child(view.FindChild(Key(15))), 2000u);
  EXPECT_EQ(view.child(view.FindChild(Key(99))), 3000u);
  // Keys below the first pivot fall through to child 0.
  EXPECT_EQ(view.child(view.FindChild("aaa")), 1000u);
}

TEST(BTreeNodeTest, IndexNodeOverflowDetection) {
  std::vector<char> buf(256);
  IndexNodeBuilder builder(buf.data(), buf.size());
  int added = 0;
  while (!builder.WouldOverflow(13)) {
    builder.Add(Key(added), added);
    added++;
  }
  EXPECT_GT(added, 2);
  builder.Finish(1);
  IndexNodeView view(buf.data(), buf.size());
  EXPECT_EQ(view.num_entries(), static_cast<uint32_t>(added));
}

TEST(BTreeNodeTest, RewriteLeafOffsetsTranslates) {
  std::vector<char> buf(kDefaultNodeSize);
  LeafNodeBuilder builder(buf.data(), buf.size());
  builder.Add("k1", 0x10000 | 5);
  builder.Add("k2", 0x20000 | 9);
  builder.Finish();
  ASSERT_TRUE(RewriteLeafOffsets(buf.data(), buf.size(), [](uint64_t off) -> StatusOr<uint64_t> {
                return off + 0x100000;
              }).ok());
  LeafNodeView view(buf.data(), buf.size());
  EXPECT_EQ(view.entry(0).log_offset, (0x10000u | 5) + 0x100000u);
  EXPECT_EQ(view.entry(1).log_offset, (0x20000u | 9) + 0x100000u);
}

TEST(BTreeNodeTest, RewriteIndexChildrenTranslates) {
  std::vector<char> buf(kDefaultNodeSize);
  IndexNodeBuilder builder(buf.data(), buf.size());
  builder.Add("a", 111);
  builder.Add("m", 222);
  builder.Finish(1);
  ASSERT_TRUE(
      RewriteIndexChildren(buf.data(), buf.size(), [](uint64_t off) -> StatusOr<uint64_t> {
        return off * 10;
      }).ok());
  IndexNodeView view(buf.data(), buf.size());
  EXPECT_EQ(view.child(0), 1110u);
  EXPECT_EQ(view.child(1), 2220u);
  EXPECT_EQ(view.key(1).ToString(), "m");  // keys untouched
}

TEST(BTreeNodeTest, RewriteRejectsWrongNodeKind) {
  std::vector<char> buf(kDefaultNodeSize);
  LeafNodeBuilder builder(buf.data(), buf.size());
  builder.Add("k", 1);
  builder.Finish();
  auto identity = [](uint64_t off) -> StatusOr<uint64_t> { return off; };
  EXPECT_FALSE(RewriteIndexChildren(buf.data(), buf.size(), identity).ok());
  ASSERT_TRUE(RewriteLeafOffsets(buf.data(), buf.size(), identity).ok());
}

// --- B+ tree builder + reader round trips ---------------------------------------

struct TreeFixture {
  std::unique_ptr<BlockDevice> device;
  std::unique_ptr<ValueLog> log;
  BuiltTree tree;
  std::vector<std::pair<std::string, uint64_t>> entries;  // key -> log offset
};

// Builds a tree over `n` log-backed keys with stride 2 (odd keys absent).
TreeFixture BuildTree(uint64_t n, uint64_t segment_size = 1 << 16) {
  TreeFixture fx;
  fx.device = MakeDevice(segment_size, 1 << 16);
  auto log = ValueLog::Create(fx.device.get());
  EXPECT_TRUE(log.ok());
  fx.log = std::move(*log);
  BTreeBuilder builder(fx.device.get(), kDefaultNodeSize, IoClass::kCompactionWrite, nullptr);
  for (uint64_t i = 0; i < n; ++i) {
    const std::string key = Key(i * 2);
    auto res = fx.log->Append(key, "value" + std::to_string(i), false);
    EXPECT_TRUE(res.ok());
    EXPECT_TRUE(builder.Add(key, res->offset).ok());
    fx.entries.emplace_back(key, res->offset);
  }
  auto tree = builder.Finish();
  EXPECT_TRUE(tree.ok());
  fx.tree = *tree;
  return fx;
}

FullKeyLoader LoaderFor(const ValueLog* log) {
  return [log](uint64_t off) -> StatusOr<std::string> {
    std::string key;
    TEBIS_RETURN_IF_ERROR(log->ReadKey(off, &key, nullptr, nullptr, IoClass::kLookup));
    return key;
  };
}

TEST(BTreeBuilderTest, EmptyTree) {
  auto dev = MakeDevice();
  BTreeBuilder builder(dev.get(), kDefaultNodeSize, IoClass::kCompactionWrite, nullptr);
  auto tree = builder.Finish();
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->empty());
  EXPECT_EQ(tree->num_entries, 0u);
}

TEST(BTreeBuilderTest, RejectsOutOfOrderKeys) {
  auto dev = MakeDevice();
  BTreeBuilder builder(dev.get(), kDefaultNodeSize, IoClass::kCompactionWrite, nullptr);
  ASSERT_TRUE(builder.Add("b", 1).ok());
  EXPECT_FALSE(builder.Add("a", 2).ok());
  EXPECT_FALSE(builder.Add("b", 3).ok());  // duplicates also rejected
}

TEST(BTreeBuilderTest, RejectsUseAfterFinish) {
  auto dev = MakeDevice();
  BTreeBuilder builder(dev.get(), kDefaultNodeSize, IoClass::kCompactionWrite, nullptr);
  ASSERT_TRUE(builder.Add("a", 1).ok());
  ASSERT_TRUE(builder.Finish().ok());
  EXPECT_FALSE(builder.Add("b", 2).ok());
  EXPECT_FALSE(builder.Finish().ok());
}

class BTreeRoundTripTest : public testing::TestWithParam<uint64_t> {};

TEST_P(BTreeRoundTripTest, FindEveryKeyAndMissAbsent) {
  const uint64_t n = GetParam();
  TreeFixture fx = BuildTree(n);
  EXPECT_EQ(fx.tree.num_entries, n);
  BTreeReader reader(fx.device.get(), nullptr, kDefaultNodeSize, fx.tree, IoClass::kLookup);
  auto loader = LoaderFor(fx.log.get());
  for (const auto& [key, offset] : fx.entries) {
    auto found = reader.Find(key, loader);
    ASSERT_TRUE(found.ok()) << key;
    EXPECT_EQ(*found, offset);
  }
  // Odd keys are absent.
  for (uint64_t i = 0; i < std::min<uint64_t>(n, 50); ++i) {
    EXPECT_TRUE(reader.Find(Key(i * 2 + 1), loader).status().IsNotFound());
  }
}

TEST_P(BTreeRoundTripTest, IteratorVisitsAllInOrder) {
  const uint64_t n = GetParam();
  TreeFixture fx = BuildTree(n);
  BTreeReader reader(fx.device.get(), nullptr, kDefaultNodeSize, fx.tree, IoClass::kLookup);
  BTreeIterator it(&reader);
  ASSERT_TRUE(it.SeekToFirst().ok());
  uint64_t count = 0;
  while (it.Valid()) {
    ASSERT_LT(count, fx.entries.size());
    EXPECT_EQ(it.entry().log_offset, fx.entries[count].second);
    count++;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(count, n);
}

// Sizes chosen to cover: single leaf, multiple leaves one index node, two
// index levels, and multi-segment trees.
INSTANTIATE_TEST_SUITE_P(TreeSizes, BTreeRoundTripTest,
                         testing::Values(1, 2, 169, 170, 171, 5000, 40000));

TEST(BTreeIteratorTest, SeekLandsOnLowerBound) {
  TreeFixture fx = BuildTree(1000);
  BTreeReader reader(fx.device.get(), nullptr, kDefaultNodeSize, fx.tree, IoClass::kLookup);
  auto loader = LoaderFor(fx.log.get());
  BTreeIterator it(&reader);
  // Key(501) is absent (odd); expect Key(502).
  ASSERT_TRUE(it.Seek(Key(501), loader).ok());
  ASSERT_TRUE(it.Valid());
  std::string key;
  ASSERT_TRUE(fx.log->ReadKey(it.entry().log_offset, &key, nullptr, nullptr, IoClass::kLookup)
                  .ok());
  EXPECT_EQ(key, Key(502));
  // Seek beyond the last key.
  ASSERT_TRUE(it.Seek(Key(999999), loader).ok());
  EXPECT_FALSE(it.Valid());
}

TEST(BTreeBuilderTest, SinkSeesSegmentsInBuildOrder) {
  struct Sink : SegmentSink {
    void OnSegmentComplete(int tree_level, SegmentId segment, Slice bytes) override {
      events.emplace_back(tree_level, segment, bytes.size());
      total_bytes += bytes.size();
    }
    std::vector<std::tuple<int, SegmentId, size_t>> events;
    uint64_t total_bytes = 0;
  } sink;
  auto dev = MakeDevice(1 << 16, 1 << 16);
  auto log = ValueLog::Create(dev.get());
  ASSERT_TRUE(log.ok());
  BTreeBuilder builder(dev.get(), kDefaultNodeSize, IoClass::kCompactionWrite, &sink);
  const uint64_t n = 20000;
  for (uint64_t i = 0; i < n; ++i) {
    auto res = (*log)->Append(Key(i), "v", false);
    ASSERT_TRUE(res.ok());
    ASSERT_TRUE(builder.Add(Key(i), res->offset).ok());
  }
  auto tree = builder.Finish();
  ASSERT_TRUE(tree.ok());
  ASSERT_FALSE(sink.events.empty());
  EXPECT_EQ(sink.total_bytes, tree->bytes_written);
  // Every segment of the tree is emitted exactly once.
  std::set<SegmentId> emitted;
  for (const auto& [level, seg, size] : sink.events) {
    EXPECT_TRUE(emitted.insert(seg).second);
  }
  EXPECT_EQ(emitted.size(), tree->segments.size());
  // Leaf segments (level 0) must exist.
  EXPECT_TRUE(std::any_of(sink.events.begin(), sink.events.end(),
                          [](const auto& e) { return std::get<0>(e) == 0; }));
}

// --- PageCache -----------------------------------------------------------------

TEST(PageCacheTest, HitsAvoidDeviceReads) {
  auto dev = MakeDevice(1 << 16);
  auto seg = dev->AllocateSegment();
  ASSERT_TRUE(seg.ok());
  uint64_t base = dev->geometry().BaseOffset(*seg);
  std::string data(4096, 'p');
  ASSERT_TRUE(dev->Write(base, data, IoClass::kOther).ok());
  dev->stats().Reset();

  PageCache cache(dev.get(), 1 << 20);
  char out[100];
  ASSERT_TRUE(cache.Read(base + 10, 100, out, IoClass::kLookup).ok());
  EXPECT_EQ(cache.misses(), 1u);
  ASSERT_TRUE(cache.Read(base + 50, 100, out, IoClass::kLookup).ok());
  EXPECT_EQ(cache.hits(), 1u);
  // Only one page fault hit the device.
  EXPECT_EQ(dev->stats().TotalReadBytes(), 4096u);
}

TEST(PageCacheTest, EvictionBoundsMemory) {
  auto dev = MakeDevice(1 << 16, 256);
  std::vector<uint64_t> bases;
  std::string data(4096, 'x');
  for (int i = 0; i < 16; ++i) {
    auto seg = dev->AllocateSegment();
    ASSERT_TRUE(seg.ok());
    bases.push_back(dev->geometry().BaseOffset(*seg));
    ASSERT_TRUE(dev->Write(bases.back(), data, IoClass::kOther).ok());
  }
  PageCache cache(dev.get(), 4 * 4096);  // 4 pages
  char out[8];
  for (int round = 0; round < 2; ++round) {
    for (auto base : bases) {
      ASSERT_TRUE(cache.Read(base, 8, out, IoClass::kLookup).ok());
    }
  }
  // Working set (16 pages) exceeds capacity (4), so round 2 misses too.
  EXPECT_EQ(cache.misses(), 32u);
}

TEST(PageCacheTest, InvalidateSegmentDropsPages) {
  auto dev = MakeDevice(1 << 16);
  auto seg = dev->AllocateSegment();
  ASSERT_TRUE(seg.ok());
  uint64_t base = dev->geometry().BaseOffset(*seg);
  std::string data(4096, 'a');
  ASSERT_TRUE(dev->Write(base, data, IoClass::kOther).ok());
  PageCache cache(dev.get(), 1 << 20);
  char out[4];
  ASSERT_TRUE(cache.Read(base, 4, out, IoClass::kLookup).ok());
  cache.InvalidateSegment(*seg);
  // Device contents changed; the cache must not serve the stale page.
  std::string fresh(4096, 'b');
  ASSERT_TRUE(dev->Write(base, fresh, IoClass::kOther).ok());
  ASSERT_TRUE(cache.Read(base, 4, out, IoClass::kLookup).ok());
  EXPECT_EQ(out[0], 'b');
}

// --- Compaction merge ------------------------------------------------------------

TEST(CompactionTest, NewestVersionWinsOnTies) {
  Memtable newer;
  Memtable older;
  newer.Put("k1", ValueLocation{100, false});
  older.Put("k1", ValueLocation{1, false});
  older.Put("k2", ValueLocation{2, false});
  auto dev = MakeDevice();
  BTreeBuilder builder(dev.get(), kDefaultNodeSize, IoClass::kCompactionWrite, nullptr);
  MemtableMergeSource src_new(&newer);
  MemtableMergeSource src_old(&older);
  auto written = MergeSources({&src_new, &src_old}, false, &builder);
  ASSERT_TRUE(written.ok());
  EXPECT_EQ(*written, 2u);
  auto tree = builder.Finish();
  ASSERT_TRUE(tree.ok());
  BTreeReader reader(dev.get(), nullptr, kDefaultNodeSize, *tree, IoClass::kLookup);
  auto loader = [](uint64_t) -> StatusOr<std::string> { return Status::Internal("no log"); };
  auto found = reader.Find("k1", loader);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, 100u);  // newest offset
}

TEST(CompactionTest, TombstonesDroppedOnlyAtLastLevel) {
  Memtable table;
  table.Put("dead", ValueLocation{50, true});
  table.Put("live", ValueLocation{60, false});
  auto dev = MakeDevice();
  {
    BTreeBuilder keep(dev.get(), kDefaultNodeSize, IoClass::kCompactionWrite, nullptr);
    MemtableMergeSource src(&table);
    auto written = MergeSources({&src}, /*drop_tombstones=*/false, &keep);
    ASSERT_TRUE(written.ok());
    EXPECT_EQ(*written, 2u);
  }
  {
    BTreeBuilder drop(dev.get(), kDefaultNodeSize, IoClass::kCompactionWrite, nullptr);
    MemtableMergeSource src(&table);
    auto written = MergeSources({&src}, /*drop_tombstones=*/true, &drop);
    ASSERT_TRUE(written.ok());
    EXPECT_EQ(*written, 1u);
  }
}

TEST(CompactionTest, LevelMergeSourceStreamsWholeLevel) {
  TreeFixture fx = BuildTree(2000);
  LevelMergeSource src(fx.device.get(), kDefaultNodeSize, fx.tree, fx.log.get());
  ASSERT_TRUE(src.Init().ok());
  uint64_t count = 0;
  std::string prev;
  while (src.Valid()) {
    if (!prev.empty()) {
      EXPECT_LT(prev, src.entry().key);
    }
    prev = src.entry().key;
    count++;
    ASSERT_TRUE(src.Next().ok());
  }
  EXPECT_EQ(count, 2000u);
}

TEST(CompactionTest, CompactionReadsAccountedAsCompactionTraffic) {
  TreeFixture fx = BuildTree(2000);
  fx.device->stats().Reset();
  LevelMergeSource src(fx.device.get(), kDefaultNodeSize, fx.tree, fx.log.get());
  ASSERT_TRUE(src.Init().ok());
  while (src.Valid()) {
    ASSERT_TRUE(src.Next().ok());
  }
  EXPECT_GT(fx.device->stats().ReadBytes(IoClass::kCompactionRead), 0u);
  EXPECT_EQ(fx.device->stats().ReadBytes(IoClass::kLookup), 0u);
}

// --- KvStore engine ---------------------------------------------------------------

KvStoreOptions SmallStoreOptions() {
  KvStoreOptions opts;
  opts.l0_max_entries = 256;
  opts.growth_factor = 4;
  opts.max_levels = 3;
  opts.cache_bytes = 0;
  return opts;
}

TEST(KvStoreTest, PutGetSmoke) {
  auto dev = MakeDevice(1 << 16, 1 << 16);
  auto store = KvStore::Create(dev.get(), SmallStoreOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("hello", "world").ok());
  auto v = (*store)->Get("hello");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "world");
  EXPECT_TRUE((*store)->Get("missing").status().IsNotFound());
}

TEST(KvStoreTest, OverwriteReturnsNewest) {
  auto dev = MakeDevice(1 << 16, 1 << 16);
  auto store = KvStore::Create(dev.get(), SmallStoreOptions());
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*store)->Put("k", "v" + std::to_string(i)).ok());
  }
  auto v = (*store)->Get("k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "v4");
}

TEST(KvStoreTest, DeleteHidesKeyAcrossCompactions) {
  auto dev = MakeDevice(1 << 16, 1 << 16);
  auto store = KvStore::Create(dev.get(), SmallStoreOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("doomed", "value").ok());
  ASSERT_TRUE((*store)->FlushL0().ok());  // now in L1
  ASSERT_TRUE((*store)->Delete("doomed").ok());
  EXPECT_TRUE((*store)->Get("doomed").status().IsNotFound());
  ASSERT_TRUE((*store)->FlushL0().ok());  // tombstone merges into L1
  EXPECT_TRUE((*store)->Get("doomed").status().IsNotFound());
}

TEST(KvStoreTest, CompactionTriggersWhenL0Full) {
  auto dev = MakeDevice(1 << 16, 1 << 16);
  auto store = KvStore::Create(dev.get(), SmallStoreOptions());
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE((*store)->Put(Key(i), "value").ok());
  }
  EXPECT_GE((*store)->stats().compactions, 1u);
  EXPECT_LT((*store)->l0_entries(), 256u);
  EXPECT_FALSE((*store)->level(1).empty());
  // Everything still readable.
  for (int i = 0; i < 300; ++i) {
    auto v = (*store)->Get(Key(i));
    ASSERT_TRUE(v.ok()) << Key(i) << " " << v.status().ToString();
  }
}

TEST(KvStoreTest, LargeWorkloadWithOverwritesStaysConsistent) {
  auto dev = MakeDevice(1 << 16, 1 << 16);
  auto store = KvStore::Create(dev.get(), SmallStoreOptions());
  ASSERT_TRUE(store.ok());
  Random rng(77);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 20000; ++i) {
    std::string key = Key(rng.Uniform(3000));
    std::string value = "v" + std::to_string(i);
    ASSERT_TRUE((*store)->Put(key, value).ok());
    model[key] = value;
  }
  EXPECT_GT((*store)->stats().compactions, 5u);
  for (const auto& [key, value] : model) {
    auto v = (*store)->Get(key);
    ASSERT_TRUE(v.ok()) << key;
    EXPECT_EQ(*v, value) << key;
  }
}

TEST(KvStoreTest, ScanMergesLevelsAndSkipsTombstones) {
  auto dev = MakeDevice(1 << 16, 1 << 16);
  auto store = KvStore::Create(dev.get(), SmallStoreOptions());
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 600; ++i) {  // spans L0 and L1
    ASSERT_TRUE((*store)->Put(Key(i), "value" + std::to_string(i)).ok());
  }
  ASSERT_TRUE((*store)->Delete(Key(100)).ok());
  auto scan = (*store)->Scan(Key(98), 5);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->size(), 5u);
  EXPECT_EQ((*scan)[0].key, Key(98));
  EXPECT_EQ((*scan)[1].key, Key(99));
  EXPECT_EQ((*scan)[2].key, Key(101));  // 100 deleted
  EXPECT_EQ((*scan)[3].key, Key(102));
  EXPECT_EQ((*scan)[2].value, "value101");
}

TEST(KvStoreTest, ScanFromStartReturnsEverything) {
  auto dev = MakeDevice(1 << 16, 1 << 16);
  auto store = KvStore::Create(dev.get(), SmallStoreOptions());
  ASSERT_TRUE(store.ok());
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE((*store)->Put(Key(i), "x").ok());
  }
  auto scan = (*store)->Scan(Slice(), 10000);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), static_cast<size_t>(n));
  for (int i = 0; i + 1 < n; ++i) {
    EXPECT_LT((*scan)[i].key, (*scan)[i + 1].key);
  }
}

TEST(KvStoreTest, CascadingCompactionsReachDeeperLevels) {
  auto dev = MakeDevice(1 << 16, 1 << 17);
  KvStoreOptions opts = SmallStoreOptions();
  opts.l0_max_entries = 128;
  auto store = KvStore::Create(dev.get(), opts);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE((*store)->Put(Key(i), "payload").ok());
  }
  EXPECT_FALSE((*store)->level(2).empty());
  for (int i = 0; i < 4000; i += 37) {
    ASSERT_TRUE((*store)->Get(Key(i)).ok()) << i;
  }
}

TEST(KvStoreTest, CompactionObserverLifecycle) {
  struct Obs : CompactionObserver {
    void OnCompactionBegin(const CompactionInfo& info) override { begins.push_back(info); }
    void OnIndexSegment(const CompactionInfo&, int, SegmentId, Slice bytes) override {
      segment_bytes += bytes.size();
    }
    void OnCompactionEnd(const CompactionInfo& info, const BuiltTree& tree) override {
      ends.push_back(info);
      last_tree = tree;
    }
    std::vector<CompactionInfo> begins, ends;
    uint64_t segment_bytes = 0;
    BuiltTree last_tree;
  } obs;
  auto dev = MakeDevice(1 << 16, 1 << 16);
  auto store = KvStore::Create(dev.get(), SmallStoreOptions());
  ASSERT_TRUE(store.ok());
  (*store)->set_compaction_observer(&obs);
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE((*store)->Put(Key(i), "v").ok());
  }
  ASSERT_FALSE(obs.begins.empty());
  EXPECT_EQ(obs.begins.size(), obs.ends.size());
  EXPECT_GT(obs.segment_bytes, 0u);
  EXPECT_FALSE(obs.last_tree.empty());
  EXPECT_EQ(obs.begins[0].src_level, 0);
  EXPECT_EQ(obs.begins[0].dst_level, 1);
}

TEST(KvStoreTest, FreedSegmentsAreRecycledNotLeaked) {
  auto dev = MakeDevice(1 << 16, 1 << 16);
  auto store = KvStore::Create(dev.get(), SmallStoreOptions());
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE((*store)->Put(Key(i % 500), "value" + std::to_string(i)).ok());
  }
  // Allocated segments must be bounded: levels + value log, not one per
  // compaction.
  uint64_t log_segments = (*store)->value_log()->flushed_segments().size() + 1;
  uint64_t level_segments = 0;
  for (uint32_t l = 1; l <= 3; ++l) {
    level_segments += (*store)->level(l).segments.size();
  }
  EXPECT_EQ(dev->AllocatedSegments(), log_segments + level_segments);
}

TEST(KvStoreTest, ReplayRecordRebuildsL0) {
  auto dev = MakeDevice(1 << 16, 1 << 16);
  auto store = KvStore::Create(dev.get(), SmallStoreOptions());
  ASSERT_TRUE(store.ok());
  auto res = (*store)->value_log()->Append("replayed", "val", false);
  ASSERT_TRUE(res.ok());
  ASSERT_TRUE((*store)->ReplayRecord("replayed", res->offset, false).ok());
  auto v = (*store)->Get("replayed");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "val");
}

TEST(KvStoreTest, GcReclaimsLogSegments) {
  auto dev = MakeDevice(1 << 14, 1 << 16);  // small 16K segments
  KvStoreOptions opts = SmallStoreOptions();
  opts.l0_max_entries = 64;
  auto store = KvStore::Create(dev.get(), opts);
  ASSERT_TRUE(store.ok());
  // Overwrite a small key set many times: most log bytes become garbage.
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE((*store)->Put(Key(i % 50), std::string(100, 'a' + (i % 26))).ok());
  }
  const size_t before = (*store)->value_log()->flushed_segments().size();
  ASSERT_GT(before, 4u);
  auto freed = (*store)->GarbageCollectHead(4);
  ASSERT_TRUE(freed.ok()) << freed.status().ToString();
  EXPECT_EQ(*freed, 4u);
  // All 50 keys still readable with their newest values.
  for (int k = 0; k < 50; ++k) {
    ASSERT_TRUE((*store)->Get(Key(k)).ok()) << k;
  }
}

TEST(KvStoreTest, GcThenCompactionsDoNotTouchFreedSegments) {
  auto dev = MakeDevice(1 << 14, 1 << 16);
  KvStoreOptions opts = SmallStoreOptions();
  opts.l0_max_entries = 64;
  auto store = KvStore::Create(dev.get(), opts);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE((*store)->Put(Key(i % 40), "value-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE((*store)->GarbageCollectHead(3).ok());
  // Trigger more compactions; they must not read the trimmed segments.
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE((*store)->Put(Key(i % 40), "after-" + std::to_string(i)).ok());
  }
  for (int k = 0; k < 40; ++k) {
    auto v = (*store)->Get(Key(k));
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->rfind("after-", 0), 0u) << *v;
  }
}

TEST(KvStoreTest, CacheReducesLookupTraffic) {
  auto dev = MakeDevice(1 << 16, 1 << 16);
  KvStoreOptions opts = SmallStoreOptions();
  opts.cache_bytes = 8 << 20;
  auto store = KvStore::Create(dev.get(), opts);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE((*store)->Put(Key(i), "cached-value").ok());
  }
  ASSERT_TRUE((*store)->FlushL0().ok());
  // First pass faults pages; second pass should be nearly free.
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE((*store)->Get(Key(i)).ok());
  }
  uint64_t after_first = dev->stats().ReadBytes(IoClass::kLookup);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE((*store)->Get(Key(i)).ok());
  }
  uint64_t after_second = dev->stats().ReadBytes(IoClass::kLookup);
  EXPECT_EQ(after_first, after_second);
  EXPECT_GT((*store)->cache()->hits(), 0u);
}

TEST(KvStoreTest, StatsAccumulate) {
  auto dev = MakeDevice(1 << 16, 1 << 16);
  auto store = KvStore::Create(dev.get(), SmallStoreOptions());
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE((*store)->Put(Key(i), "v").ok());
  }
  ASSERT_TRUE((*store)->Get(Key(5)).ok());
  const KvStoreStats& st = (*store)->stats();
  EXPECT_EQ(st.puts, 300u);
  EXPECT_EQ(st.gets, 1u);
  EXPECT_GT(st.insert_l0_cpu_ns, 0u);
  EXPECT_GT(st.compaction_cpu_ns, 0u);
}

TEST(KvStoreTest, RejectsBadOptions) {
  auto dev = MakeDevice(1 << 16);
  KvStoreOptions opts;
  opts.node_size = 1000;  // does not divide segment size
  EXPECT_FALSE(KvStore::Create(dev.get(), opts).ok());
  opts = KvStoreOptions{};
  opts.growth_factor = 1;
  EXPECT_FALSE(KvStore::Create(dev.get(), opts).ok());
}

// Property: after any interleaving of puts/deletes/flushes, the store agrees
// with a std::map model, both for gets and full scans.
class KvStorePropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(KvStorePropertyTest, MatchesModelUnderRandomOps) {
  auto dev = MakeDevice(1 << 16, 1 << 16);
  KvStoreOptions opts = SmallStoreOptions();
  opts.l0_max_entries = 128;
  auto store = KvStore::Create(dev.get(), opts);
  ASSERT_TRUE(store.ok());
  Random rng(GetParam());
  std::map<std::string, std::string> model;
  for (int i = 0; i < 5000; ++i) {
    const int op = static_cast<int>(rng.Uniform(10));
    std::string key = Key(rng.Uniform(400));
    if (op < 6) {
      std::string value = rng.Bytes(1 + rng.Uniform(200));
      ASSERT_TRUE((*store)->Put(key, value).ok());
      model[key] = value;
    } else if (op < 8) {
      ASSERT_TRUE((*store)->Delete(key).ok());
      model.erase(key);
    } else if (op == 8) {
      auto got = (*store)->Get(key);
      auto expect = model.find(key);
      if (expect == model.end()) {
        EXPECT_TRUE(got.status().IsNotFound()) << key;
      } else {
        ASSERT_TRUE(got.ok()) << key;
        EXPECT_EQ(*got, expect->second);
      }
    } else {
      ASSERT_TRUE((*store)->FlushL0().ok());
    }
  }
  // Final full-scan equivalence.
  auto scan = (*store)->Scan(Slice(), 1 << 20);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->size(), model.size());
  auto expect = model.begin();
  for (const auto& kv : *scan) {
    EXPECT_EQ(kv.key, expect->first);
    EXPECT_EQ(kv.value, expect->second);
    ++expect;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvStorePropertyTest, testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace tebis
