// Robustness of the replication plane under ugly failures (paper §3.5):
//   * epoch fencing — a deposed primary's traffic (one-sided log writes and
//     control messages alike) is rejected by every backup, so a split brain
//     never corrupts a replica;
//   * slow-not-dead backups — the primary's health policy detaches a stalled
//     replica unilaterally, foreground writes keep flowing, and the master
//     reconciles the detach record with a full-synced replacement;
//   * cascading failures — a replacement that fails mid-full-sync is skipped
//     for the next candidate, and a master that dies mid-failover leaves a
//     recovery intent a standby rolls forward.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/cluster/client.h"
#include "src/cluster/coordinator.h"
#include "src/cluster/master.h"
#include "src/cluster/region_server.h"
#include "src/replication/local_backup_channel.h"
#include "src/replication/primary_region.h"
#include "src/replication/send_index_backup.h"
#include "src/storage/block_device.h"
#include "src/testing/fault_injector.h"

namespace tebis {
namespace {

constexpr uint64_t kSegmentSize = 1 << 16;

// --- unit-level fencing (no cluster, in-process channel) --------------------

std::unique_ptr<BlockDevice> MakeDevice() {
  BlockDeviceOptions opts;
  opts.segment_size = kSegmentSize;
  opts.max_segments = 1 << 16;
  auto dev = BlockDevice::Create(opts);
  EXPECT_TRUE(dev.ok());
  return std::move(*dev);
}

KvStoreOptions SmallOptions() {
  KvStoreOptions opts;
  opts.l0_max_entries = 256;
  opts.growth_factor = 4;
  opts.max_levels = 3;
  return opts;
}

struct LocalPair {
  std::unique_ptr<Fabric> fabric = std::make_unique<Fabric>();
  std::unique_ptr<BlockDevice> primary_device;
  std::unique_ptr<BlockDevice> backup_device;
  std::unique_ptr<PrimaryRegion> primary;
  std::unique_ptr<SendIndexBackupRegion> backup;
  std::shared_ptr<RegisteredBuffer> buffer;
};

LocalPair MakeLocalPair() {
  LocalPair c;
  c.primary_device = MakeDevice();
  auto primary =
      PrimaryRegion::Create(c.primary_device.get(), SmallOptions(), ReplicationMode::kSendIndex);
  EXPECT_TRUE(primary.ok());
  c.primary = std::move(*primary);
  c.backup_device = MakeDevice();
  c.buffer = c.fabric->RegisterBuffer("backup0", "primary0", kSegmentSize);
  auto backup = SendIndexBackupRegion::Create(c.backup_device.get(), SmallOptions(), c.buffer);
  EXPECT_TRUE(backup.ok());
  c.backup = std::move(*backup);
  c.primary->AddBackup(std::make_unique<LocalBackupChannel>(c.fabric.get(), "primary0", c.buffer,
                                                            c.backup.get(), nullptr));
  return c;
}

TEST(EpochFencingTest, DeposedPrimaryRejectedOnDataAndControlPlane) {
  LocalPair c = MakeLocalPair();
  c.primary->set_epoch(1);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(c.primary->Put("key-" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_EQ(c.buffer->stale_write_rejects(), 0u);

  // The backup learns of a newer configuration (epoch 2): this primary is now
  // deposed. Its one-sided log writes must be fenced before the memcpy...
  c.backup->set_region_epoch(2);
  Status fenced = c.primary->Put("stale-key", "stale-value");
  EXPECT_TRUE(fenced.IsFailedPrecondition()) << fenced.ToString();
  EXPECT_GT(c.buffer->stale_write_rejects(), 0u);
  EXPECT_GT(c.primary->replication_stats().fence_errors, 0u);
  // ...and fencing is not a health strike: the replica is fine, WE are stale.
  EXPECT_EQ(c.primary->replication_stats().slow_call_strikes, 0u);
  EXPECT_EQ(c.primary->replication_stats().backups_detached, 0u);

  // Control plane too: a control message stamped with the stale generation is
  // rejected by the backup's epoch check before its handler runs.
  LocalBackupChannel stale_channel(c.fabric.get(), "primary0", c.buffer, c.backup.get(),
                                   /*build_backup=*/nullptr);
  stale_channel.set_epoch(1);
  const uint64_t rejected_before = c.backup->stats().epoch_rejected;
  Status ctrl = stale_channel.FlushLog(0);
  EXPECT_TRUE(ctrl.IsFailedPrecondition()) << ctrl.ToString();
  EXPECT_GT(c.backup->stats().epoch_rejected, rejected_before);

  // Zero stale bytes: the fenced record never reached the backup.
  EXPECT_TRUE(c.backup->DebugGet("stale-key").status().IsNotFound());

  // Epochs fence configurations, not nodes: under a newer generation the data
  // path opens up again, and the backup adopts the epoch from the first
  // control message that carries it.
  c.primary->set_epoch(3);
  EXPECT_TRUE(c.primary->Put("fresh-key", "fresh-value").ok());
  stale_channel.set_epoch(3);
  EXPECT_TRUE(stale_channel.FlushLog(0).ok());
  EXPECT_EQ(c.backup->region_epoch(), 3u);
  EXPECT_TRUE(c.backup->DebugGet("stale-key").status().IsNotFound());
}

// --- cluster fixtures -------------------------------------------------------

struct RobustClusterConfig {
  ReplicationMode mode = ReplicationMode::kSendIndex;
  int num_servers = 3;
  uint32_t num_regions = 1;
  int replication_factor = 2;
  ReplicationPolicy policy;           // default: unilateral detach disabled
  FaultInjector* injector = nullptr;  // installed on the fabric before Start()
  uint64_t segment_size = kSegmentSize;
};

struct RobustCluster {
  explicit RobustCluster(const RobustClusterConfig& config) {
    if (config.injector != nullptr) {
      fabric.set_fault_injector(config.injector);
    }
    RegionServerOptions options;
    options.device_options.segment_size = config.segment_size;
    options.device_options.max_segments = 1 << 16;
    options.kv_options.l0_max_entries = 256;
    options.kv_options.max_levels = 3;
    options.replication_mode = config.mode;
    options.replication_policy = config.policy;
    std::vector<std::string> names;
    for (int i = 0; i < config.num_servers; ++i) {
      names.push_back("server" + std::to_string(i));
      servers.push_back(std::make_unique<RegionServer>(&fabric, &zk, names.back(), options));
      EXPECT_TRUE(servers.back()->Start().ok());
      directory[names.back()] = servers.back().get();
    }
    master = std::make_unique<Master>(&zk, "m0", directory);
    EXPECT_TRUE(master->Campaign().ok());
    auto map = RegionMap::CreateUniform(config.num_regions, "user", 10, 1000000, names,
                                        config.replication_factor);
    EXPECT_TRUE(map.ok());
    EXPECT_TRUE(master->Bootstrap(*map).ok());
  }

  ~RobustCluster() {
    for (auto& server : servers) {
      server->Stop();
    }
  }

  // `exclude` drops one server from the seed list — a client bootstrapping
  // after a failover must not learn the map from the deposed node, which
  // keeps serving its stale configuration until operators reap it.
  std::unique_ptr<TebisClient> MakeClient(const std::string& name,
                                          const std::string& exclude = "") {
    std::vector<std::string> seeds;
    for (auto& [server_name, server] : directory) {
      if (server_name != exclude) {
        seeds.push_back(server_name);
      }
    }
    auto client = std::make_unique<TebisClient>(
        &fabric, name,
        [this](const std::string& server) -> ServerEndpoint* {
          auto it = directory.find(server);
          return (it == directory.end() || it->second->crashed())
                     ? nullptr
                     : it->second->client_endpoint();
        },
        seeds);
    client->set_rpc_timeout_ns(1'000'000'000ull);
    EXPECT_TRUE(client->Connect().ok());
    return client;
  }

  static std::string Key(uint64_t i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "user%010llu", static_cast<unsigned long long>(i % 1000000));
    return buf;
  }

  Fabric fabric;
  Coordinator zk;
  std::vector<std::unique_ptr<RegionServer>> servers;
  std::map<std::string, RegionServer*> directory;
  std::unique_ptr<Master> master;
};

// Polls `predicate` until it holds or ~10 s pass (generous for sanitizers).
bool WaitFor(const std::function<bool()>& predicate) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return predicate();
}

// --- deposed primary, full cluster ------------------------------------------

TEST(DeposedPrimaryTest, StaleEpochTrafficNeverLandsOnBackups) {
  RobustClusterConfig config;
  config.num_servers = 3;
  config.num_regions = 1;
  config.replication_factor = 3;
  RobustCluster cluster(config);
  auto stale_client = cluster.MakeClient("stale-client");

  std::map<std::string, std::string> model;
  for (int i = 0; i < 400; ++i) {
    std::string key = RobustCluster::Key(i * 13);
    model[key] = "pre-" + std::to_string(i);
    ASSERT_TRUE(stale_client->Put(key, model[key]).ok());
  }
  auto before = cluster.master->current_map();
  const std::string old_primary = before->FindById(0)->primary;
  const uint64_t old_epoch = before->FindById(0)->epoch;
  RegionServer* deposed = cluster.directory.at(old_primary);

  // The failure detector declares the primary dead (its coordinator session
  // expires) while the process keeps serving its stale configuration — the
  // classic false-positive split brain the epoch fences against.
  deposed->DropCoordinatorSession();
  auto after = cluster.master->current_map();
  const std::string new_primary = after->FindById(0)->primary;
  ASSERT_NE(new_primary, old_primary);
  EXPECT_GT(after->FindById(0)->epoch, old_epoch);

  // The stale client still routes to the deposed primary, which accepts the
  // request but cannot replicate it: every backup fences the stale epoch, the
  // write is never acked, and the client sees only a retriable failure.
  Status stale_put = stale_client->Put(RobustCluster::Key(777777), "stale-write");
  EXPECT_FALSE(stale_put.ok());
  EXPECT_TRUE(stale_put.IsUnavailable()) << stale_put.ToString();
  EXPECT_GE(stale_client->stats().failover_retries, 1u);
  auto deposed_stats = deposed->PrimaryReplicationStats(0);
  ASSERT_TRUE(deposed_stats.ok());
  EXPECT_GT(deposed_stats->fence_errors, 0u);

  // One-sided writes were rejected before the memcpy on every surviving node.
  uint64_t stale_rejects = 0;
  for (auto& [name, server] : cluster.directory) {
    if (name == old_primary) {
      continue;
    }
    auto buffer = server->GetReplicationBuffer(0);
    if (buffer.ok()) {
      stale_rejects += (*buffer)->stale_write_rejects();
    }
  }
  EXPECT_GT(stale_rejects, 0u);

  // Control plane: a tail flush from the deposed primary ships FlushLog
  // messages that the surviving backup fences by epoch (the promoted node
  // refuses them outright as replication ops on a primary). The local flush
  // itself succeeds — the fence error parks inside the region and shows up
  // in its stats.
  const uint64_t fence_before = deposed_stats->fence_errors;
  (void)deposed->FlushRegionTail(0);
  auto flushed_stats = deposed->PrimaryReplicationStats(0);
  ASSERT_TRUE(flushed_stats.ok());
  EXPECT_GT(flushed_stats->fence_errors, fence_before);
  uint64_t epoch_rejected = 0;
  for (const auto& backup : after->FindById(0)->backups) {
    auto rejected = cluster.directory.at(backup)->BackupEpochRejected(0);
    if (rejected.ok()) {
      epoch_rejected += *rejected;
    }
  }
  EXPECT_GT(epoch_rejected, 0u);

  // A fresh client (seeded off a live server — the deposed one would hand it
  // the stale map and its unreplicated local write) sees every acked write,
  // no trace of the fenced one, and the region keeps accepting writes under
  // the new configuration.
  auto fresh_client = cluster.MakeClient("fresh-client", old_primary);
  for (const auto& [key, value] : model) {
    auto v = fresh_client->Get(key);
    ASSERT_TRUE(v.ok()) << key << " " << v.status().ToString();
    EXPECT_EQ(*v, value) << key;
  }
  EXPECT_TRUE(fresh_client->Get(RobustCluster::Key(777777)).status().IsNotFound());
  ASSERT_TRUE(fresh_client->Put(RobustCluster::Key(777777), "post-failover").ok());
  auto v = fresh_client->Get(RobustCluster::Key(777777));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "post-failover");
}

// --- slow-not-dead backup ---------------------------------------------------

TEST(StuckBackupTest, StalledBackupDetachedAndReplacedWhileWritesFlow) {
  FaultInjector injector(/*seed=*/42);
  SCOPED_TRACE("seed=42 — replay with TEBIS_CHAOS_SEED=42");
  RobustClusterConfig config;
  config.num_servers = 3;
  config.num_regions = 1;
  config.replication_factor = 2;
  config.policy.max_consecutive_failures = 3;
  config.policy.call_deadline_ns = 5'000'000;  // 5 ms per control call
  config.injector = &injector;
  config.segment_size = 1 << 14;  // frequent tail flushes -> frequent control calls
  RobustCluster cluster(config);
  auto client = cluster.MakeClient("client0");

  auto map = cluster.master->current_map();
  const std::string primary_name = map->FindById(0)->primary;
  ASSERT_EQ(map->FindById(0)->backups.size(), 1u);
  const std::string stuck = map->FindById(0)->backups[0];
  RegionServer* primary = cluster.directory.at(primary_name);
  const std::string value(100, 'x');

  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(client->Put(RobustCluster::Key(i), value).ok());
  }

  // Stall the backup's CPU (control calls crawl; its NIC, heartbeat, and the
  // one-sided data path stay healthy) at 4x the per-call deadline.
  injector.StallNode(stuck, /*delay_micros=*/20'000);

  // Foreground writes must keep succeeding while strikes accumulate; the
  // health policy detaches the replica after 3 consecutive overdue calls.
  uint64_t max_put_nanos = 0;
  bool detached = false;
  for (int i = 0; i < 20000 && !detached; ++i) {
    const auto start = std::chrono::steady_clock::now();
    ASSERT_TRUE(client->Put(RobustCluster::Key(1000 + i), value).ok()) << i;
    const auto elapsed = std::chrono::steady_clock::now() - start;
    max_put_nanos = std::max<uint64_t>(
        max_put_nanos, std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
    auto stats = primary->PrimaryReplicationStats(0);
    ASSERT_TRUE(stats.ok());
    detached = stats->backups_detached > 0;
  }
  ASSERT_TRUE(detached) << "health policy never detached the stalled backup";
  auto stats = primary->PrimaryReplicationStats(0);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->backups_detached, 1u);
  EXPECT_GE(stats->slow_call_strikes, 3u);
  // Degraded-mode puts are bounded by a handful of stalled control calls, not
  // by the stall forever (generous ceiling for sanitizer builds).
  EXPECT_LT(max_put_nanos, 2'000'000'000ull);

  // The master consumes the /detached record and wires a full-synced
  // replacement: the stalled node is out, the spare is in.
  ASSERT_TRUE(WaitFor([&] {
    auto m = cluster.master->current_map();
    const RegionInfo* region = m->FindById(0);
    return region->backups.size() == 1 && region->backups[0] != stuck;
  })) << "master never reconciled the detach record";
  auto reconciled = cluster.master->current_map();
  EXPECT_GT(reconciled->FindById(0)->epoch, 1u);

  // The replacement is a real replica: crash the primary and read everything
  // back from the promoted spare.
  injector.UnstallNode(stuck);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(client->Put(RobustCluster::Key(i), "post-detach").ok());
  }
  cluster.directory.at(primary_name)->Crash();
  for (int i = 0; i < 100; i += 7) {
    auto v = client->Get(RobustCluster::Key(i));
    ASSERT_TRUE(v.ok()) << i << " " << v.status().ToString();
    EXPECT_EQ(*v, "post-detach");
  }
}

// --- cascading failures -----------------------------------------------------

TEST(CascadingFailureTest, ReplacementDiesMidFullSyncNextCandidateTried) {
  FaultInjector injector(/*seed=*/7);
  SCOPED_TRACE("seed=7 — replay with TEBIS_CHAOS_SEED=7");
  RobustClusterConfig config;
  config.num_servers = 4;
  config.num_regions = 1;
  config.replication_factor = 2;
  config.injector = &injector;
  RobustCluster cluster(config);
  auto client = cluster.MakeClient("client0");

  std::map<std::string, std::string> model;
  for (int i = 0; i < 600; ++i) {
    std::string key = RobustCluster::Key(i * 11);
    model[key] = "v-" + std::to_string(i);
    ASSERT_TRUE(client->Put(key, model[key]).ok());
  }
  auto map = cluster.master->current_map();
  const std::string primary_name = map->FindById(0)->primary;   // server0
  const std::string lost_backup = map->FindById(0)->backups[0]; // server1

  // First candidate (server2, directory order) is unreachable on its
  // replication endpoint: its full sync fails mid-transfer and the master
  // must fall through to the next spare instead of wedging.
  injector.HaltNode("server2:repl");
  cluster.directory.at(lost_backup)->Crash();

  auto recovered = cluster.master->current_map();
  ASSERT_EQ(recovered->FindById(0)->backups.size(), 1u);
  EXPECT_EQ(recovered->FindById(0)->backups[0], "server3");
  // The half-synced leftovers on the failed candidate were torn down.
  EXPECT_TRUE(
      cluster.directory.at("server2")->GetReplicationBuffer(0).status().IsNotFound());
  EXPECT_GT(injector.stats().halted_drops, 0u);

  // The survivor chain is real: lose the primary too and read everything back
  // from the replacement-of-a-replacement.
  injector.ReviveNode("server2:repl");
  cluster.directory.at(primary_name)->Crash();
  auto final_map = cluster.master->current_map();
  EXPECT_EQ(final_map->FindById(0)->primary, "server3");
  for (const auto& [key, value] : model) {
    auto v = client->Get(key);
    ASSERT_TRUE(v.ok()) << key << " " << v.status().ToString();
    EXPECT_EQ(*v, value) << key;
  }
  ASSERT_TRUE(client->Put(RobustCluster::Key(999999), "still-writable").ok());
}

TEST(CascadingFailureTest, StandbyMasterResumesHalfFinishedFailover) {
  RobustClusterConfig config;
  config.num_servers = 4;
  config.num_regions = 2;
  config.replication_factor = 3;
  RobustCluster cluster(config);

  // The leader will die right after promoting the new primary for region 0 —
  // with the recovery intent journaled but the re-attach/replay unfinished.
  std::atomic<bool> fired{false};
  cluster.master->set_step_hook([&](const std::string& point) {
    if (point == "failover-promoted:0" && !fired.exchange(true)) {
      return false;
    }
    return true;
  });
  Master standby(&cluster.zk, "m1", cluster.directory);
  ASSERT_TRUE(standby.Campaign().ok());
  EXPECT_FALSE(standby.IsLeader());

  auto client = cluster.MakeClient("client0");
  std::map<std::string, std::string> model;
  for (int i = 0; i < 800; ++i) {
    std::string key = RobustCluster::Key(i * 997);
    model[key] = "m-" + std::to_string(i);
    ASSERT_TRUE(client->Put(key, model[key]).ok());
  }

  auto before = cluster.master->current_map();
  const std::string old_primary = before->FindById(0)->primary;
  const uint64_t old_version = before->version();
  cluster.directory.at(old_primary)->Crash();
  ASSERT_TRUE(fired.load());
  // The dying leader journaled the intent but never published a new map.
  EXPECT_TRUE(cluster.zk.Exists("/recovery/r0"));
  EXPECT_EQ(cluster.master->current_map()->version(), old_version);

  // The standby wins the election and rolls the intent forward: promotion is
  // already done on the chosen server, so it re-fetches the promotion log map
  // and finishes the re-key/re-attach/replay, then replaces the dead node.
  cluster.master->Fail();
  ASSERT_TRUE(standby.IsLeader());
  auto resumed = standby.current_map();
  ASSERT_NE(resumed, nullptr);
  EXPECT_GT(resumed->version(), old_version);
  EXPECT_FALSE(cluster.zk.Exists("/recovery/r0"));
  for (const auto& region : resumed->regions()) {
    EXPECT_NE(region.primary, old_primary);
    for (const auto& backup : region.backups) {
      EXPECT_NE(backup, old_primary);
    }
  }
  EXPECT_GT(resumed->FindById(0)->epoch, 1u);

  // No acked write was lost across the torn failover, and the cluster keeps
  // accepting writes under the standby.
  for (const auto& [key, value] : model) {
    auto v = client->Get(key);
    ASSERT_TRUE(v.ok()) << key << " " << v.status().ToString();
    EXPECT_EQ(*v, value) << key;
  }
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(client->Put(RobustCluster::Key(i * 31), "standby-era").ok());
  }
}

TEST(CascadingFailureTest, AbandonedIntentFallsBackToMembershipRecovery) {
  RobustClusterConfig config;
  config.num_servers = 4;
  config.num_regions = 1;
  config.replication_factor = 3;
  RobustCluster cluster(config);

  std::atomic<bool> fired{false};
  cluster.master->set_step_hook([&](const std::string& point) {
    if (point == "failover-promoted:0" && !fired.exchange(true)) {
      return false;
    }
    return true;
  });

  auto client = cluster.MakeClient("client0");
  std::map<std::string, std::string> model;
  for (int i = 0; i < 500; ++i) {
    std::string key = RobustCluster::Key(i * 17);
    model[key] = "a-" + std::to_string(i);
    ASSERT_TRUE(client->Put(key, model[key]).ok());
  }

  auto before = cluster.master->current_map();
  const std::string old_primary = before->FindById(0)->primary;
  const std::string promoted = before->FindById(0)->backups[0];
  cluster.directory.at(old_primary)->Crash();
  ASSERT_TRUE(fired.load());
  ASSERT_TRUE(cluster.zk.Exists("/recovery/r0"));

  // The leader dies with the intent half-executed, and THEN the server the
  // intent names dies too — with no master alive to see it. The intent now
  // points at a corpse.
  cluster.master->Fail();
  cluster.directory.at(promoted)->Crash();

  // A standby elected only now must notice the intent's chosen primary is
  // dead, abandon the journal entry, and redo recovery from scratch off the
  // current membership — promoting the remaining live replica.
  Master standby(&cluster.zk, "m1", cluster.directory);
  ASSERT_TRUE(standby.Campaign().ok());
  ASSERT_TRUE(standby.IsLeader());
  EXPECT_FALSE(cluster.zk.Exists("/recovery/r0"));
  auto resumed = standby.current_map();
  ASSERT_NE(resumed, nullptr);
  const RegionInfo* region = resumed->FindById(0);
  ASSERT_NE(region, nullptr);
  EXPECT_NE(region->primary, old_primary);
  EXPECT_NE(region->primary, promoted);
  for (const auto& backup : region->backups) {
    EXPECT_NE(backup, old_primary);
    EXPECT_NE(backup, promoted);
  }
  for (const auto& [key, value] : model) {
    auto v = client->Get(key);
    ASSERT_TRUE(v.ok()) << key << " " << v.status().ToString();
    EXPECT_EQ(*v, value) << key;
  }
  ASSERT_TRUE(client->Put(RobustCluster::Key(424242), "post-abandon").ok());
}

}  // namespace
}  // namespace tebis
