// Read-replica serving (PR 6): backups answer gets/scans from their shipped
// (Send-Index) or rebuilt (Build-Index) indexes, fenced by the region's
// committed epoch and commit sequence. These suites drive concurrent writers
// and replica readers through the full client -> message protocol -> backup
// engine path, record every operation in a history, and check the advertised
// consistency properties:
//
//   - read-your-writes: a client never reads data older than its own last
//     acked write (kReadYourWrites mode carries the commit token);
//   - monotonic reads: per client, observed versions never go backwards even
//     while rotating across replicas (the observed-sequence fence);
//   - no future/torn data: a read never observes a value that was not yet
//     written, a half-applied value, or bytes from a half-shipped stream.
//
// The chaos suite replays the same checks during a fenced-primary failover
// and against a backup left with a half-shipped compaction stream (the PR 4
// abort path). Failing seeds replay exactly with TEBIS_CHAOS_SEED=<n>.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/cluster/client.h"
#include "src/cluster/coordinator.h"
#include "src/cluster/master.h"
#include "src/cluster/region_server.h"
#include "src/replication/local_backup_channel.h"
#include "src/replication/primary_region.h"
#include "src/replication/send_index_backup.h"
#include "src/storage/block_device.h"
#include "src/telemetry/telemetry.h"

namespace tebis {
namespace {

constexpr size_t kSegmentSize = 1 << 16;

std::string Key(uint64_t n) {
  char buf[32];
  snprintf(buf, sizeof(buf), "user%010llu", static_cast<unsigned long long>(n));
  return std::string(buf);
}

// Values carry their version in a parseable envelope; any read that returns
// bytes outside this shape is torn data.
std::string VersionedValue(uint64_t version) {
  return "v" + std::to_string(version) + "-payload-" + std::string(32, 'x');
}

bool ParseVersion(const std::string& value, uint64_t* version) {
  if (value.size() < 2 || value[0] != 'v') {
    return false;
  }
  char* end = nullptr;
  *version = strtoull(value.c_str() + 1, &end, 10);
  if (end == nullptr || *end != '-') {
    return false;
  }
  return value == VersionedValue(*version);
}

uint64_t ChaosSeed(uint64_t fallback) {
  if (const char* env = std::getenv("TEBIS_CHAOS_SEED")) {
    return strtoull(env, nullptr, 10);
  }
  return fallback;
}

// --- history-recording consistency checker ---------------------------------
//
// Every operation logs (op, key, version, logical begin/end timestamps); the
// checker replays the log after the run. Timestamps come from one global
// logical clock, so "acked before the read began" and "started before the
// read ended" are exact, not wall-clock approximations.

class History {
 public:
  uint64_t Tick() { return clock_.fetch_add(1, std::memory_order_relaxed); }

  void RecordWrite(const std::string& key, uint64_t version, uint64_t ts_begin,
                   uint64_t ts_end) {
    std::lock_guard<std::mutex> lock(mutex_);
    writes_[key].push_back({version, ts_begin, ts_end});
  }

  void RecordRead(int reader, const std::string& key, bool not_found, uint64_t version,
                  uint64_t ts_begin, uint64_t ts_end) {
    std::lock_guard<std::mutex> lock(mutex_);
    reads_.push_back({reader, key, not_found, version, ts_begin, ts_end});
  }

  size_t read_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return reads_.size();
  }

  // Returns human-readable violations; empty = the run is consistent within
  // the guarantees the read modes advertise.
  std::vector<std::string> Check() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> violations;
    // Per (reader, key) high-water mark for the monotonic-reads check. Each
    // reader is a single thread issuing synchronous ops, so its reads appear
    // in the log in program order and one forward pass suffices.
    std::map<std::pair<int, std::string>, uint64_t> monotonic;
    for (const auto& read : reads_) {
      uint64_t floor = 0;  // newest version acked before the read began
      uint64_t ceil = 0;   // newest version whose write started before the read ended
      auto it = writes_.find(read.key);
      if (it != writes_.end()) {
        for (const auto& write : it->second) {
          if (write.ts_end < read.ts_begin) {
            floor = std::max(floor, write.version);
          }
          if (write.ts_begin < read.ts_end) {
            ceil = std::max(ceil, write.version);
          }
        }
      }
      if (read.not_found) {
        if (floor > 0) {
          violations.push_back("reader " + std::to_string(read.reader) + " got NotFound for " +
                               read.key + " but v" + std::to_string(floor) +
                               " was acked before the read began");
        }
        continue;
      }
      if (read.version < floor) {
        violations.push_back("reader " + std::to_string(read.reader) + " read stale v" +
                             std::to_string(read.version) + " of " + read.key + " (v" +
                             std::to_string(floor) + " was acked before the read began)");
      }
      if (read.version > ceil) {
        violations.push_back("reader " + std::to_string(read.reader) + " read future v" +
                             std::to_string(read.version) + " of " + read.key +
                             " (newest write started before read end: v" +
                             std::to_string(ceil) + ")");
      }
      uint64_t& seen = monotonic[{read.reader, read.key}];
      if (read.version < seen) {
        violations.push_back("reader " + std::to_string(read.reader) + " went backwards on " +
                             read.key + ": v" + std::to_string(seen) + " then v" +
                             std::to_string(read.version));
      }
      seen = std::max(seen, read.version);
    }
    return violations;
  }

 private:
  struct WriteRec {
    uint64_t version;
    uint64_t ts_begin;
    uint64_t ts_end;
  };
  struct ReadRec {
    int reader;
    std::string key;
    bool not_found;
    uint64_t version;
    uint64_t ts_begin;
    uint64_t ts_end;
  };

  std::atomic<uint64_t> clock_{1};
  mutable std::mutex mutex_;
  std::map<std::string, std::vector<WriteRec>> writes_;
  std::vector<ReadRec> reads_;
};

// --- full-cluster fixture ---------------------------------------------------

struct ReplicaCluster {
  explicit ReplicaCluster(int replication_factor = 3, uint64_t key_space = 4000,
                          ReplicationMode mode = ReplicationMode::kSendIndex) {
    RegionServerOptions options;
    options.device_options.segment_size = kSegmentSize;
    options.device_options.max_segments = 1 << 16;
    options.kv_options.l0_max_entries = 256;
    options.replication_mode = mode;
    for (int i = 0; i < 3; ++i) {
      names.push_back("server" + std::to_string(i));
      servers.push_back(std::make_unique<RegionServer>(&fabric, &zk, names.back(), options));
      EXPECT_TRUE(servers.back()->Start().ok());
      directory[names.back()] = servers.back().get();
    }
    master = std::make_unique<Master>(&zk, "m0", directory);
    EXPECT_TRUE(master->Campaign().ok());
    auto map = RegionMap::CreateUniform(2, "user", 10, key_space, names, replication_factor);
    EXPECT_TRUE(map.ok());
    EXPECT_TRUE(master->Bootstrap(*map).ok());
  }

  ~ReplicaCluster() {
    for (auto& server : servers) {
      server->Stop();
    }
  }

  // One client per thread (a TebisClient is single-threaded by contract).
  // Servers listed in `avoid_` resolve to null — models clients learning a
  // deposed server is dead even though its process keeps running.
  std::unique_ptr<TebisClient> MakeClient(const std::string& name) {
    auto client = std::make_unique<TebisClient>(
        &fabric, name,
        [this](const std::string& server) -> ServerEndpoint* {
          if (server == avoided()) {
            return nullptr;
          }
          auto it = directory.find(server);
          return (it == directory.end() || it->second->crashed())
                     ? nullptr
                     : it->second->client_endpoint();
        },
        names);
    client->set_rpc_timeout_ns(1'000'000'000ull);
    EXPECT_TRUE(client->Connect().ok());
    return client;
  }

  void Avoid(size_t server_index) { avoid_.store(server_index, std::memory_order_release); }
  std::string avoided() const {
    const size_t i = avoid_.load(std::memory_order_acquire);
    return i < names.size() ? names[i] : std::string();
  }

  uint64_t SumMetric(const char* name) {
    uint64_t total = 0;
    for (auto& server : servers) {
      total += server->telemetry()->Snapshot().Sum(name);
    }
    return total;
  }

  Fabric fabric;
  Coordinator zk;
  std::vector<std::string> names;
  std::vector<std::unique_ptr<RegionServer>> servers;
  std::map<std::string, RegionServer*> directory;
  std::unique_ptr<Master> master;
  std::atomic<size_t> avoid_{~size_t{0}};
};

// One writer thread per key stripe (kReadYourWrites — it re-reads its own
// keys through replicas) plus reader threads in both replica modes that
// rotate across leased backups.
void RunHistoryWorkload(ReplicaCluster* cluster, History* history, int num_writers,
                        int num_readers, int versions_per_writer, int reads_per_reader) {
  constexpr uint64_t kStripe = 1000;  // writer w owns keys [w*kStripe, w*kStripe+kKeys)
  constexpr uint64_t kKeys = 8;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < num_writers; ++w) {
    threads.emplace_back([&, w] {
      auto client = cluster->MakeClient("writer" + std::to_string(w));
      client->set_read_mode(ReadMode::kReadYourWrites);
      for (int v = 1; v <= versions_per_writer && !failed.load(); ++v) {
        const std::string key = Key(w * kStripe + (v % kKeys));
        const uint64_t begin = history->Tick();
        Status s = client->Put(key, VersionedValue(v));
        if (!s.ok()) {
          ADD_FAILURE() << "writer put " << key << ": " << s.ToString();
          failed.store(true);
          return;
        }
        history->RecordWrite(key, v, begin, history->Tick());
        // Read-your-writes probe: immediately re-read, possibly via a replica.
        if (v % 4 == 0) {
          const uint64_t rbegin = history->Tick();
          auto value = client->Get(key);
          const uint64_t rend = history->Tick();
          uint64_t version = 0;
          if (value.ok() && !ParseVersion(*value, &version)) {
            ADD_FAILURE() << "writer read of " << key << " returned torn bytes";
            failed.store(true);
            return;
          }
          history->RecordRead(/*reader=*/1000 + w, key, !value.ok(), version, rbegin, rend);
        }
      }
    });
  }
  for (int r = 0; r < num_readers; ++r) {
    threads.emplace_back([&, r] {
      auto client = cluster->MakeClient("reader" + std::to_string(r));
      // Half the readers demand the current epoch with bounded staleness 0,
      // half carry read-your-writes fences; both must stay monotonic.
      if (r % 2 == 0) {
        client->set_read_mode(ReadMode::kBoundedStaleness, /*staleness_bound=*/0);
      } else {
        client->set_read_mode(ReadMode::kReadYourWrites);
      }
      uint64_t x = 88172645463325252ull + r;  // xorshift, thread-local stream
      for (int i = 0; i < reads_per_reader && !failed.load(); ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const int w = static_cast<int>(x % num_writers);
        const std::string key = Key(w * kStripe + (x >> 8) % kKeys);
        const uint64_t begin = history->Tick();
        auto value = client->Get(key);
        const uint64_t end = history->Tick();
        if (!value.ok() && !value.status().IsNotFound()) {
          ADD_FAILURE() << "reader get " << key << ": " << value.status().ToString();
          failed.store(true);
          return;
        }
        uint64_t version = 0;
        if (value.ok() && !ParseVersion(*value, &version)) {
          ADD_FAILURE() << "reader get " << key << " returned torn bytes: " << *value;
          failed.store(true);
          return;
        }
        history->RecordRead(r, key, !value.ok(), version, begin, end);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
}

TEST(ReplicaReadsTest, ConcurrentHistoryIsConsistentSendIndex) {
  ReplicaCluster cluster(/*replication_factor=*/3);
  History history;
  RunHistoryWorkload(&cluster, &history, /*num_writers=*/2, /*num_readers=*/3,
                     /*versions_per_writer=*/220, /*reads_per_reader=*/220);
  ASSERT_GE(history.read_count(), 200u);
  const std::vector<std::string> violations = history.Check();
  for (const auto& v : violations) {
    ADD_FAILURE() << v;
  }
  EXPECT_TRUE(violations.empty());
  // Replicas actually served reads (counters live on the backup engines, so
  // proxied reads would not move them).
  EXPECT_GT(cluster.SumMetric("backup.replica_gets"), 0u);
}

TEST(ReplicaReadsTest, ConcurrentHistoryIsConsistentBuildIndex) {
  ReplicaCluster cluster(/*replication_factor=*/3, /*key_space=*/4000,
                         ReplicationMode::kBuildIndex);
  History history;
  RunHistoryWorkload(&cluster, &history, /*num_writers=*/2, /*num_readers=*/2,
                     /*versions_per_writer=*/200, /*reads_per_reader=*/150);
  const std::vector<std::string> violations = history.Check();
  for (const auto& v : violations) {
    ADD_FAILURE() << v;
  }
  EXPECT_TRUE(violations.empty());
  EXPECT_GT(cluster.SumMetric("backup.replica_gets"), 0u);
}

TEST(ReplicaReadsTest, PrimaryOnlyModeNeverTouchesReplicas) {
  ReplicaCluster cluster;
  auto client = cluster.MakeClient("c0");
  // Default mode: seed-identical routing — zero replica traffic.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(client->Put(Key(i), VersionedValue(1)).ok());
  }
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(client->Get(Key(i)).ok());
  }
  EXPECT_EQ(client->stats().replica_reads, 0u);
  EXPECT_EQ(cluster.SumMetric("backup.replica_gets"), 0u);
  EXPECT_EQ(cluster.SumMetric("backup.replica_scans"), 0u);
}

TEST(ReplicaReadsTest, ReplicaScanMergesInFlightAndShippedData) {
  ReplicaCluster cluster;
  auto writer = cluster.MakeClient("w0");
  // Enough keys to trip L0 flushes (indexed levels on the backup) plus a
  // fresh unflushed suffix that only exists in the RDMA buffers.
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(writer->Put(Key(i), VersionedValue(i + 1)).ok());
  }
  auto reader = cluster.MakeClient("r0");
  reader->set_read_mode(ReadMode::kReadYourWrites);
  // Warm the reader's commit token with one write so the scan is RYW-fenced.
  ASSERT_TRUE(reader->Put(Key(0), VersionedValue(9001)).ok());
  auto pairs = reader->Scan(Key(0), 40);
  ASSERT_TRUE(pairs.ok()) << pairs.status().ToString();
  ASSERT_EQ(pairs->size(), 40u);
  for (size_t i = 0; i < pairs->size(); ++i) {
    EXPECT_EQ((*pairs)[i].key, Key(i));
    uint64_t version = 0;
    ASSERT_TRUE(ParseVersion((*pairs)[i].value, &version)) << (*pairs)[i].key;
    EXPECT_EQ(version, i == 0 ? 9001u : i + 1);
  }
  EXPECT_GT(cluster.SumMetric("backup.replica_scans"), 0u);
}

// Direct engine probe: the fence rejects a replica that is behind the
// requested epoch or commit sequence, with the reject counters attributing
// the reason.
TEST(ReplicaReadsTest, FenceRejectsStaleEpochAndSequence) {
  Fabric fabric;
  BlockDeviceOptions dev_options;
  dev_options.segment_size = kSegmentSize;
  dev_options.max_segments = 1 << 16;
  auto primary_device = BlockDevice::Create(dev_options);
  ASSERT_TRUE(primary_device.ok());
  auto backup_device = BlockDevice::Create(dev_options);
  ASSERT_TRUE(backup_device.ok());
  KvStoreOptions opts;
  opts.l0_max_entries = 128;
  auto primary_or =
      PrimaryRegion::Create(primary_device->get(), opts, ReplicationMode::kSendIndex);
  ASSERT_TRUE(primary_or.ok());
  auto primary = std::move(*primary_or);
  auto buffer = fabric.RegisterBuffer("backup0", "primary0", kSegmentSize);
  auto backup_or = SendIndexBackupRegion::Create(backup_device->get(), opts, buffer);
  ASSERT_TRUE(backup_or.ok());
  auto backup = std::move(*backup_or);
  primary->AddBackup(std::make_unique<LocalBackupChannel>(&fabric, "primary0", buffer,
                                                          backup.get(), nullptr));
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(primary->Put(Key(i), VersionedValue(i + 1)).ok());
  }
  uint64_t visible_seq = 0;
  auto ok = backup->Get(Key(7), /*min_epoch=*/0, /*min_seq=*/0, &visible_seq);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  uint64_t version = 0;
  ASSERT_TRUE(ParseVersion(*ok, &version));
  EXPECT_EQ(version, 8u);
  EXPECT_GT(visible_seq, 0u);
  // A fence at the replica's exact visible sequence is satisfiable.
  auto at_fence = backup->Get(Key(7), 0, visible_seq, &visible_seq);
  EXPECT_TRUE(at_fence.ok());
  // Beyond it: FailedPrecondition, attributed to the sequence fence.
  auto ahead = backup->Get(Key(7), 0, visible_seq + 1000, nullptr);
  ASSERT_FALSE(ahead.ok());
  EXPECT_TRUE(ahead.status().IsFailedPrecondition()) << ahead.status().ToString();
  // Epoch fence: the replica sits at its bootstrap epoch; demand a future one.
  auto future_epoch = backup->Get(Key(7), /*min_epoch=*/99, 0, nullptr);
  ASSERT_FALSE(future_epoch.ok());
  EXPECT_TRUE(future_epoch.status().IsFailedPrecondition());
  const SendIndexBackupStats stats = backup->stats();
  EXPECT_EQ(stats.read_rejects_seq, 1u);
  EXPECT_EQ(stats.read_rejects_epoch, 1u);
  // Every attempt counted, including the rejected ones.
  EXPECT_EQ(stats.replica_gets, 4u);
}

// --- chaos: replica reads during a fenced-primary failover -------------------

TEST(ReplicaReadsChaosTest, ReadsStayConsistentAcrossFencedFailover) {
  const uint64_t seed = ChaosSeed(11);
  SCOPED_TRACE("seed=" + std::to_string(seed) + " — replay with TEBIS_CHAOS_SEED=" +
               std::to_string(seed));
  ReplicaCluster cluster(/*replication_factor=*/3);
  History history;
  auto writer = cluster.MakeClient("w0");
  writer->set_read_mode(ReadMode::kReadYourWrites);
  for (int v = 1; v <= 60; ++v) {
    const std::string key = Key(v % 16);
    const uint64_t begin = history.Tick();
    ASSERT_TRUE(writer->Put(key, VersionedValue(v)).ok());
    history.RecordWrite(key, v, begin, history.Tick());
  }
  // Depose a server chosen by the seed: the failure detector fires, the
  // master promotes replacements under a bumped epoch, and the deposed
  // server keeps running with its stale configuration. Clients treat it as
  // dead (Avoid) — its replication traffic is epoch-fenced regardless, and a
  // reachable-but-deposed primary serving unfenced primary-path reads is the
  // lease-expiry problem DESIGN.md scopes out.
  const size_t victim = seed % cluster.servers.size();
  cluster.servers[victim]->DropCoordinatorSession();
  cluster.Avoid(victim);
  // Concurrent replica reads race the failover. Every result must be either
  // committed-epoch data (checker bounds) or an internal retry; never torn
  // bytes, never a fenced-off pre-epoch value.
  std::thread reader_thread([&] {
    auto reader = cluster.MakeClient("r0");
    reader->set_read_mode(ReadMode::kReadYourWrites);
    uint64_t x = seed * 2654435761ull + 1;
    for (int i = 0; i < 240; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      const std::string key = Key(x % 16);
      const uint64_t begin = history.Tick();
      auto value = reader->Get(key);
      const uint64_t end = history.Tick();
      if (!value.ok() && !value.status().IsNotFound()) {
        continue;  // mid-failover unavailability is allowed; wrong data is not
      }
      uint64_t version = 0;
      if (value.ok() && !ParseVersion(*value, &version)) {
        ADD_FAILURE() << "torn read of " << key << " during failover: " << *value;
        return;
      }
      history.RecordRead(0, key, !value.ok(), version, begin, end);
    }
  });
  // Writes continue through the failover (the client retries through fresh
  // maps). A write that surfaces an error is NOT recorded as committed.
  for (int v = 61; v <= 160; ++v) {
    const std::string key = Key(v % 16);
    const uint64_t begin = history.Tick();
    Status s = writer->Put(key, VersionedValue(v));
    if (!s.ok()) {
      continue;
    }
    history.RecordWrite(key, v, begin, history.Tick());
  }
  reader_thread.join();
  const std::vector<std::string> violations = history.Check();
  for (const auto& v : violations) {
    ADD_FAILURE() << v;
  }
  EXPECT_TRUE(violations.empty());
  // The failover actually happened: the victim is no longer a primary, and
  // its read leases were revoked with the detach.
  auto map = cluster.master->current_map();
  ASSERT_NE(map, nullptr);
  for (const auto& region : map->regions()) {
    EXPECT_NE(region.primary, cluster.names[victim]);
    EXPECT_FALSE(region.HasReadLease(cluster.names[victim]));
  }
}

// --- chaos: reads against a backup holding a half-shipped stream -------------

std::unique_ptr<BlockDevice> MakeDevice() {
  BlockDeviceOptions options;
  options.segment_size = kSegmentSize;
  options.max_segments = 1 << 16;
  auto device = BlockDevice::Create(options);
  EXPECT_TRUE(device.ok());
  return std::move(*device);
}

// Forwards everything to the wrapped in-process channel, but starts failing
// index-segment shipments after a seeded budget — leaving the backup with an
// open stream whose tree never commits (the PR 4 abort path).
class HalfShipChannel : public BackupChannel {
 public:
  // `ships` is owned by the test: the primary destroys the channel when it
  // detaches the struck-out backup, so the counter must outlive us.
  HalfShipChannel(std::unique_ptr<LocalBackupChannel> inner, uint64_t allowed_ships,
                  std::atomic<uint64_t>* ships)
      : inner_(std::move(inner)), allowed_ships_(allowed_ships), ships_(ships) {}

  Status RdmaWriteLog(uint64_t offset, Slice bytes) override {
    inner_->set_epoch(epoch());
    return inner_->RdmaWriteLog(offset, bytes);
  }
  Status FlushLog(SegmentId segment, StreamId stream, uint64_t commit_seq) override {
    inner_->set_epoch(epoch());
    return inner_->FlushLog(segment, stream, commit_seq);
  }
  Status CompactionBegin(uint64_t id, int src, int dst, StreamId stream) override {
    inner_->set_epoch(epoch());
    return inner_->CompactionBegin(id, src, dst, stream);
  }
  Status ShipIndexSegment(uint64_t id, int dst, int tree_level, SegmentId segment, Slice bytes,
                          StreamId stream, uint32_t payload_crc) override {
    if (ships_->fetch_add(1, std::memory_order_relaxed) >= allowed_ships_) {
      return Status::Unavailable("injected mid-ship drop");
    }
    inner_->set_epoch(epoch());
    return inner_->ShipIndexSegment(id, dst, tree_level, segment, bytes, stream, payload_crc);
  }
  Status CompactionEnd(uint64_t id, int src, int dst, const BuiltTree& tree, StreamId stream,
                       const std::vector<SegmentChecksum>& seg_checksums) override {
    if (ships_->load(std::memory_order_relaxed) >= allowed_ships_) {
      return Status::Unavailable("injected end drop after mid-ship failure");
    }
    inner_->set_epoch(epoch());
    return inner_->CompactionEnd(id, src, dst, tree, stream, seg_checksums);
  }
  Status TrimLog(size_t segments) override {
    inner_->set_epoch(epoch());
    return inner_->TrimLog(segments);
  }
  Status SetLogReplayStart(size_t index) override {
    inner_->set_epoch(epoch());
    return inner_->SetLogReplayStart(index);
  }
  const std::string& backup_name() const override { return inner_->backup_name(); }

 private:
  std::unique_ptr<LocalBackupChannel> inner_;
  const uint64_t allowed_ships_;
  std::atomic<uint64_t>* const ships_;
};

TEST(ReplicaReadsChaosTest, HalfShippedStreamNeverLeaksIntoReads) {
  const uint64_t seed = ChaosSeed(3);
  SCOPED_TRACE("seed=" + std::to_string(seed) + " — replay with TEBIS_CHAOS_SEED=" +
               std::to_string(seed));
  Fabric fabric;
  auto primary_device = MakeDevice();
  auto backup_device = MakeDevice();
  KvStoreOptions opts;
  opts.l0_max_entries = 128;
  opts.growth_factor = 2;
  opts.max_levels = 3;
  auto primary_or =
      PrimaryRegion::Create(primary_device.get(), opts, ReplicationMode::kSendIndex);
  ASSERT_TRUE(primary_or.ok());
  auto primary = std::move(*primary_or);
  auto buffer = fabric.RegisterBuffer("backup0", "primary0", kSegmentSize);
  auto backup_or = SendIndexBackupRegion::Create(backup_device.get(), opts, buffer);
  ASSERT_TRUE(backup_or.ok());
  auto backup = std::move(*backup_or);
  // The seeded budget lets a few segments of some compaction land before the
  // stream stalls; different seeds cut the stream at different points.
  std::atomic<uint64_t> ships{0};
  auto channel = std::make_unique<HalfShipChannel>(
      std::make_unique<LocalBackupChannel>(&fabric, "primary0", buffer, backup.get(), nullptr),
      /*allowed_ships=*/2 + seed % 5, &ships);
  ReplicationPolicy policy;
  policy.max_consecutive_failures = 1;  // strike out on the first drop
  primary->set_replication_policy(policy);
  primary->AddBackup(std::move(channel));

  // `backup_floor` is the committed state just before the put whose
  // compaction struck the replica out: every earlier record was fanned out
  // synchronously, so the backup must serve at least these versions.
  std::map<std::string, uint64_t> committed;
  std::map<std::string, uint64_t> backup_floor;
  uint64_t version = 0;
  for (int i = 0; i < 1200; ++i) {
    const std::string key = Key(i % 300);
    if (primary->replication_stats().backups_detached == 0) {
      backup_floor = committed;
    }
    ++version;
    ASSERT_TRUE(primary->Put(key, VersionedValue(version)).ok());
    committed[key] = version;
  }
  ASSERT_TRUE(primary->FlushL0().ok());
  ASSERT_GT(ships.load(), 0u);
  // The drop struck the replica out: the primary detached it mid-stream and
  // kept serving (degraded mode).
  ASSERT_EQ(primary->replication_stats().backups_detached, 1u);
  ASSERT_FALSE(backup_floor.empty());

  // Every replica read must now return data the primary committed — from
  // flushed segments and previously committed levels — never bytes from the
  // half-shipped tree, never torn values, never a version that was not yet
  // acked at the detach point.
  for (const auto& [key, floor] : backup_floor) {
    uint64_t visible_seq = 0;
    auto value = backup->Get(key, /*min_epoch=*/0, /*min_seq=*/0, &visible_seq);
    ASSERT_TRUE(value.ok()) << key << ": " << value.status().ToString();
    uint64_t got = 0;
    ASSERT_TRUE(ParseVersion(*value, &got)) << key << " returned torn bytes";
    EXPECT_GE(got, floor) << key;
    EXPECT_LE(got, committed[key]) << key;
  }
  // The half-shipped stream is still open on the backup — its tree never
  // committed, so it is invisible to every read above.
  EXPECT_GE(backup->active_streams(), 1u);
  // A later promotion aborts it; the promoted store serves only committed
  // data (same floor/ceiling bounds through the new primary engine).
  auto promoted = backup->Promote();
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  EXPECT_GT(backup->stats().streams_aborted, 0u);
  auto new_primary = PrimaryRegion::CreateFromStore(
      backup_device.get(), ReplicationMode::kSendIndex, std::move(*promoted));
  ASSERT_TRUE(new_primary.ok());
  for (const auto& [key, floor] : backup_floor) {
    auto value = (*new_primary)->Get(key);
    ASSERT_TRUE(value.ok()) << key << ": " << value.status().ToString();
    uint64_t got = 0;
    ASSERT_TRUE(ParseVersion(*value, &got)) << key << " returned torn bytes after promotion";
    EXPECT_GE(got, floor) << key;
    EXPECT_LE(got, committed[key]) << key;
  }
}

}  // namespace
}  // namespace tebis
