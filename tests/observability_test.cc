// Cluster-wide observability (PR 10): whole-tree trace eviction, request
// trace ids and the trailing wire field, histogram exemplars and serialized
// merging, the slow-op ring, health watchdog transitions, concurrent scrapes
// vs hot-path updates, end-to-end request traces (direct channels and the
// RPC cluster), and the master's metrics federation — including the math
// (merged totals == summed per-node snapshots) and staleness under an
// unreachable node driven by the FaultInjector.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/cluster/client.h"
#include "src/cluster/cluster_scraper.h"
#include "src/cluster/coordinator.h"
#include "src/cluster/kv_wire.h"
#include "src/cluster/master.h"
#include "src/cluster/region_server.h"
#include "src/cluster/stats_wire.h"
#include "src/common/histogram.h"
#include "src/telemetry/telemetry.h"
#include "src/testing/fault_injector.h"
#include "src/ycsb/sim_cluster.h"

namespace tebis {
namespace {

std::string Key(int i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "user%010d", i);
  return buf;
}

SpanRecord MakeSpan(TraceId trace, const char* name, uint64_t start_ns, uint64_t end_ns) {
  SpanRecord span;
  span.trace = trace;
  span.name = name;
  span.node = "n0";
  span.start_ns = start_ns;
  span.end_ns = end_ns;
  return span;
}

// --- trace ids & whole-tree eviction --------------------------------------------

TEST(RequestTraceTest, RequestIdsSetBit63AndCompactionIdsDoNot) {
  const TraceId request = MakeRequestTraceId(0x1234, 7);
  EXPECT_TRUE(IsRequestTrace(request));
  EXPECT_NE(request, kNoTrace);
  const TraceId compaction = MakeTraceId(/*epoch=*/5, /*stream=*/3);
  EXPECT_FALSE(IsRequestTrace(compaction));
  // Distinct sources and sequences produce distinct ids.
  EXPECT_NE(MakeRequestTraceId(0x1234, 8), request);
  EXPECT_NE(MakeRequestTraceId(0x4321, 7), request);
}

TEST(TraceBufferTest, EvictsWholeTraceTreesNotIndividualSpans) {
  TraceBuffer buffer(/*capacity=*/6);
  const TraceId a = MakeRequestTraceId(1, 1);
  const TraceId b = MakeRequestTraceId(1, 2);
  // Tree A: three spans, interleaved with tree B's first span.
  buffer.Record(MakeSpan(a, "client", 10, 40));
  buffer.Record(MakeSpan(b, "client", 15, 45));
  buffer.Record(MakeSpan(a, "primary_apply", 11, 39));
  buffer.Record(MakeSpan(a, "engine_apply", 12, 30));
  buffer.Record(MakeSpan(b, "primary_apply", 16, 44));
  buffer.Record(MakeSpan(b, "engine_apply", 17, 43));
  ASSERT_EQ(buffer.Snapshot().size(), 6u);

  // One more span: the buffer is full, so the *whole* oldest tree (A, three
  // spans) must go — not just the single oldest span.
  const TraceId c = MakeRequestTraceId(1, 3);
  buffer.Record(MakeSpan(c, "client", 50, 60));
  std::vector<SpanRecord> spans = buffer.Snapshot();
  EXPECT_EQ(spans.size(), 4u);
  for (const SpanRecord& span : spans) {
    EXPECT_NE(span.trace, a) << "a partial tree survived eviction";
  }
  // B's tree is intact.
  size_t b_spans = 0;
  for (const SpanRecord& span : spans) {
    b_spans += span.trace == b ? 1 : 0;
  }
  EXPECT_EQ(b_spans, 3u);
  EXPECT_EQ(buffer.dropped(), 3u);
}

TEST(TraceBufferTest, DisabledBufferRecordsNothing) {
  TraceBuffer buffer(0);
  EXPECT_FALSE(buffer.enabled());
  buffer.Record(MakeSpan(MakeRequestTraceId(1, 1), "client", 1, 2));
  EXPECT_TRUE(buffer.Snapshot().empty());
}

// --- histogram merging & exemplars ----------------------------------------------

TEST(HistogramTest, SerializedMergeRoundTripsTheDistribution) {
  Histogram a;
  Histogram b;
  for (uint64_t v : {100u, 200u, 3000u, 40000u}) {
    a.Record(v);
  }
  for (uint64_t v : {150u, 2500u, 500000u}) {
    b.Record(v);
  }
  // Merge b into a through the sparse wire form, as federation does.
  Histogram merged = a;
  merged.MergeSerialized(b.count(), b.sum(), b.min(), b.max(), b.SparseBuckets());
  Histogram direct = a;
  direct.Merge(b);
  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_EQ(merged.sum(), direct.sum());
  EXPECT_EQ(merged.min(), direct.min());
  EXPECT_EQ(merged.max(), direct.max());
  EXPECT_EQ(merged.Percentile(50), direct.Percentile(50));
  EXPECT_EQ(merged.Percentile(99), direct.Percentile(99));
}

TEST(HistogramTest, CorruptSparseBucketsCannotWriteOutOfBounds) {
  Histogram h;
  h.MergeSerialized(1, 100, 100, 100, {{0xFFFFFFFFu, 1}});
  EXPECT_EQ(h.count(), 1u);  // clamped into the last bucket, no crash
}

TEST(HistogramTest, LastBucketPercentileIsClampedToObservedMax) {
  Histogram h;
  const uint64_t huge = 3'000'000'000'000'000'000ull;  // lands near the top group
  h.Record(huge);
  // The saturated bucket bound must not wrap and pull the answer to garbage;
  // the percentile is clamped to the observed max.
  EXPECT_EQ(h.Percentile(99), huge);
  EXPECT_EQ(h.max(), huge);
}

TEST(HistogramInstrumentTest, ExemplarsKeepTheMostRecentSampledTraces) {
  HistogramInstrument instrument;
  instrument.Record(100);  // unsampled: no exemplar
  EXPECT_TRUE(instrument.Exemplars().empty());
  for (uint64_t i = 1; i <= 6; ++i) {
    instrument.Record(i * 1000, MakeRequestTraceId(9, i));
  }
  std::vector<HistogramExemplar> exemplars = instrument.Exemplars();
  ASSERT_EQ(exemplars.size(), HistogramInstrument::kMaxExemplars);
  // Ring keeps the latest four, oldest first.
  EXPECT_EQ(exemplars.front().trace, MakeRequestTraceId(9, 3));
  EXPECT_EQ(exemplars.back().trace, MakeRequestTraceId(9, 6));
  EXPECT_EQ(exemplars.back().value, 6000u);
}

TEST(HistogramInstrumentTest, ExemplarsRideTheSnapshotJson) {
  Telemetry plane;
  HistogramInstrument* h =
      plane.metrics()->GetHistogram("trace.request_latency_ns", {{"op", "put"}});
  h->Record(1234, MakeRequestTraceId(2, 0));
  const std::string json = plane.Snapshot().Json();
  EXPECT_NE(json.find("_exemplars"), std::string::npos) << json;
  EXPECT_NE(json.find("@1234"), std::string::npos) << json;
}

// --- slow-op log ----------------------------------------------------------------

TEST(SlowOpLogTest, RecordsOnlyOpsOverTheirTypeThreshold) {
  SlowOpLog log(4);
  SlowOpPolicy policy;
  policy.put_ns = 1000;
  log.Configure(policy);
  EXPECT_EQ(log.threshold(SlowOpType::kPut), 1000u);
  EXPECT_EQ(log.threshold(SlowOpType::kGet), 0u);  // disabled

  EXPECT_FALSE(log.MaybeRecord(SlowOpType::kPut, "fast", 1, 1, kNoTrace, 999, nullptr, 10));
  EXPECT_FALSE(log.MaybeRecord(SlowOpType::kGet, "any", 1, 1, kNoTrace, 1u << 30, nullptr, 10));
  RequestStageTimings stages;
  stages.engine_ns = 800;
  stages.doorbell_ns = 300;
  EXPECT_TRUE(log.MaybeRecord(SlowOpType::kPut, "slow-key-0123456789abcdef", 3, 7,
                              MakeRequestTraceId(1, 1), 1500, &stages, 42));
  std::vector<SlowOpRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, SlowOpType::kPut);
  EXPECT_EQ(records[0].key_prefix.size(), SlowOpLog::kKeyPrefixBytes);
  EXPECT_EQ(records[0].region, 3u);
  EXPECT_EQ(records[0].epoch, 7u);
  EXPECT_EQ(records[0].total_ns, 1500u);
  EXPECT_EQ(records[0].stages.engine_ns, 800u);
  EXPECT_EQ(records[0].stages.doorbell_ns, 300u);
  EXPECT_TRUE(IsRequestTrace(records[0].trace));
}

TEST(SlowOpLogTest, RingWrapsAndCountsDrops) {
  SlowOpLog log(2);
  SlowOpPolicy policy;
  policy.get_ns = 1;
  log.Configure(policy);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(log.MaybeRecord(SlowOpType::kGet, Key(i), 0, 0, kNoTrace, 100 + i, nullptr, i));
  }
  EXPECT_EQ(log.total(), 5u);
  EXPECT_EQ(log.dropped(), 3u);
  std::vector<SlowOpRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  // The two survivors are the newest two.
  EXPECT_EQ(records[0].total_ns + records[1].total_ns, 103u + 104u);
}

// --- health watchdog ------------------------------------------------------------

TEST(HealthWatchdogTest, TransitionsGreenYellowRedOnWindowDeltas) {
  Telemetry plane;
  Counter* stall = plane.metrics()->GetCounter("kv.write_stall_ns");
  HealthThresholds thresholds;
  thresholds.stall_ns_yellow = 1000;
  thresholds.stall_ns_red = 100000;
  plane.EnableHealthWatchdog(thresholds);

  // First evaluation: no baseline window yet, reports green.
  MetricsSnapshot snap = plane.Snapshot();
  ASSERT_NE(snap.Find("health.node"), nullptr);
  EXPECT_EQ(snap.Find("health.node")->value, kHealthGreen);

  stall->Add(5000);  // over yellow, under red for this window
  snap = plane.Snapshot();
  EXPECT_EQ(snap.Find("health.flow_control")->value, kHealthYellow);
  EXPECT_EQ(snap.Find("health.node")->value, kHealthYellow);

  stall->Add(200000);  // over red
  snap = plane.Snapshot();
  EXPECT_EQ(snap.Find("health.flow_control")->value, kHealthRed);
  EXPECT_EQ(snap.Find("health.node")->value, kHealthRed);

  // A quiet window recovers to green — the detector looks at deltas.
  snap = plane.Snapshot();
  EXPECT_EQ(snap.Find("health.flow_control")->value, kHealthGreen);
  EXPECT_EQ(snap.Find("health.node")->value, kHealthGreen);
}

TEST(HealthWatchdogTest, QuarantinedLevelsAreAnAbsoluteRedSignal) {
  Telemetry plane;
  Gauge* quarantined = plane.metrics()->GetGauge("integrity.quarantined_levels");
  plane.EnableHealthWatchdog();
  quarantined->Set(1);
  // Red from the very first evaluation: absolute signals need no baseline.
  MetricsSnapshot snap = plane.Snapshot();
  EXPECT_EQ(snap.Find("health.integrity")->value, kHealthRed);
  EXPECT_EQ(snap.Find("health.node")->value, kHealthRed);
  quarantined->Set(0);
  snap = plane.Snapshot();
  EXPECT_EQ(snap.Find("health.integrity")->value, kHealthGreen);
}

// --- concurrent scrapes vs hot-path updates -------------------------------------

TEST(TelemetryConcurrencyTest, ScrapeJsonRacesHotPathUpdatesSafely) {
  Telemetry plane(/*trace_capacity=*/256);
  plane.EnableHealthWatchdog();
  SlowOpPolicy policy;
  policy.put_ns = 1;
  plane.ConfigureSlowOps(policy);

  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 2000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&plane, w] {
      Counter* counter = plane.metrics()->GetCounter(
          "kv.write_stall_ns", {{"node", "s" + std::to_string(w)}});
      HistogramInstrument* hist = plane.metrics()->GetHistogram(
          "trace.request_latency_ns", {{"op", "put"}});
      for (int i = 0; i < kOpsPerWriter; ++i) {
        counter->Add(1);
        const TraceId trace =
            i % 16 == 0 ? MakeRequestTraceId(static_cast<uint64_t>(w), i) : kNoTrace;
        hist->Record(100 + i, trace);
        plane.slow_ops()->MaybeRecord(SlowOpType::kPut, Key(i), 0, 0, trace, 100 + i,
                                      nullptr, i);
        if (trace != kNoTrace) {
          SpanRecord span;
          span.trace = trace;
          span.name = "client";
          span.node = "s" + std::to_string(w);
          span.start_ns = static_cast<uint64_t>(i);
          span.end_ns = static_cast<uint64_t>(i) + 50;
          plane.traces()->Record(std::move(span));
        }
      }
    });
  }
  std::thread scraper([&plane, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::string json = plane.ScrapeJson("racer");
      EXPECT_FALSE(json.empty());
    }
  });
  for (std::thread& t : writers) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  scraper.join();

  MetricsSnapshot snap = plane.Snapshot();
  EXPECT_EQ(snap.Sum("kv.write_stall_ns"), static_cast<uint64_t>(kWriters) * kOpsPerWriter);
  const MetricSample* hist = snap.Find("trace.request_latency_ns");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->histogram.count(), static_cast<uint64_t>(kWriters) * kOpsPerWriter);
  EXPECT_EQ(plane.slow_ops()->total(), static_cast<uint64_t>(kWriters) * kOpsPerWriter);
}

// --- trailing trace wire field --------------------------------------------------

TEST(TraceWireTest, UnsampledFramesAreByteIdenticalToTheSeedFormat) {
  // kNoTrace must append nothing: the encodings with and without the default
  // argument are the same bytes.
  EXPECT_EQ(EncodePutRequest("k", "v"), EncodePutRequest("k", "v", kNoTrace));
  const std::string unsampled = EncodePutRequest("key", "value");
  const std::string sampled = EncodePutRequest("key", "value", MakeRequestTraceId(1, 1));
  ASSERT_EQ(sampled.size(), unsampled.size() + 9);  // [u8 tag][u64 id]
  EXPECT_EQ(sampled.substr(0, unsampled.size()), unsampled);
  EXPECT_EQ(static_cast<uint8_t>(sampled[unsampled.size()]), kTraceFieldTag);
}

TEST(TraceWireTest, DecodeRecoversTheTraceAndToleratesDamage) {
  const TraceId trace = MakeRequestTraceId(3, 42);
  const std::string sampled = EncodePutRequest("key", "value", trace);
  Slice key;
  Slice value;
  TraceId decoded = kNoTrace;
  ASSERT_TRUE(DecodePutRequest(sampled, &key, &value, &decoded).ok());
  EXPECT_EQ(decoded, trace);
  EXPECT_EQ(key.ToString(), "key");
  EXPECT_EQ(value.ToString(), "value");

  // Truncating the trailing field anywhere degrades to "unsampled" without
  // failing the fields before it.
  for (size_t cut = 1; cut <= 9; ++cut) {
    decoded = trace;
    ASSERT_TRUE(DecodePutRequest(Slice(sampled.data(), sampled.size() - cut), &key, &value,
                                 &decoded)
                    .ok())
        << "cut=" << cut;
    EXPECT_EQ(decoded, kNoTrace) << "cut=" << cut;
    EXPECT_EQ(key.ToString(), "key");
  }

  // A corrupted tag byte likewise reads as unsampled.
  std::string corrupt = sampled;
  corrupt[sampled.size() - 9] = static_cast<char>(0x11);
  decoded = trace;
  ASSERT_TRUE(DecodePutRequest(corrupt, &key, &value, &decoded).ok());
  EXPECT_EQ(decoded, kNoTrace);

  // Callers that never ask for the trace still decode sampled frames.
  ASSERT_TRUE(DecodePutRequest(sampled, &key, &value).ok());
}

// --- end-to-end request trace, direct channels (SimCluster) ---------------------

SimClusterOptions TracedClusterOptions() {
  SimClusterOptions options;
  options.num_servers = 3;
  options.num_regions = 4;
  options.replication_factor = 2;
  options.kv_options.l0_max_entries = 128;
  options.device_options.segment_size = 1 << 16;
  options.device_options.max_segments = 1 << 14;
  options.request_trace_sample_every = 1;  // sample everything
  return options;
}

TEST(RequestTraceE2ETest, SampledPutBuildsOneTreeAcrossClientEngineDoorbellBackup) {
  auto cluster = SimCluster::Create(TracedClusterOptions());
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->Put(Key(1), "value-1").ok());

  // Every span of the request must share one bit-63 trace id.
  std::set<TraceId> request_traces;
  std::map<std::string, int> by_name;
  for (const SpanRecord& span : (*cluster)->Traces()) {
    if (!IsRequestTrace(span.trace)) {
      continue;  // compaction pipeline spans may coexist
    }
    request_traces.insert(span.trace);
    by_name[span.name]++;
  }
  ASSERT_EQ(request_traces.size(), 1u);
  EXPECT_EQ(by_name["client"], 1);
  EXPECT_EQ(by_name["primary_apply"], 1);
  EXPECT_EQ(by_name["engine_apply"], 1);
  EXPECT_EQ(by_name["doorbell"], 1);
  // rf=2 -> one backup -> one commit span, recorded on the *backup's* behalf
  // by the commit listener (reconstructed on the backup side of the fabric).
  EXPECT_EQ(by_name["backup_commit"], 1);

  // The sampled op landed an exemplar linking the latency histogram to it.
  MetricsSnapshot snap = (*cluster)->MetricsNow();
  const MetricSample* hist = snap.Find("trace.request_latency_ns", "op", "put");
  ASSERT_NE(hist, nullptr);
  ASSERT_FALSE(hist->exemplars.empty());
  EXPECT_EQ(hist->exemplars.back().trace, *request_traces.begin());
}

TEST(RequestTraceE2ETest, StageBreakdownLandsInTheSlowOpLog) {
  SimClusterOptions options = TracedClusterOptions();
  options.slow_op_policy.put_ns = 1;  // everything is "slow"
  auto cluster = SimCluster::Create(options);
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->Put(Key(2), "value-2").ok());

  std::vector<SlowOpRecord> records = (*cluster)->telemetry()->slow_ops()->Snapshot();
  ASSERT_EQ(records.size(), 1u);
  const SlowOpRecord& r = records[0];
  EXPECT_EQ(r.type, SlowOpType::kPut);
  EXPECT_TRUE(IsRequestTrace(r.trace));
  EXPECT_GT(r.total_ns, 0u);
  // Inclusive stage nesting: total covers engine, engine covers the doorbell.
  EXPECT_GT(r.stages.engine_ns, 0u);
  EXPECT_GT(r.stages.doorbell_ns, 0u);
  EXPECT_GE(r.total_ns, r.stages.engine_ns);
  EXPECT_GE(r.stages.engine_ns, r.stages.doorbell_ns);
  EXPECT_GT(r.stages.backup_commit_ns, 0u);
  // And the scrape carries the ring.
  EXPECT_NE((*cluster)->ScrapeJson().find("slow_ops"), std::string::npos);
}

TEST(RequestTraceE2ETest, UnsampledClusterRecordsNoRequestSpans) {
  SimClusterOptions options = TracedClusterOptions();
  options.request_trace_sample_every = 0;
  auto cluster = SimCluster::Create(options);
  ASSERT_TRUE(cluster.ok());
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE((*cluster)->Put(Key(i), "v").ok());
  }
  for (const SpanRecord& span : (*cluster)->Traces()) {
    EXPECT_FALSE(IsRequestTrace(span.trace));
  }
}

// --- end-to-end request trace over the RPC cluster ------------------------------

RegionServerOptions SmallServerOptions() {
  RegionServerOptions options;
  options.device_options.segment_size = 1 << 16;
  options.device_options.max_segments = 1 << 14;
  options.kv_options.l0_max_entries = 128;
  return options;
}

TEST(RequestTraceE2ETest, RpcClusterCarriesTheTraceIdThroughTheWire) {
  Fabric fabric;
  Coordinator zk;
  std::map<std::string, RegionServer*> directory;
  RegionServer s0(&fabric, &zk, "s0", SmallServerOptions());
  RegionServer s1(&fabric, &zk, "s1", SmallServerOptions());
  ASSERT_TRUE(s0.Start().ok());
  ASSERT_TRUE(s1.Start().ok());
  directory["s0"] = &s0;
  directory["s1"] = &s1;
  Master master(&zk, "m", directory);
  ASSERT_TRUE(master.Campaign().ok());
  auto map = RegionMap::CreateUniform(1, "user", 10, 1000, {"s0", "s1"}, 2);
  ASSERT_TRUE(master.Bootstrap(*map).ok());

  Telemetry client_plane(/*trace_capacity=*/64);
  TebisClient client(
      &fabric, "c",
      [&](const std::string& name) -> ServerEndpoint* {
        return directory.contains(name) ? directory[name]->client_endpoint() : nullptr;
      },
      {"s0", "s1"});
  ASSERT_TRUE(client.Connect().ok());
  client.set_request_sampling(1);
  client.set_telemetry(&client_plane);
  ASSERT_TRUE(client.Put("user0000000001", "traced").ok());

  // The client recorded its span under a request id...
  TraceId trace = kNoTrace;
  for (const SpanRecord& span : client_plane.traces()->Snapshot()) {
    if (IsRequestTrace(span.trace)) {
      EXPECT_STREQ(span.name, "client");
      trace = span.trace;
    }
  }
  ASSERT_NE(trace, kNoTrace);

  // ...and the primary reconstructed the same id from the wire field: its
  // plane holds the primary_apply/engine/doorbell spans.
  std::map<std::string, int> by_name;
  for (const SpanRecord& span : s0.telemetry()->traces()->Snapshot()) {
    if (span.trace == trace) {
      by_name[span.name]++;
    }
  }
  EXPECT_EQ(by_name["primary_apply"], 1);
  EXPECT_EQ(by_name["engine_apply"], 1);
  EXPECT_EQ(by_name["doorbell"], 1);
  // The backup owner installed the commit listener, so the backup_commit
  // span is reconstructed on *its* plane under the same trace id.
  int backup_commits = 0;
  for (const SpanRecord& span : s1.telemetry()->traces()->Snapshot()) {
    if (span.trace == trace && std::string_view(span.name) == "backup_commit") {
      ++backup_commits;
    }
  }
  EXPECT_EQ(backup_commits, 1);
  s0.Stop();
  s1.Stop();
}

// --- federation math ------------------------------------------------------------

// Builds a fetcher serving canned per-node planes, with a switchable outage.
struct FakeFleet {
  std::map<std::string, std::unique_ptr<Telemetry>> planes;
  std::set<std::string> unreachable;

  Telemetry* Add(const std::string& server) {
    planes[server] = std::make_unique<Telemetry>();
    return planes[server].get();
  }
  ClusterScraper::FetchFn Fetcher() {
    return [this](const std::string& server) -> StatusOr<std::string> {
      if (unreachable.contains(server)) {
        return Status::Unavailable(server + " unreachable");
      }
      Telemetry* plane = planes.at(server).get();
      return EncodeNodeScrape(server, plane->Snapshot(), plane->slow_ops()->Snapshot());
    };
  }
};

TEST(FederationTest, MergedTotalsEqualSummedPerNodeSnapshots) {
  FakeFleet fleet;
  Telemetry* s0 = fleet.Add("s0");
  Telemetry* s1 = fleet.Add("s1");
  s0->metrics()->GetCounter("kv.puts")->Add(10);
  s1->metrics()->GetCounter("kv.puts")->Add(32);
  s0->metrics()->GetGauge("kv.l0_entries")->Set(5);
  s1->metrics()->GetGauge("kv.l0_entries")->Set(7);
  s0->metrics()->GetHistogram("trace.request_latency_ns")->Record(1000,
                                                                  MakeRequestTraceId(1, 1));
  s1->metrics()->GetHistogram("trace.request_latency_ns")->Record(9000);

  ClusterScraper scraper({"s0", "s1"}, fleet.Fetcher());
  ASSERT_TRUE(scraper.ScrapeOnce().ok());

  MetricsSnapshot merged = scraper.MergedSnapshot();
  // Counter math: the merged snapshot holds both node-labeled samples and
  // their sum equals the per-node sum.
  EXPECT_EQ(merged.Sum("kv.puts"), 42u);
  EXPECT_EQ(merged.Sum("kv.puts", "node", "s0"), 10u);
  EXPECT_EQ(merged.Sum("kv.puts", "node", "s1"), 32u);
  // Gauges stay distinguishable per node instead of collapsing.
  EXPECT_EQ(merged.Find("kv.l0_entries", "node", "s0")->value, 5);
  EXPECT_EQ(merged.Find("kv.l0_entries", "node", "s1")->value, 7);

  const std::string json = scraper.ClusterJson();
  EXPECT_NE(json.find("\"kv.puts\": 42"), std::string::npos) << json;
  // Histograms merged bucket-wise: count 2, and the exemplar survived with
  // its node attribution.
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"node\": \"s0\""), std::string::npos) << json;
  EXPECT_EQ(scraper.ClusterHealth(), kHealthGreen);
}

TEST(FederationTest, UnreachableNodeKeepsLastGoodSnapshotAndGoesStale) {
  FakeFleet fleet;
  fleet.Add("s0")->metrics()->GetCounter("kv.puts")->Add(1);
  fleet.Add("s1")->metrics()->GetCounter("kv.puts")->Add(2);

  ClusterScraper scraper({"s0", "s1"}, fleet.Fetcher());
  ASSERT_TRUE(scraper.ScrapeOnce().ok());
  EXPECT_FALSE(scraper.node_state("s1").stale);

  fleet.unreachable.insert("s1");
  fleet.planes["s0"]->metrics()->GetCounter("kv.puts")->Add(9);
  ASSERT_TRUE(scraper.ScrapeOnce().ok());  // per-node outage is not an error

  ClusterScraper::NodeState state = scraper.node_state("s1");
  EXPECT_TRUE(state.stale);
  EXPECT_EQ(state.missed_scrapes, 1);
  // s1's last-good value stays in the merge; s0's refresh is picked up.
  MetricsSnapshot merged = scraper.MergedSnapshot();
  EXPECT_EQ(merged.Sum("kv.puts", "node", "s1"), 2u);
  EXPECT_EQ(merged.Sum("kv.puts", "node", "s0"), 10u);
  // Staleness forces at least yellow and is marked in the document.
  EXPECT_EQ(scraper.ClusterHealth(), kHealthYellow);
  const std::string json = scraper.ClusterJson();
  EXPECT_NE(json.find("\"stale\": true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"stale_nodes\": 1"), std::string::npos) << json;

  fleet.unreachable.clear();
  ASSERT_TRUE(scraper.ScrapeOnce().ok());
  EXPECT_FALSE(scraper.node_state("s1").stale);
  EXPECT_EQ(scraper.ClusterHealth(), kHealthGreen);
}

// --- federation over the real RPC scrape, FaultInjector outage ------------------

TEST(FederationTest, MasterScrapesTheFleetAndMarksAFaultedNodeStale) {
  Fabric fabric;
  FaultInjector injector(/*seed=*/7);
  fabric.set_fault_injector(&injector);
  Coordinator zk;
  std::map<std::string, RegionServer*> directory;
  RegionServer s0(&fabric, &zk, "s0", SmallServerOptions());
  RegionServer s1(&fabric, &zk, "s1", SmallServerOptions());
  ASSERT_TRUE(s0.Start().ok());
  ASSERT_TRUE(s1.Start().ok());
  directory["s0"] = &s0;
  directory["s1"] = &s1;
  Master master(&zk, "m", directory);
  ASSERT_TRUE(master.Campaign().ok());
  auto map = RegionMap::CreateUniform(2, "user", 10, 1000, {"s0", "s1"}, 2);
  ASSERT_TRUE(master.Bootstrap(*map).ok());

  // Round 1: both nodes reachable over the binary kStatsScrape RPC.
  ASSERT_TRUE(master.ScrapeCluster().ok());
  ASSERT_NE(master.cluster_scraper(), nullptr);
  EXPECT_TRUE(master.cluster_scraper()->node_state("s0").ever_scraped);
  EXPECT_TRUE(master.cluster_scraper()->node_state("s1").ever_scraped);
  EXPECT_FALSE(master.cluster_scraper()->node_state("s1").stale);
  const std::string healthy = master.ClusterStatsJson();
  EXPECT_NE(healthy.find("\"health\": \"green\""), std::string::npos) << healthy;

  // s1 becomes unreachable: every RPC send to it is dropped by the injector.
  injector.HaltNode("s1");
  master.ScrapeCluster();  // the round itself proceeds; s1 just misses
  EXPECT_TRUE(master.cluster_scraper()->node_state("s1").stale);
  EXPECT_FALSE(master.cluster_scraper()->node_state("s0").stale);
  EXPECT_GE(master.cluster_scraper()->ClusterHealth(), kHealthYellow);
  const std::string degraded = master.ClusterStatsJson();
  EXPECT_NE(degraded.find("\"stale\": true"), std::string::npos) << degraded;

  injector.ReviveNode("s1");
  ASSERT_TRUE(master.ScrapeCluster().ok());
  EXPECT_FALSE(master.cluster_scraper()->node_state("s1").stale);
  s0.Stop();
  s1.Stop();
}

TEST(FederationTest, ScrapeClusterIsLeaderOnly) {
  Coordinator zk;
  Master standby(&zk, "standby", {});
  // Never campaigned: not the leader, so no scraper may be built.
  EXPECT_EQ(standby.ScrapeCluster().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(standby.cluster_scraper(), nullptr);
  EXPECT_TRUE(standby.ClusterStatsJson().empty());
}

}  // namespace
}  // namespace tebis
