// Graceful primary handover (load balancing, paper §3.1): the master moves a
// region's primary role to one of its backups with no data loss; the old
// primary becomes a backup and keeps replicating.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "src/cluster/client.h"
#include "src/cluster/coordinator.h"
#include "src/cluster/master.h"
#include "src/cluster/region_server.h"
#include "src/replication/segment_map.h"

namespace tebis {
namespace {

struct HandoverCluster {
  explicit HandoverCluster(ReplicationMode mode) {
    RegionServerOptions options;
    options.device_options.segment_size = 1 << 16;
    options.device_options.max_segments = 1 << 16;
    options.kv_options.l0_max_entries = 256;
    options.replication_mode = mode;
    std::vector<std::string> names;
    for (int i = 0; i < 3; ++i) {
      names.push_back("server" + std::to_string(i));
      servers.push_back(std::make_unique<RegionServer>(&fabric, &zk, names.back(), options));
      EXPECT_TRUE(servers.back()->Start().ok());
      directory[names.back()] = servers.back().get();
    }
    master = std::make_unique<Master>(&zk, "m0", directory);
    EXPECT_TRUE(master->Campaign().ok());
    auto map = RegionMap::CreateUniform(2, "user", 10, 4000, names, 2);
    EXPECT_TRUE(map.ok());
    EXPECT_TRUE(master->Bootstrap(*map).ok());
    client = std::make_unique<TebisClient>(
        &fabric, "client",
        [this](const std::string& name) -> ServerEndpoint* {
          auto it = directory.find(name);
          return (it == directory.end() || it->second->crashed())
                     ? nullptr
                     : it->second->client_endpoint();
        },
        names);
    client->set_rpc_timeout_ns(1'000'000'000ull);
    EXPECT_TRUE(client->Connect().ok());
  }

  ~HandoverCluster() {
    for (auto& server : servers) {
      server->Stop();
    }
  }

  static std::string Key(uint64_t i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "user%010llu", static_cast<unsigned long long>(i % 4000));
    return buf;
  }

  Fabric fabric;
  Coordinator zk;
  std::vector<std::unique_ptr<RegionServer>> servers;
  std::map<std::string, RegionServer*> directory;
  std::unique_ptr<Master> master;
  std::unique_ptr<TebisClient> client;
};

TEST(SegmentMapInvertTest, SwapsKeysAndValues) {
  SegmentMap map;
  ASSERT_TRUE(map.Insert(1, 100).ok());
  ASSERT_TRUE(map.Insert(2, 200).ok());
  auto inverted = map.Invert();
  ASSERT_TRUE(inverted.ok());
  EXPECT_EQ(*inverted->Lookup(100), 1u);
  EXPECT_EQ(*inverted->Lookup(200), 2u);
  // Duplicate values cannot invert.
  SegmentMap dup;
  ASSERT_TRUE(dup.Insert(1, 5).ok());
  ASSERT_TRUE(dup.Insert(2, 5).ok());
  EXPECT_FALSE(dup.Invert().ok());
}

class HandoverModeTest : public testing::TestWithParam<ReplicationMode> {};

TEST_P(HandoverModeTest, MovePrimaryKeepsAllDataAndAcceptsWrites) {
  HandoverCluster cluster(GetParam());
  std::map<std::string, std::string> model;
  for (int i = 0; i < 2500; ++i) {
    std::string key = HandoverCluster::Key(i * 13);
    std::string value = "pre-move-" + std::to_string(i);
    ASSERT_TRUE(cluster.client->Put(key, value).ok());
    model[key] = value;
  }
  // Move region 0's primary role to its backup.
  const RegionInfo* region0 = cluster.master->current_map()->FindById(0);
  ASSERT_NE(region0, nullptr);
  const std::string old_primary = region0->primary;
  const std::string new_primary = region0->backups[0];
  Status moved = cluster.master->MovePrimary(0, new_primary);
  ASSERT_TRUE(moved.ok()) << moved.ToString();
  const RegionInfo* after = cluster.master->current_map()->FindById(0);
  EXPECT_EQ(after->primary, new_primary);
  EXPECT_EQ(after->backups[0], old_primary);
  EXPECT_TRUE(cluster.directory.at(new_primary)->IsPrimaryFor(0));
  EXPECT_FALSE(cluster.directory.at(old_primary)->IsPrimaryFor(0));

  // Every acknowledged write survives; the client re-routes via the new map.
  for (const auto& [key, value] : model) {
    auto v = cluster.client->Get(key);
    ASSERT_TRUE(v.ok()) << key << " " << v.status().ToString();
    EXPECT_EQ(*v, value) << key;
  }
  // New writes land on the new primary and replicate to the demoted one.
  for (int i = 0; i < 1500; ++i) {
    std::string key = HandoverCluster::Key(i * 7);
    model[key] = "post-move-" + std::to_string(i);
    ASSERT_TRUE(cluster.client->Put(key, model[key]).ok());
  }
  for (int i = 0; i < 1500; i += 111) {
    auto v = cluster.client->Get(HandoverCluster::Key(i * 7));
    ASSERT_TRUE(v.ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, HandoverModeTest,
                         testing::Values(ReplicationMode::kSendIndex,
                                         ReplicationMode::kBuildIndex));

TEST(HandoverTest, DemotedPrimarySurvivesNextFailover) {
  // The real proof the demotion produced a correct backup: crash the NEW
  // primary and let the master promote the demoted node back.
  HandoverCluster cluster(ReplicationMode::kSendIndex);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 2000; ++i) {
    std::string key = HandoverCluster::Key(i * 3);
    model[key] = "v-" + std::to_string(i);
    ASSERT_TRUE(cluster.client->Put(key, model[key]).ok());
  }
  const RegionInfo* region0 = cluster.master->current_map()->FindById(0);
  const std::string old_primary = region0->primary;
  const std::string new_primary = region0->backups[0];
  ASSERT_TRUE(cluster.master->MovePrimary(0, new_primary).ok());
  // More writes through the new primary (replicated to the demoted backup).
  for (int i = 0; i < 1000; ++i) {
    std::string key = HandoverCluster::Key(i * 3);
    model[key] = "updated-" + std::to_string(i);
    ASSERT_TRUE(cluster.client->Put(key, model[key]).ok());
  }
  // Crash the new primary: the demoted node must come back with everything.
  cluster.directory.at(new_primary)->Crash();
  for (const auto& [key, value] : model) {
    auto v = cluster.client->Get(key);
    ASSERT_TRUE(v.ok()) << key << " " << v.status().ToString();
    EXPECT_EQ(*v, value) << key;
  }
}

TEST(HandoverTest, WriterRacingMovePrimarySeesOnlyRetriableFailures) {
  // A writer hammers region 0 while the master bounces its primary role back
  // and forth. Every failure the writer observes must be retriable
  // (Unavailable — a fenced or mid-handover primary), never a data error, and
  // every key must end at its last acknowledged value or at a value whose Put
  // failed *after* that ack (a timed-out op may still have landed).
  HandoverCluster cluster(ReplicationMode::kSendIndex);
  const RegionInfo* region0 = cluster.master->current_map()->FindById(0);
  ASSERT_NE(region0, nullptr);
  const std::string node_a = region0->primary;
  const std::string node_b = region0->backups[0];

  // The writer owns its client: TebisClient is single-threaded.
  auto writer_client = std::make_unique<TebisClient>(
      &cluster.fabric, "racer",
      [&cluster](const std::string& name) -> ServerEndpoint* {
        auto it = cluster.directory.find(name);
        return (it == cluster.directory.end() || it->second->crashed())
                   ? nullptr
                   : it->second->client_endpoint();
      },
      std::vector<std::string>{node_a, node_b});
  writer_client->set_rpc_timeout_ns(1'000'000'000ull);
  ASSERT_TRUE(writer_client->Connect().ok());

  // Region 0 covers the low half of the 4000-key space; slot*67 stays inside.
  constexpr int kSlots = 29;
  std::vector<std::string> last_acked(kSlots);
  std::vector<std::vector<std::string>> failed_after_ack(kSlots);
  std::vector<std::string> bad_failures;  // writer-thread only until join
  std::atomic<uint64_t> acked{0};
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t seq = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const int slot = static_cast<int>(seq % kSlots);
      const std::string value = "race-" + std::to_string(seq++);
      Status s = writer_client->Put(HandoverCluster::Key(slot * 67), value);
      if (s.ok()) {
        last_acked[slot] = value;
        failed_after_ack[slot].clear();
        acked.fetch_add(1, std::memory_order_relaxed);
      } else {
        if (!s.IsUnavailable()) {
          bad_failures.push_back(s.ToString());
        }
        failed_after_ack[slot].push_back(value);
      }
    }
  });

  // Four handovers; after each one the writer must prove liveness by landing
  // at least one more acked write under the new configuration (which forces a
  // map refresh through the retry path — its cached map is now stale).
  for (int round = 0; round < 4; ++round) {
    const std::string& target = (round % 2 == 0) ? node_b : node_a;
    const uint64_t before = acked.load(std::memory_order_relaxed);
    Status moved = cluster.master->MovePrimary(0, target);
    ASSERT_TRUE(moved.ok()) << round << " " << moved.ToString();
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (acked.load(std::memory_order_relaxed) <= before &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_GT(acked.load(std::memory_order_relaxed), before)
        << "writer made no progress after handover " << round;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  EXPECT_TRUE(bad_failures.empty()) << bad_failures.front();
  const ClientStats stats = writer_client->stats();
  EXPECT_GT(stats.wrong_region_retries + stats.failover_retries, 0u);

  // Converged state: every slot holds its last ack, or a post-ack failed
  // attempt that landed without its acknowledgment.
  for (int slot = 0; slot < kSlots; ++slot) {
    if (last_acked[slot].empty() && failed_after_ack[slot].empty()) {
      continue;
    }
    auto v = cluster.client->Get(HandoverCluster::Key(slot * 67));
    if (!v.ok()) {
      // Only possible if the slot was never acked at all.
      EXPECT_TRUE(last_acked[slot].empty()) << slot << " " << v.status().ToString();
      continue;
    }
    const bool is_last_ack = !last_acked[slot].empty() && *v == last_acked[slot];
    const bool is_post_ack_failure =
        std::find(failed_after_ack[slot].begin(), failed_after_ack[slot].end(), *v) !=
        failed_after_ack[slot].end();
    EXPECT_TRUE(is_last_ack || is_post_ack_failure)
        << "slot " << slot << " holds " << *v << ", last ack " << last_acked[slot];
  }
  // The region still takes writes after the dust settles.
  ASSERT_TRUE(cluster.client->Put(HandoverCluster::Key(1), "settled").ok());
  auto settled = cluster.client->Get(HandoverCluster::Key(1));
  ASSERT_TRUE(settled.ok());
  EXPECT_EQ(*settled, "settled");
}

TEST(HandoverTest, MovePrimaryValidation) {
  HandoverCluster cluster(ReplicationMode::kSendIndex);
  // Not a backup of the region.
  const RegionInfo* region0 = cluster.master->current_map()->FindById(0);
  std::string outsider;
  for (const auto& [name, server] : cluster.directory) {
    if (name != region0->primary &&
        std::find(region0->backups.begin(), region0->backups.end(), name) ==
            region0->backups.end()) {
      outsider = name;
    }
  }
  ASSERT_FALSE(outsider.empty());
  EXPECT_FALSE(cluster.master->MovePrimary(0, outsider).ok());
  // Moving to the current primary is a no-op success.
  EXPECT_TRUE(cluster.master->MovePrimary(0, region0->primary).ok());
  // Unknown region.
  EXPECT_TRUE(cluster.master->MovePrimary(999, region0->backups[0]).IsNotFound());
}

}  // namespace
}  // namespace tebis
