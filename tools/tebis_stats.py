#!/usr/bin/env python3
"""Pretty-printer for Tebis telemetry scrapes (PR 5, cluster mode PR 10).

Reads either a single-node scrape -- the JSON payload produced by the
kStatsScrape admin RPC (TebisClient::ScrapeStats), RegionServer::ScrapeJson(),
or SimCluster::ScrapeJson() -- shape:

    {"node": "...", "metrics": {"name{k=v,...}": value, ...},
     "slow_ops": [...], "spans": {"traceEvents": [...]}}

or (with --cluster, auto-detected) the federated document the master's scrape
fan-out assembles (Master::ClusterStatsJson / ClusterScraper::ClusterJson):

    {"cluster": {...}, "nodes": {...}, "totals": {...}, "metrics": {...},
     "histograms": {...}, "slow_ops": {...}}

and renders:
  * metrics grouped by subsystem prefix (kv., repl., backup., net., ...),
    label sets aligned, values humanized (ns -> ms, bytes -> MiB);
  * per-trace span trees reconstructed from the chrome trace events,
    ordered by start time, with durations (request trees and compaction
    pipelines alike);
  * cluster mode: per-node health columns with staleness markers, counter
    totals, merged histograms with interpolated percentiles and their
    exemplars, and every node's slow-op ring.

Usage:
    tebis_stats.py [scrape.json]          # read file (default: stdin)
    tebis_stats.py --cluster cluster.json # federated document
    tebis_stats.py --trace 0x8000...      # exemplar -> trace lookup
    tebis_stats.py --traces-out out.json  # also write chrome://tracing JSON
    tebis_stats.py --raw                  # no humanization of values
"""

import argparse
import json
import re
import sys
from collections import defaultdict

METRIC_RE = re.compile(r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$")

# Order spans appear in their pipeline, for stable tree rendering. Ranks 0-4
# are the compaction shipping pipeline (PR 5); 10+ are the request path
# (PR 10) -- the two families never share a trace id (request ids have bit 63
# set), so one table serves both.
SPAN_ORDER = {"claim": 0, "merge_build": 1, "ship_segment": 2,
              "rewrite_segment": 3, "commit": 4,
              "client": 10, "primary_apply": 11, "engine_apply": 12,
              "doorbell": 13, "backup_commit": 14}

# Indentation depth per request-path span (client wraps primary wraps engine
# wraps doorbell; backup_commit is the doorbell's remote half).
SPAN_DEPTH = {"client": 1, "primary_apply": 2, "engine_apply": 3,
              "doorbell": 4, "backup_commit": 4}

# Mirrors Histogram's bucket layout (src/common/histogram.h): 64 power-of-two
# groups x kSubBuckets linear sub-buckets.
SUB_BUCKETS = 32


def parse_metric_key(key):
    """Split 'name{k=v,k2=v2}' into (name, {k: v})."""
    m = METRIC_RE.match(key)
    if m is None:
        return key, {}
    labels = {}
    raw = m.group("labels")
    if raw:
        for pair in raw.split(","):
            k, _, v = pair.partition("=")
            labels[k] = v
    return m.group("name"), labels


def bucket_upper_bound(index):
    """Inclusive upper bound of bucket `index` (Histogram::BucketUpperBound)."""
    if index < SUB_BUCKETS:
        return index
    group = (index - SUB_BUCKETS) // SUB_BUCKETS
    sub = (index - SUB_BUCKETS) % SUB_BUCKETS
    if group >= 58:  # saturates in the C++ too
        return (1 << 64) - 1
    return ((SUB_BUCKETS + sub + 1) << group) - 1


def bucket_lower_bound(index):
    return 0 if index == 0 else bucket_upper_bound(index - 1) + 1


def percentile_from_buckets(buckets, count, max_value, p):
    """Percentile estimate from a sparse [[index, count], ...] bucket list.

    Interpolates linearly *within* the landing bucket instead of reporting its
    upper bound, and clamps that bucket's bound to the observed max -- the
    fix for the last-bucket boundary: the top bucket's nominal bound is a
    power-of-two edge (up to 2^64-1 after saturation), so the old
    report-the-bound behavior inflated p99 by up to 2x whenever the target
    sample sat in the final occupied bucket.
    """
    if count == 0:
        return 0
    target = p / 100.0 * count
    seen = 0
    for index, n in sorted(buckets):
        if n == 0:
            continue
        if seen + n >= target:
            lo = bucket_lower_bound(index)
            hi = min(bucket_upper_bound(index), max_value)
            if hi <= lo:
                return min(hi, max_value)
            fraction = (target - seen) / n
            return min(int(lo + fraction * (hi - lo)), max_value)
        seen += n
    return max_value


def humanize(name, value):
    if not isinstance(value, (int, float)):
        return str(value)
    if name.endswith("_ns") or "_ns_" in name:
        if value >= 1e9:
            return f"{value / 1e9:.3f} s"
        if value >= 1e6:
            return f"{value / 1e6:.3f} ms"
        if value >= 1e3:
            return f"{value / 1e3:.3f} us"
        return f"{value:.0f} ns"
    if "bytes" in name:
        if value >= 1 << 30:
            return f"{value / (1 << 30):.2f} GiB"
        if value >= 1 << 20:
            return f"{value / (1 << 20):.2f} MiB"
        if value >= 1 << 10:
            return f"{value / (1 << 10):.2f} KiB"
        return f"{value:.0f} B"
    if isinstance(value, float):
        return f"{value:g}"
    return f"{value}"


def print_metrics(metrics, raw):
    # subsystem -> [(name, labels-str, value)]
    groups = defaultdict(list)
    for key, value in metrics.items():
        name, labels = parse_metric_key(key)
        subsystem = name.split(".", 1)[0] if "." in name else "(other)"
        label_str = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        groups[subsystem].append((name, label_str, value))

    for subsystem in sorted(groups):
        rows = sorted(groups[subsystem])
        print(f"\n== {subsystem} ==")
        name_w = max(len(r[0]) for r in rows)
        label_w = max(len(r[1]) for r in rows)
        for name, label_str, value in rows:
            shown = str(value) if raw else humanize(name, value)
            print(f"  {name:<{name_w}}  {label_str:<{label_w}}  {shown}")


def print_filter_summary(metrics):
    """Derived bloom-filter effectiveness (PR 7): per-level skip and
    false-positive rates on the primary read path (kv.filter_*, labeled by
    level) plus the aggregate over the backup replica read path
    (backup.filter_*). Rates are ratios of raw counters, so this section is
    unaffected by --raw."""
    # scope -> {"checks": n, "negatives": n, "false_positives": n}
    scopes = defaultdict(lambda: defaultdict(int))
    for key, value in metrics.items():
        name, labels = parse_metric_key(key)
        for prefix, scope in (("kv.filter_", labels.get("level", "?")),
                              ("backup.filter_", "backup")):
            if name.startswith(prefix):
                field = name[len(prefix):]
                if field in ("checks", "negatives", "false_positives"):
                    scopes[scope][field] += value
    rows = [(scope, c) for scope, c in sorted(scopes.items()) if c.get("checks")]
    if not rows:
        return
    print("\n== filter effectiveness ==")
    for scope, c in rows:
        checks = c["checks"]
        negatives = c.get("negatives", 0)
        false_pos = c.get("false_positives", 0)
        maybes = checks - negatives
        fp_rate = f"{100.0 * false_pos / maybes:.2f}% fp" if maybes else "no maybes"
        print(f"  {scope:<8} {checks:>10} checks"
              f"  {100.0 * negatives / checks:6.2f}% skipped"
              f"  {fp_rate}")


def print_integrity_summary(metrics):
    """Derived integrity health (PR 8): scrub coverage, corruption
    detections by path, repair traffic, and any levels still quarantined.
    Raw-counter ratios and sums, so this section is unaffected by --raw."""
    totals = defaultdict(int)
    read_corruptions = defaultdict(int)
    for key, value in metrics.items():
        name, labels = parse_metric_key(key)
        if name.startswith("integrity."):
            totals[name[len("integrity."):]] += value
        elif name == "kv.read_corruptions":
            read_corruptions[labels.get("source", "?")] += value
        elif name == "backup.segments_crc_rejected":
            totals["ship_crc_rejected"] += value
    if not totals and not read_corruptions:
        return
    print("\n== integrity ==")
    print(f"  scrubbed          {humanize('bytes', totals.get('scrub_bytes', 0))}")
    found = totals.get("corruptions_found", 0)
    repaired = totals.get("corruptions_repaired", 0)
    print(f"  corruptions       {found} found, {repaired} repaired"
          f" ({found - repaired} outstanding)")
    if read_corruptions:
        by_src = ", ".join(f"{v} from {k}" for k, v in sorted(read_corruptions.items()))
        print(f"  read-path hits    {by_src}")
    print(f"  repair traffic    {totals.get('repair_fetches', 0)} fetched,"
          f" {totals.get('repair_serves', 0)} served to peers")
    if totals.get("ship_crc_rejected"):
        print(f"  ship rejects      {totals['ship_crc_rejected']} shipped segments"
              " failed payload crc")
    quarantined = totals.get("quarantined_levels", 0)
    status = "none -- healthy" if not quarantined else f"{quarantined} LEVELS DEGRADED"
    print(f"  quarantined       {status}")


def aggregate_metrics(metrics, wanted_prefix):
    """Sum counters and fold histogram suffix keys for one name prefix.

    Returns (totals, hists): totals[full_name] sums plain values across label
    sets; hists[full_name][suffix] sums counts and keeps the max of
    p50/p99/max (a conservative cluster-wide view)."""
    totals = defaultdict(int)
    hists = defaultdict(dict)
    hist_re = re.compile(r"^(?P<name>" + re.escape(wanted_prefix) +
                         r"[^{]+?)(?:\{.*\})?_(?P<suffix>count|p50|p99|max)$")
    for key, value in metrics.items():
        m = hist_re.match(key)
        if m is not None:
            name, suffix = m.group("name"), m.group("suffix")
            if suffix == "count":
                hists[name][suffix] = hists[name].get(suffix, 0) + value
            else:
                hists[name][suffix] = max(hists[name].get(suffix, 0), value)
            continue
        name, _ = parse_metric_key(key)
        if name.startswith(wanted_prefix) and not name.endswith("_exemplars"):
            totals[name] += value
    return totals, hists


def print_write_path_summary(metrics):
    """Derived write-path health (PR 9): group-commit batching on the engine
    (wp.batch_* from KvStore::WriteBatch), doorbell coalescing on the
    replication plane (wp.doorbell* from PrimaryRegion), and WAL-time
    large-value separation. Histogram samples arrive as name{labels}_count/
    _p50/_p99/_max keys. Raw-counter ratios, so unaffected by --raw."""
    totals, hists = aggregate_metrics(metrics, "wp.")
    if not totals and not hists:
        return
    print("\n== write path ==")
    groups = totals.get("wp.batch_groups", 0)
    ops = totals.get("wp.batch_ops", 0)
    if groups:
        print(f"  group commit      {groups} groups, {ops} ops"
              f" ({ops / groups:.1f} ops/group)")
    size_h = hists.get("wp.batch_size", {})
    if size_h.get("count"):
        print(f"  batch size        p50 {size_h.get('p50', 0)}"
              f"  p99 {size_h.get('p99', 0)}  max {size_h.get('max', 0)}"
              f"  ({size_h['count']} groups sampled)")
    lat_h = hists.get("wp.group_commit_latency_ns", {})
    if lat_h.get("count"):
        print(f"  group latency     p50 {humanize('_ns', lat_h.get('p50', 0))}"
              f"  p99 {humanize('_ns', lat_h.get('p99', 0))}"
              f"  max {humanize('_ns', lat_h.get('max', 0))}")
    doorbells = totals.get("wp.doorbells", 0)
    records = totals.get("wp.doorbell_records", 0)
    if doorbells:
        print(f"  doorbells         {doorbells} writes carried {records} records"
              f" ({records / doorbells:.1f} records/doorbell coalesced)")
    separations = totals.get("wp.large_value_separations", 0)
    if separations or totals.get("wp.large_records_replicated", 0):
        print(f"  large values      {separations} separated at WAL time,"
              f" {totals.get('wp.large_records_replicated', 0)} mirrored to the"
              " large-log family")


# The health gauge family (PR 10): HealthWatchdog publishes one gauge per
# subsystem detector plus the node rollup; 0 green / 1 yellow / 2 red.
HEALTH_GAUGES = ["health.node", "health.flow_control", "health.compaction",
                 "health.integrity", "health.replication"]
HEALTH_COLORS = {0: "green", 1: "yellow", 2: "red"}


def health_color(value):
    return HEALTH_COLORS.get(int(value), f"?{value}")


def print_health_summary(metrics, default_node="?"):
    """Watchdog verdicts (PR 10), one row per node seen in the labels.

    A single-node scrape publishes the gauges unlabeled; `default_node`
    (the document's own node name) fills the row label there."""
    # node -> {gauge: value}
    nodes = defaultdict(dict)
    for key, value in metrics.items():
        name, labels = parse_metric_key(key)
        if name in HEALTH_GAUGES:
            nodes[labels.get("node", default_node)][name] = value
    if not nodes:
        return
    print("\n== health ==")
    for node, gauges in sorted(nodes.items()):
        overall = health_color(gauges.get("health.node", 0))
        detail = "  ".join(
            f"{g.split('.', 1)[1]}={health_color(v)}"
            for g, v in sorted(gauges.items()) if g != "health.node")
        print(f"  {node:<12} {overall:<7} {detail}")


def parse_exemplars(text):
    """'0x<trace>@<value>,...' -> [(trace-hex-str, value), ...]."""
    out = []
    for item in str(text).split(","):
        trace, _, value = item.partition("@")
        if trace and value:
            out.append((trace, int(value)))
    return out


def print_request_latency_summary(metrics, raw):
    """Sampled request latency (PR 10): the trace.request_latency_ns
    histograms, one row per op label, with their exemplars so a bad
    percentile can be chased to the trace that produced it."""
    rows = {}
    exemplars = {}
    for key, value in metrics.items():
        if "trace.request_latency_ns" not in key:
            continue
        _, labels = parse_metric_key(key.rsplit("_", 1)[0]
                                     if key.endswith(("_count", "_p50", "_p99", "_max"))
                                     else key)
        op = labels.get("op", "?")
        if key.endswith("_exemplars"):
            exemplars.setdefault(op, []).extend(parse_exemplars(value))
        else:
            suffix = key.rsplit("_", 1)[1]
            if suffix in ("count", "p50", "p99", "max"):
                rows.setdefault(op, {})[suffix] = value
    rows = {op: r for op, r in rows.items() if r.get("count")}
    if not rows:
        return
    print("\n== request latency (sampled) ==")
    fmt = (lambda v: str(v)) if raw else (lambda v: humanize("_ns", v))
    for op, r in sorted(rows.items()):
        print(f"  {op:<8} {r['count']:>8} sampled"
              f"  p50 {fmt(r.get('p50', 0))}"
              f"  p99 {fmt(r.get('p99', 0))}"
              f"  max {fmt(r.get('max', 0))}")
        for trace, value in exemplars.get(op, []):
            print(f"           exemplar {trace} @ {fmt(value)}")


def print_slow_ops(records, indent="  "):
    for r in records:
        stages = (f"engine {humanize('_ns', r.get('engine_ns', 0))}"
                  f" doorbell {humanize('_ns', r.get('doorbell_ns', 0))}"
                  f" backup {humanize('_ns', r.get('backup_commit_ns', 0))}")
        trace = r.get("trace", "0x0")
        trace_note = f"  trace {trace}" if trace not in ("0x0", "0") else ""
        print(f"{indent}{r.get('op', '?'):<7} key={r.get('key_prefix', '')!r:<20}"
              f" region {r.get('region', '?')} epoch {r.get('epoch', '?')}"
              f"  total {humanize('_ns', r.get('total_ns', 0))} ({stages}){trace_note}")


def print_slow_ops_section(doc):
    records = doc.get("slow_ops", [])
    if not records:
        return
    print(f"\n== slow ops ({len(records)} recorded) ==")
    print_slow_ops(records)


def print_traces(spans, trace_filter=None):
    events = spans.get("traceEvents", []) if isinstance(spans, dict) else spans
    pid_names = {}
    complete = []
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "process_name":
            pid_names[ev.get("pid")] = ev.get("args", {}).get("name", "?")
        elif ev.get("ph") == "X":
            complete.append(ev)
    if trace_filter:
        complete = [ev for ev in complete
                    if ev.get("args", {}).get("trace") == trace_filter]
    if not complete:
        print("\n(no spans recorded)" if not trace_filter
              else f"\n(no spans for trace {trace_filter})")
        return

    # (trace id, compaction id) identifies one pipeline run even when a
    # stream id is reused across compactions within an epoch. Request traces
    # (bit-63 ids) always carry compaction 0, so the pair is just the id.
    traces = defaultdict(list)
    for ev in complete:
        args = ev.get("args", {})
        traces[(args.get("trace", "?"), args.get("compaction", "?"))].append(ev)

    print(f"\n== traces ({len(traces)} trees, {len(complete)} spans) ==")
    for (trace_id, compaction), evs in sorted(
            traces.items(), key=lambda item: min(e["ts"] for e in item[1])):
        evs.sort(key=lambda e: (SPAN_ORDER.get(e["name"], 99), e["ts"]))
        base_ts = min(e["ts"] for e in evs)
        request = any(e["name"] in SPAN_DEPTH for e in evs)
        kind = "request" if request else f"compaction #{compaction}"
        print(f"\n  trace {trace_id} ({kind})")
        for ev in evs:
            node = pid_names.get(ev.get("pid"), "?")
            args = ev.get("args", {})
            depth = SPAN_DEPTH.get(
                ev["name"], 1 if SPAN_ORDER.get(ev["name"], 99) < 2 else 2)
            extra = ""
            if args.get("bytes"):
                extra += f"  {humanize('bytes', args['bytes'])}"
            src, dst = args.get("src_level", -1), args.get("dst_level", -1)
            if src >= 0 or dst >= 0:
                extra += f"  L{src}->L{dst}"
            print(f"  {'  ' * depth}{ev['name']:<16} [{node}]"
                  f"  +{(ev['ts'] - base_ts) / 1000.0:9.3f} ms"
                  f"  dur {ev.get('dur', 0) / 1000.0:9.3f} ms{extra}")


def print_cluster(doc, raw, trace_filter):
    """The federated document: health columns, totals, merged histograms with
    interpolated percentiles, exemplars, per-node slow-op rings."""
    cluster = doc.get("cluster", {})
    print(f"cluster: {cluster.get('nodes', '?')} nodes,"
          f" {cluster.get('stale_nodes', 0)} stale,"
          f" {cluster.get('rounds', 0)} scrape rounds,"
          f" health {cluster.get('health', '?')}")

    nodes = doc.get("nodes", {})
    if nodes:
        print("\n== nodes ==")
        name_w = max(len(n) for n in nodes)
        for name, state in sorted(nodes.items()):
            flags = ""
            if state.get("stale"):
                flags = f"  STALE ({state.get('missed_scrapes', '?')} missed scrapes)"
            print(f"  {name:<{name_w}}  {state.get('health', '?'):<7}{flags}")

    totals = doc.get("totals", {})
    if totals:
        groups = defaultdict(list)
        for name, value in totals.items():
            groups[name.split(".", 1)[0] if "." in name else "(other)"].append(
                (name, value))
        print("\n== cluster totals (counters summed) ==")
        for subsystem in sorted(groups):
            for name, value in sorted(groups[subsystem]):
                shown = str(value) if raw else humanize(name, value)
                print(f"  {name:<44} {shown}")

    metrics = doc.get("metrics", {})
    print_health_summary(metrics)
    print_filter_summary(metrics)
    print_integrity_summary(metrics)
    print_write_path_summary(metrics)

    histograms = doc.get("histograms", {})
    if histograms:
        print("\n== merged histograms ==")
        fmt = (lambda n, v: str(v)) if raw else humanize
        for name, h in sorted(histograms.items()):
            count, mx = h.get("count", 0), h.get("max", 0)
            buckets = h.get("buckets", [])
            # Recompute from the merged buckets with within-bucket
            # interpolation (the embedded p50/p99 are bucket upper bounds).
            p50 = percentile_from_buckets(buckets, count, mx, 50)
            p99 = percentile_from_buckets(buckets, count, mx, 99)
            print(f"  {name:<36} count {count:>8}"
                  f"  p50 {fmt(name, p50)}  p99 {fmt(name, p99)}"
                  f"  max {fmt(name, mx)}")
            for e in h.get("exemplars", []):
                marker = " <--" if trace_filter and e.get("trace") == trace_filter else ""
                print(f"      exemplar {e.get('trace')} @ {fmt(name, e.get('value', 0))}"
                      f" [{e.get('node', '?')}]{marker}")

    slow = doc.get("slow_ops", {})
    if slow:
        print("\n== slow ops ==")
        for node, records in sorted(slow.items()):
            print(f"  {node}:")
            print_slow_ops(records, indent="    ")

    if trace_filter:
        hits = []
        for name, h in histograms.items():
            for e in h.get("exemplars", []):
                if e.get("trace") == trace_filter:
                    hits.append((name, e))
        for node, records in slow.items():
            for r in records:
                if r.get("trace") == trace_filter:
                    hits.append((f"slow-op ring on {node}", r))
        print(f"\n== trace {trace_filter} ==")
        if hits:
            for where, _ in hits:
                print(f"  seen in {where}")
            print("  (fetch the owning node's scrape for the span tree)")
        else:
            print("  not referenced by any exemplar or slow-op record")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("scrape", nargs="?", help="scrape JSON file (default: stdin)")
    parser.add_argument("--cluster", action="store_true",
                        help="input is the master's federated cluster document"
                             " (auto-detected from the payload shape)")
    parser.add_argument("--trace", metavar="ID",
                        help="look up one trace id (as printed by exemplars,"
                             " e.g. 0x8000abc...): filter span trees to it and"
                             " mark every exemplar/slow-op referencing it")
    parser.add_argument("--traces-out", metavar="FILE",
                        help="write the embedded chrome://tracing JSON to FILE")
    parser.add_argument("--raw", action="store_true",
                        help="print raw numbers (no ns/bytes humanization)")
    args = parser.parse_args()

    if args.scrape:
        with open(args.scrape) as f:
            doc = json.load(f)
    else:
        doc = json.load(sys.stdin)

    if args.cluster or "cluster" in doc:
        print_cluster(doc, args.raw, args.trace)
        return

    print(f"node: {doc.get('node', '?')}")
    print_metrics(doc.get("metrics", {}), args.raw)
    print_health_summary(doc.get("metrics", {}), doc.get("node", "?"))
    print_filter_summary(doc.get("metrics", {}))
    print_integrity_summary(doc.get("metrics", {}))
    print_write_path_summary(doc.get("metrics", {}))
    print_request_latency_summary(doc.get("metrics", {}), args.raw)
    print_slow_ops_section(doc)
    print_traces(doc.get("spans", {}), args.trace)

    if args.traces_out:
        with open(args.traces_out, "w") as f:
            json.dump(doc.get("spans", {}), f)
        print(f"\nwrote chrome://tracing JSON to {args.traces_out}"
              " (load via chrome://tracing or ui.perfetto.dev)")


if __name__ == "__main__":
    main()
