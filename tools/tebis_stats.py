#!/usr/bin/env python3
"""Pretty-printer for Tebis telemetry scrapes (PR 5).

Reads the JSON payload produced by the kStatsScrape admin RPC
(TebisClient::ScrapeStats), RegionServer::ScrapeJson(), or
SimCluster::ScrapeJson() -- shape:

    {"node": "...", "metrics": {"name{k=v,...}": value, ...},
     "spans": {"traceEvents": [...]}}

and renders:
  * metrics grouped by subsystem prefix (kv., repl., backup., net., ...),
    label sets aligned, values humanized (ns -> ms, bytes -> MiB);
  * per-trace span trees reconstructed from the chrome trace events,
    ordered by start time, with durations.

Usage:
    tebis_stats.py [scrape.json]          # read file (default: stdin)
    tebis_stats.py --traces-out out.json  # also write chrome://tracing JSON
    tebis_stats.py --raw                  # no humanization of values
"""

import argparse
import json
import re
import sys
from collections import defaultdict

METRIC_RE = re.compile(r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$")

# Order spans appear in the shipping pipeline, for stable tree rendering.
SPAN_ORDER = {"claim": 0, "merge_build": 1, "ship_segment": 2,
              "rewrite_segment": 3, "commit": 4}


def parse_metric_key(key):
    """Split 'name{k=v,k2=v2}' into (name, {k: v})."""
    m = METRIC_RE.match(key)
    if m is None:
        return key, {}
    labels = {}
    raw = m.group("labels")
    if raw:
        for pair in raw.split(","):
            k, _, v = pair.partition("=")
            labels[k] = v
    return m.group("name"), labels


def humanize(name, value):
    if not isinstance(value, (int, float)):
        return str(value)
    if name.endswith("_ns") or "_ns_" in name:
        if value >= 1e9:
            return f"{value / 1e9:.3f} s"
        if value >= 1e6:
            return f"{value / 1e6:.3f} ms"
        if value >= 1e3:
            return f"{value / 1e3:.3f} us"
        return f"{value:.0f} ns"
    if "bytes" in name:
        if value >= 1 << 30:
            return f"{value / (1 << 30):.2f} GiB"
        if value >= 1 << 20:
            return f"{value / (1 << 20):.2f} MiB"
        if value >= 1 << 10:
            return f"{value / (1 << 10):.2f} KiB"
        return f"{value:.0f} B"
    if isinstance(value, float):
        return f"{value:g}"
    return f"{value}"


def print_metrics(metrics, raw):
    # subsystem -> [(name, labels-str, value)]
    groups = defaultdict(list)
    for key, value in metrics.items():
        name, labels = parse_metric_key(key)
        subsystem = name.split(".", 1)[0] if "." in name else "(other)"
        label_str = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        groups[subsystem].append((name, label_str, value))

    for subsystem in sorted(groups):
        rows = sorted(groups[subsystem])
        print(f"\n== {subsystem} ==")
        name_w = max(len(r[0]) for r in rows)
        label_w = max(len(r[1]) for r in rows)
        for name, label_str, value in rows:
            shown = str(value) if raw else humanize(name, value)
            print(f"  {name:<{name_w}}  {label_str:<{label_w}}  {shown}")


def print_filter_summary(metrics):
    """Derived bloom-filter effectiveness (PR 7): per-level skip and
    false-positive rates on the primary read path (kv.filter_*, labeled by
    level) plus the aggregate over the backup replica read path
    (backup.filter_*). Rates are ratios of raw counters, so this section is
    unaffected by --raw."""
    # scope -> {"checks": n, "negatives": n, "false_positives": n}
    scopes = defaultdict(lambda: defaultdict(int))
    for key, value in metrics.items():
        name, labels = parse_metric_key(key)
        for prefix, scope in (("kv.filter_", labels.get("level", "?")),
                              ("backup.filter_", "backup")):
            if name.startswith(prefix):
                field = name[len(prefix):]
                if field in ("checks", "negatives", "false_positives"):
                    scopes[scope][field] += value
    rows = [(scope, c) for scope, c in sorted(scopes.items()) if c.get("checks")]
    if not rows:
        return
    print("\n== filter effectiveness ==")
    for scope, c in rows:
        checks = c["checks"]
        negatives = c.get("negatives", 0)
        false_pos = c.get("false_positives", 0)
        maybes = checks - negatives
        fp_rate = f"{100.0 * false_pos / maybes:.2f}% fp" if maybes else "no maybes"
        print(f"  {scope:<8} {checks:>10} checks"
              f"  {100.0 * negatives / checks:6.2f}% skipped"
              f"  {fp_rate}")


def print_integrity_summary(metrics):
    """Derived integrity health (PR 8): scrub coverage, corruption
    detections by path, repair traffic, and any levels still quarantined.
    Raw-counter ratios and sums, so this section is unaffected by --raw."""
    totals = defaultdict(int)
    read_corruptions = defaultdict(int)
    for key, value in metrics.items():
        name, labels = parse_metric_key(key)
        if name.startswith("integrity."):
            totals[name[len("integrity."):]] += value
        elif name == "kv.read_corruptions":
            read_corruptions[labels.get("source", "?")] += value
        elif name == "backup.segments_crc_rejected":
            totals["ship_crc_rejected"] += value
    if not totals and not read_corruptions:
        return
    print("\n== integrity ==")
    print(f"  scrubbed          {humanize('bytes', totals.get('scrub_bytes', 0))}")
    found = totals.get("corruptions_found", 0)
    repaired = totals.get("corruptions_repaired", 0)
    print(f"  corruptions       {found} found, {repaired} repaired"
          f" ({found - repaired} outstanding)")
    if read_corruptions:
        by_src = ", ".join(f"{v} from {k}" for k, v in sorted(read_corruptions.items()))
        print(f"  read-path hits    {by_src}")
    print(f"  repair traffic    {totals.get('repair_fetches', 0)} fetched,"
          f" {totals.get('repair_serves', 0)} served to peers")
    if totals.get("ship_crc_rejected"):
        print(f"  ship rejects      {totals['ship_crc_rejected']} shipped segments"
              " failed payload crc")
    quarantined = totals.get("quarantined_levels", 0)
    status = "none -- healthy" if not quarantined else f"{quarantined} LEVELS DEGRADED"
    print(f"  quarantined       {status}")


def print_write_path_summary(metrics):
    """Derived write-path health (PR 9): group-commit batching on the engine
    (wp.batch_* from KvStore::WriteBatch), doorbell coalescing on the
    replication plane (wp.doorbell* from PrimaryRegion), and WAL-time
    large-value separation. Histogram samples arrive as name{labels}_count/
    _p50/_p99/_max keys. Raw-counter ratios, so unaffected by --raw."""
    totals = defaultdict(int)
    # histogram field -> {suffix: aggregated value}; percentiles keep the max
    # across nodes (a conservative cluster-wide view), counts sum.
    hists = defaultdict(dict)
    hist_re = re.compile(r"^(?P<name>wp\.[^{]+?)(?:\{.*\})?_(?P<suffix>count|p50|p99|max)$")
    for key, value in metrics.items():
        m = hist_re.match(key)
        if m is not None:
            name, suffix = m.group("name"), m.group("suffix")
            if suffix == "count":
                hists[name][suffix] = hists[name].get(suffix, 0) + value
            else:
                hists[name][suffix] = max(hists[name].get(suffix, 0), value)
            continue
        name, _ = parse_metric_key(key)
        if name.startswith("wp."):
            totals[name[len("wp."):]] += value
    if not totals and not hists:
        return
    print("\n== write path ==")
    groups = totals.get("batch_groups", 0)
    ops = totals.get("batch_ops", 0)
    if groups:
        print(f"  group commit      {groups} groups, {ops} ops"
              f" ({ops / groups:.1f} ops/group)")
    size_h = hists.get("wp.batch_size", {})
    if size_h.get("count"):
        print(f"  batch size        p50 {size_h.get('p50', 0)}"
              f"  p99 {size_h.get('p99', 0)}  max {size_h.get('max', 0)}"
              f"  ({size_h['count']} groups sampled)")
    lat_h = hists.get("wp.group_commit_latency_ns", {})
    if lat_h.get("count"):
        print(f"  group latency     p50 {humanize('_ns', lat_h.get('p50', 0))}"
              f"  p99 {humanize('_ns', lat_h.get('p99', 0))}"
              f"  max {humanize('_ns', lat_h.get('max', 0))}")
    doorbells = totals.get("doorbells", 0)
    records = totals.get("doorbell_records", 0)
    if doorbells:
        print(f"  doorbells         {doorbells} writes carried {records} records"
              f" ({records / doorbells:.1f} records/doorbell coalesced)")
    separations = totals.get("large_value_separations", 0)
    if separations or totals.get("large_records_replicated", 0):
        print(f"  large values      {separations} separated at WAL time,"
              f" {totals.get('large_records_replicated', 0)} mirrored to the"
              " large-log family")


def print_traces(spans):
    events = spans.get("traceEvents", []) if isinstance(spans, dict) else spans
    pid_names = {}
    complete = []
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "process_name":
            pid_names[ev.get("pid")] = ev.get("args", {}).get("name", "?")
        elif ev.get("ph") == "X":
            complete.append(ev)
    if not complete:
        print("\n(no spans recorded)")
        return

    # (trace id, compaction id) identifies one pipeline run even when a
    # stream id is reused across compactions within an epoch.
    traces = defaultdict(list)
    for ev in complete:
        args = ev.get("args", {})
        traces[(args.get("trace", "?"), args.get("compaction", "?"))].append(ev)

    print(f"\n== traces ({len(traces)} pipeline runs, {len(complete)} spans) ==")
    for (trace_id, compaction), evs in sorted(
            traces.items(), key=lambda item: min(e["ts"] for e in item[1])):
        evs.sort(key=lambda e: (SPAN_ORDER.get(e["name"], 99), e["ts"]))
        base_ts = min(e["ts"] for e in evs)
        print(f"\n  trace {trace_id} (compaction #{compaction})")
        for ev in evs:
            node = pid_names.get(ev.get("pid"), "?")
            args = ev.get("args", {})
            depth = 1 if SPAN_ORDER.get(ev["name"], 99) < 2 else 2
            extra = ""
            if args.get("bytes"):
                extra += f"  {humanize('bytes', args['bytes'])}"
            src, dst = args.get("src_level", -1), args.get("dst_level", -1)
            if src >= 0 or dst >= 0:
                extra += f"  L{src}->L{dst}"
            print(f"  {'  ' * depth}{ev['name']:<16} [{node}]"
                  f"  +{(ev['ts'] - base_ts) / 1000.0:9.3f} ms"
                  f"  dur {ev.get('dur', 0) / 1000.0:9.3f} ms{extra}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("scrape", nargs="?", help="scrape JSON file (default: stdin)")
    parser.add_argument("--traces-out", metavar="FILE",
                        help="write the embedded chrome://tracing JSON to FILE")
    parser.add_argument("--raw", action="store_true",
                        help="print raw numbers (no ns/bytes humanization)")
    args = parser.parse_args()

    if args.scrape:
        with open(args.scrape) as f:
            doc = json.load(f)
    else:
        doc = json.load(sys.stdin)

    print(f"node: {doc.get('node', '?')}")
    print_metrics(doc.get("metrics", {}), args.raw)
    print_filter_summary(doc.get("metrics", {}))
    print_integrity_summary(doc.get("metrics", {}))
    print_write_path_summary(doc.get("metrics", {}))
    print_traces(doc.get("spans", {}))

    if args.traces_out:
        with open(args.traces_out, "w") as f:
            json.dump(doc.get("spans", {}), f)
        print(f"\nwrote chrome://tracing JSON to {args.traces_out}"
              " (load via chrome://tracing or ui.perfetto.dev)")


if __name__ == "__main__":
    main()
