#!/usr/bin/env python3
"""Generates the README metrics-reference table from instrument names (PR 10).

Scans src/ for instrument registrations -- GetCounter/GetGauge/GetHistogram
call sites -- plus the scrape-time collector samples and watchdog gauges that
publish by literal name, and rewrites the README.md section between the
`<!-- metrics-table:begin -->` / `<!-- metrics-table:end -->` markers with one
table row per instrument: name, kind, defining file. Run from the repo root:

    python3 tools/gen_metrics_table.py            # rewrite README.md in place
    python3 tools/gen_metrics_table.py --check    # exit 1 if README is stale
    python3 tools/gen_metrics_table.py --stdout   # print the table only

The table is generated, not hand-edited -- check.sh runs --check so a new
instrument without a regenerated README fails CI.
"""

import argparse
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BEGIN = "<!-- metrics-table:begin -->"
END = "<!-- metrics-table:end -->"

REGISTERED_RE = re.compile(r'Get(Counter|Gauge|Histogram)\(\s*"([a-z0-9_.]+)"')
# Instruments published by literal name outside the registry helpers: the
# watchdog's publish() lambda and scrape-time collector MetricSamples.
PUBLISHED_RE = re.compile(r'(?:publish\(|\.name = )"([a-z0-9_.]+\.[a-z0-9_.]+)"')

SUBSYSTEM_NOTES = {
    "kv": "LSM engine (per store; labeled node/region/role)",
    "repl": "primary replication path",
    "backup": "backup regions (rewrite/replay/replica reads)",
    "net": "RPC + fabric",
    "storage": "simulated NVMe devices",
    "integrity": "checksums, scrub, repair (PR 8)",
    "wp": "write path: group commit + doorbells (PR 9)",
    "trace": "sampled request tracing (PR 10)",
    "health": "watchdog verdicts, 0 green / 1 yellow / 2 red (PR 10)",
}


def collect():
    instruments = {}  # name -> (kind, relpath)
    for root, _, files in os.walk(os.path.join(REPO, "src")):
        for fname in files:
            if not fname.endswith((".cc", ".h")):
                continue
            path = os.path.join(root, fname)
            rel = os.path.relpath(path, REPO)
            with open(path) as f:
                text = f.read()
            for kind, name in REGISTERED_RE.findall(text):
                instruments.setdefault(name, (kind.lower(), rel))
            for name in PUBLISHED_RE.findall(text):
                if "." in name:
                    instruments.setdefault(name, ("gauge", rel))
    return instruments


def render(instruments):
    lines = ["| Instrument | Kind | Defined in |",
             "|---|---|---|"]
    last_subsystem = None
    for name in sorted(instruments):
        kind, rel = instruments[name]
        subsystem = name.split(".", 1)[0]
        if subsystem != last_subsystem:
            note = SUBSYSTEM_NOTES.get(subsystem, "")
            lines.append(f"| **{subsystem}.** — {note} | | |")
            last_subsystem = subsystem
        lines.append(f"| `{name}` | {kind} | `{rel}` |")
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="verify README.md is current; do not write")
    parser.add_argument("--stdout", action="store_true",
                        help="print the table instead of editing README.md")
    args = parser.parse_args()

    table = render(collect())
    if args.stdout:
        print(table)
        return

    readme_path = os.path.join(REPO, "README.md")
    with open(readme_path) as f:
        readme = f.read()
    if BEGIN not in readme or END not in readme:
        print(f"README.md is missing the {BEGIN} / {END} markers", file=sys.stderr)
        sys.exit(1)
    head, rest = readme.split(BEGIN, 1)
    _, tail = rest.split(END, 1)
    updated = head + BEGIN + "\n" + table + "\n" + END + tail
    if args.check:
        if updated != readme:
            print("README metrics table is stale; run tools/gen_metrics_table.py",
                  file=sys.stderr)
            sys.exit(1)
        return
    if updated != readme:
        with open(readme_path, "w") as f:
            f.write(updated)
        print("README.md metrics table regenerated")
    else:
        print("README.md metrics table already current")


if __name__ == "__main__":
    main()
