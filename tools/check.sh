#!/usr/bin/env bash
# Tier-1 gate: the fast test label, run twice — once plain, once under
# ThreadSanitizer. The background compaction pipeline (PR 2) moves compactions
# off the writer thread, so a plain pass alone no longer proves the absence of
# data races; TSan over the same suite does. Run this before every merge:
#
#   tools/check.sh            # both passes
#   tools/check.sh --plain    # plain pass only (quick inner loop)
#   tools/check.sh --tsan     # TSan pass only
#
# Build trees: build/ (plain) and build-tsan/ (TEBIS_SANITIZE=thread). The
# slow label (soak/fuzz/stress) is tier-2: `ctest --test-dir build -L slow`.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
run_plain=1
run_tsan=1
case "${1:-}" in
  --plain) run_tsan=0 ;;
  --tsan) run_plain=0 ;;
  "") ;;
  *) echo "usage: tools/check.sh [--plain|--tsan]" >&2; exit 2 ;;
esac

if [[ $run_plain -eq 1 ]]; then
  echo "== tier-1 pass 1/2: plain build, fast label =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs"
  ctest --test-dir build -L fast --output-on-failure -j "$jobs"
fi

if [[ $run_tsan -eq 1 ]]; then
  echo "== tier-1 pass 2/2: ThreadSanitizer build, fast label =="
  cmake -B build-tsan -S . -DTEBIS_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$jobs"
  TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    ctest --test-dir build-tsan -L fast --output-on-failure -j "$jobs"
fi

echo "== tier-1 gate: OK =="
