#!/usr/bin/env bash
# Tier-1 gate: the fast test label, run twice — once plain, once under
# ThreadSanitizer — plus the chaos label under AddressSanitizer. The
# background compaction pipeline (PR 2) moves compactions off the writer
# thread, so a plain pass alone no longer proves the absence of data races;
# TSan over the same suite does. The chaos label replays the deterministic
# fault-injection matrix (crash, partition, stall, deposed-primary) where
# use-after-free bugs in teardown/failover paths hide; ASan catches those.
# Run this before every merge:
#
#   tools/check.sh            # all three passes (with their addenda)
#   tools/check.sh --plain    # plain pass: fast + telemetry + filters + scrub + batch, BENCH gate
#   tools/check.sh --tsan     # TSan pass: fast + streams + telemetry + replica + filters + scrub + batch
#   tools/check.sh --chaos    # ASan pass: chaos + streams + replica labels
#
# Build trees: build/ (plain), build-tsan/ (TEBIS_SANITIZE=thread) and
# build-asan/ (TEBIS_SANITIZE=address). The slow label (soak/fuzz/stress) is
# tier-2: `ctest --test-dir build -L slow`.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
run_plain=1
run_tsan=1
run_chaos=1
case "${1:-}" in
  --plain) run_tsan=0; run_chaos=0 ;;
  --tsan) run_plain=0; run_chaos=0 ;;
  --chaos) run_plain=0; run_tsan=0 ;;
  "") ;;
  *) echo "usage: tools/check.sh [--plain|--tsan|--chaos]" >&2; exit 2 ;;
esac

if [[ $run_plain -eq 1 ]]; then
  echo "== tier-1 pass 1/3: plain build, fast label =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs"
  ctest --test-dir build -L fast --no-tests=error --output-on-failure -j "$jobs"
  # Unified telemetry plane (PR 5): the metrics/trace/scrape suite by itself,
  # so a telemetry regression names itself instead of hiding in the fast run.
  echo "== tier-1 pass 1/3 (addendum): plain build, telemetry label =="
  ctest --test-dir build -L telemetry --no-tests=error --output-on-failure -j "$jobs"
  # Emission gate: the bench harness must write BENCH_*.json sections from
  # registry snapshots (not hand-plucked struct fields) and the overhead A/B
  # must exist — cheap greps that catch an accidental revert.
  echo "== tier-1 pass 1/3 (addendum): BENCH emission gate =="
  grep -q "SetFromSnapshot" bench/bench_common.cc || {
    echo "BENCH gate: bench_common.cc lost the registry-snapshot emission path" >&2; exit 1; }
  grep -q "DiffSnapshots" bench/bench_common.cc || {
    echo "BENCH gate: bench_common.cc lost the per-phase snapshot delta" >&2; exit 1; }
  grep -q "BENCH_" bench/bench_common.cc || {
    echo "BENCH gate: bench_common.cc no longer writes BENCH_*.json" >&2; exit 1; }
  grep -q "RunTelemetryOverheadComparison" bench/bench_micro.cc || {
    echo "BENCH gate: bench_micro.cc lost the telemetry-overhead A/B (BENCH_pr5.json)" >&2; exit 1; }
  grep -q "RunReplicaReadComparison" bench/bench_micro.cc || {
    echo "BENCH gate: bench_micro.cc lost the replica-read fan-out A/B (BENCH_pr6.json)" >&2; exit 1; }
  grep -q "RunFilterComparison" bench/bench_micro.cc || {
    echo "BENCH gate: bench_micro.cc lost the bloom-filter negative-lookup A/B (BENCH_pr7.json)" >&2; exit 1; }
  grep -q "RunScrubOverheadComparison" bench/bench_micro.cc || {
    echo "BENCH gate: bench_micro.cc lost the scrub-overhead A/B (BENCH_pr8.json)" >&2; exit 1; }
  grep -q "RunWritePathComparison" bench/bench_micro.cc || {
    echo "BENCH gate: bench_micro.cc lost the write-path group-commit A/B (BENCH_pr9.json)" >&2; exit 1; }
  grep -q "RunRequestTracingComparison" bench/bench_micro.cc || {
    echo "BENCH gate: bench_micro.cc lost the request-tracing overhead A/B (BENCH_pr10.json)" >&2; exit 1; }
  # Telemetry-overhead regression gate (PR 10): the sampled-tracing A/B's last
  # recorded run must be within its budget. bench_micro refreshes the file;
  # the gate catches a committed regression without rerunning the bench here.
  if [[ -f BENCH_pr10.json ]]; then
    python3 - <<'EOF' || exit 1
import json
doc = json.load(open("BENCH_pr10.json"))
section = doc["request_tracing"]
overhead, budget = section["overhead_pct"], section["budget_pct"]
if overhead > budget:
    raise SystemExit(
        f"BENCH gate: request-tracing overhead {overhead:.2f}% exceeds budget {budget:.2f}%")
print(f"  request-tracing overhead {overhead:.2f}% within budget {budget:.2f}%")
EOF
  fi
  # Observability coverage gates (PR 10): every health.*/wp.*/trace.*
  # instrument registered in src/ must be understood by tebis_stats.py, and
  # the README metrics-reference table must be regenerated when instruments
  # change.
  echo "== tier-1 pass 1/3 (addendum): observability coverage gate =="
  for name in $(grep -rhoE '"(health|wp|trace)\.[a-z0-9_.]+"' src | tr -d '"' | sort -u); do
    grep -qF "$name" tools/tebis_stats.py || {
      echo "coverage gate: instrument $name is not referenced in tools/tebis_stats.py" >&2
      exit 1; }
  done
  python3 tools/gen_metrics_table.py --check || exit 1
  # Shipped bloom filters (PR 7): the filter suite by itself, so a filter or
  # manifest-versioning regression names itself.
  echo "== tier-1 pass 1/3 (addendum): plain build, filters label =="
  ctest --test-dir build -L filters --no-tests=error --output-on-failure -j "$jobs"
  # End-to-end integrity (PR 8): checksummed segments, scrub, online repair.
  echo "== tier-1 pass 1/3 (addendum): plain build, scrub label =="
  ctest --test-dir build -L scrub --no-tests=error --output-on-failure -j "$jobs"
  # Write-path group commit (PR 9): batched frames, coalesced doorbells,
  # large-value separation, and the group-commit crash points.
  echo "== tier-1 pass 1/3 (addendum): plain build, batch label =="
  ctest --test-dir build -L batch --no-tests=error --output-on-failure -j "$jobs"
fi

if [[ $run_tsan -eq 1 ]]; then
  echo "== tier-1 pass 2/3: ThreadSanitizer build, fast label =="
  cmake -B build-tsan -S . -DTEBIS_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$jobs"
  TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    ctest --test-dir build-tsan -L fast --no-tests=error --output-on-failure -j "$jobs"
  # Multiplexed shipping streams (PR 4): the concurrent-compaction suite must
  # be race-free — rerun just the streams label so a regression names itself.
  echo "== tier-1 pass 2/3 (addendum): ThreadSanitizer build, streams label =="
  TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    ctest --test-dir build-tsan -L streams --no-tests=error --output-on-failure -j "$jobs"
  # Telemetry plane (PR 5): shared registry + span ring are touched from every
  # worker/replication thread — the suite must be race-free under TSan too.
  echo "== tier-1 pass 2/3 (addendum): ThreadSanitizer build, telemetry label =="
  TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    ctest --test-dir build-tsan -L telemetry --no-tests=error --output-on-failure -j "$jobs"
  # Read-replica serving (PR 6): the history checker runs concurrent writers
  # and replica readers over the shared backup read path — race-freedom here
  # is the whole point of the suite.
  echo "== tier-1 pass 2/3 (addendum): ThreadSanitizer build, replica label =="
  TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    ctest --test-dir build-tsan -L replica --no-tests=error --output-on-failure -j "$jobs"
  # Shipped bloom filters (PR 7): filter installs race with replica reads over
  # the same level trees; the suite must be race-free under TSan.
  echo "== tier-1 pass 2/3 (addendum): ThreadSanitizer build, filters label =="
  TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    ctest --test-dir build-tsan -L filters --no-tests=error --output-on-failure -j "$jobs"
  # Integrity (PR 8): background scrub runs on the compaction pool while
  # foreground reads, repairs, and quarantine flags touch the same levels —
  # the suite must be race-free under TSan. (The seeded corruption soak also
  # rides the ASan chaos pass via its fast-chaos-scrub label.)
  echo "== tier-1 pass 2/3 (addendum): ThreadSanitizer build, scrub label =="
  TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    ctest --test-dir build-tsan -L scrub --no-tests=error --output-on-failure -j "$jobs"
  # Write-path group commit (PR 9): group appends race client threads against
  # the replication doorbell path and both log-family tails — the suite must
  # be race-free under TSan.
  echo "== tier-1 pass 2/3 (addendum): ThreadSanitizer build, batch label =="
  TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    ctest --test-dir build-tsan -L batch --no-tests=error --output-on-failure -j "$jobs"
fi

if [[ $run_chaos -eq 1 ]]; then
  echo "== tier-1 pass 3/3: AddressSanitizer build, chaos label =="
  cmake -B build-asan -S . -DTEBIS_SANITIZE=address >/dev/null
  cmake --build build-asan -j "$jobs"
  if ! ctest --test-dir build-asan -L chaos --no-tests=error --output-on-failure -j "$jobs"; then
    echo "chaos pass failed; replay a seeded suite deterministically with" >&2
    echo "  TEBIS_CHAOS_SEED=<seed from the failing test's trace> \\" >&2
    echo "    ctest --test-dir build-asan -L chaos -R <failing test> --output-on-failure" >&2
    exit 1
  fi
  echo "== tier-1 pass 3/3 (addendum): AddressSanitizer build, streams label =="
  ctest --test-dir build-asan -L streams --no-tests=error --output-on-failure -j "$jobs"
  # Replica reads under failover / half-shipped streams (PR 6): the chaos
  # scenarios where a read could touch freed state or torn stream buffers.
  echo "== tier-1 pass 3/3 (addendum): AddressSanitizer build, replica label =="
  ctest --test-dir build-asan -L replica --no-tests=error --output-on-failure -j "$jobs"
fi

echo "== tier-1 gate: OK =="
