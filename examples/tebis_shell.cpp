// Interactive shell over a replicated Tebis cluster — the kind of tool a
// downstream user pokes the system with. Commands:
//   put <key> <value>      get <key>          del <key>
//   scan <start> <n>       stats              regions
//   crash <server>         fill <n>           help / quit
//
//   ./build/examples/tebis_shell
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "src/cluster/client.h"
#include "src/cluster/coordinator.h"
#include "src/cluster/master.h"
#include "src/cluster/region_server.h"
#include "src/common/logging.h"

using namespace tebis;

int main() {
  SetLogLevel(LogLevel::kWarn);
  Fabric fabric;
  Coordinator zk;

  RegionServerOptions options;
  options.device_options.segment_size = 64 * 1024;
  options.device_options.max_segments = 1 << 16;
  options.kv_options.l0_max_entries = 512;
  options.replication_mode = ReplicationMode::kSendIndex;
  std::vector<std::unique_ptr<RegionServer>> servers;
  std::map<std::string, RegionServer*> directory;
  for (int i = 0; i < 3; ++i) {
    servers.push_back(
        std::make_unique<RegionServer>(&fabric, &zk, "server" + std::to_string(i), options));
    (void)servers.back()->Start();
    directory[servers.back()->name()] = servers.back().get();
  }
  Master master(&zk, "master0", directory);
  (void)master.Campaign();
  auto map = RegionMap::CreateUniform(6, "", 10, 10000000000ull,
                                      {"server0", "server1", "server2"}, 2);
  if (Status s = master.Bootstrap(*map); !s.ok()) {
    fprintf(stderr, "bootstrap failed: %s\n", s.ToString().c_str());
    return 1;
  }
  TebisClient client(
      &fabric, "shell",
      [&](const std::string& name) -> ServerEndpoint* {
        auto it = directory.find(name);
        return (it == directory.end() || it->second->crashed()) ? nullptr
                                                                : it->second->client_endpoint();
      },
      {"server0", "server1", "server2"});
  client.set_rpc_timeout_ns(500'000'000ull);
  (void)client.Connect();

  printf("Tebis shell — 3 servers, 6 regions, 2-way Send-Index replication.\n");
  printf("Keys are 10-digit decimal strings (e.g. 0000000042). Type 'help'.\n\n");

  std::string line;
  while (true) {
    printf("tebis> ");
    fflush(stdout);
    if (!std::getline(std::cin, line)) {
      break;
    }
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) {
      continue;
    }
    if (cmd == "quit" || cmd == "exit") {
      break;
    }
    if (cmd == "help") {
      printf("  put <key> <value> | get <key> | del <key> | scan <start> <n>\n");
      printf("  fill <n>          | stats     | regions   | crash <server> | quit\n");
    } else if (cmd == "put") {
      std::string key, value;
      in >> key >> value;
      Status s = client.Put(key, value);
      printf("%s\n", s.ToString().c_str());
    } else if (cmd == "get") {
      std::string key;
      in >> key;
      auto v = client.Get(key);
      printf("%s\n", v.ok() ? v->c_str() : v.status().ToString().c_str());
    } else if (cmd == "del") {
      std::string key;
      in >> key;
      printf("%s\n", client.Delete(key).ToString().c_str());
    } else if (cmd == "scan") {
      std::string start;
      uint32_t n = 10;
      in >> start >> n;
      auto pairs = client.Scan(start, n);
      if (!pairs.ok()) {
        printf("%s\n", pairs.status().ToString().c_str());
        continue;
      }
      for (const auto& kv : *pairs) {
        printf("  %s = %s\n", kv.key.c_str(), kv.value.c_str());
      }
      printf("(%zu results)\n", pairs->size());
    } else if (cmd == "fill") {
      uint64_t n = 1000;
      in >> n;
      uint64_t ok = 0;
      for (uint64_t i = 0; i < n; ++i) {
        char key[32];
        snprintf(key, sizeof(key), "%010llu", static_cast<unsigned long long>(i * 7919 % n));
        if (client.Put(key, "fill-" + std::to_string(i)).ok()) {
          ok++;
        }
      }
      printf("inserted %llu keys\n", static_cast<unsigned long long>(ok));
    } else if (cmd == "stats") {
      for (auto& server : servers) {
        if (server->crashed()) {
          printf("  %s: CRASHED\n", server->name().c_str());
          continue;
        }
        RegionServerStats stats = server->Aggregate();
        printf("  %s: puts=%llu gets=%llu compactions=%llu shipped=%.1fKB\n",
               server->name().c_str(), (unsigned long long)stats.puts,
               (unsigned long long)stats.gets, (unsigned long long)stats.compactions,
               static_cast<double>(stats.index_bytes_shipped) / 1024.0);
      }
      printf("  fabric: %.1f KB, client retries: wrong-region=%llu truncated=%llu\n",
             static_cast<double>(fabric.TotalBytes()) / 1024.0,
             (unsigned long long)client.stats().wrong_region_retries,
             (unsigned long long)client.stats().truncated_retries);
    } else if (cmd == "regions") {
      auto current = master.current_map();
      for (const auto& region : current->regions()) {
        printf("  region %u [%s, %s) primary=%s backups=", region.region_id,
               region.start_key.empty() ? "-inf" : region.start_key.c_str(),
               region.end_key.empty() ? "+inf" : region.end_key.c_str(),
               region.primary.c_str());
        for (const auto& backup : region.backups) {
          printf("%s ", backup.c_str());
        }
        printf("\n");
      }
    } else if (cmd == "crash") {
      std::string name;
      in >> name;
      auto it = directory.find(name);
      if (it == directory.end()) {
        printf("unknown server\n");
      } else {
        it->second->Crash();
        printf("%s crashed; master reassigned its regions\n", name.c_str());
      }
    } else {
      printf("unknown command (try 'help')\n");
    }
  }
  for (auto& server : servers) {
    server->Stop();
  }
  return 0;
}
