// Failure handling end to end (paper §3.5): a primary crashes mid-workload,
// the master promotes a backup (log-map re-keying + L0 replay from the
// replicated log and RDMA buffer), wires a replacement backup with a full
// region transfer, and the client recovers through a region-map refresh —
// without losing a single acknowledged write.
//
//   ./build/examples/failover
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "src/cluster/client.h"
#include "src/cluster/coordinator.h"
#include "src/cluster/master.h"
#include "src/cluster/region_server.h"
#include "src/common/logging.h"

using namespace tebis;

int main() {
  SetLogLevel(LogLevel::kWarn);
  Fabric fabric;
  Coordinator zk;

  printf("== Tebis failover demo ==\n\n");

  RegionServerOptions options;
  options.device_options.segment_size = 64 * 1024;
  options.device_options.max_segments = 1 << 16;
  options.kv_options.l0_max_entries = 512;
  options.replication_mode = ReplicationMode::kSendIndex;
  std::vector<std::unique_ptr<RegionServer>> servers;
  std::map<std::string, RegionServer*> directory;
  for (int i = 0; i < 3; ++i) {
    servers.push_back(
        std::make_unique<RegionServer>(&fabric, &zk, "server" + std::to_string(i), options));
    (void)servers.back()->Start();
    directory[servers.back()->name()] = servers.back().get();
  }

  // Two masters: the leader and a standby (paper: a new master is elected via
  // ZooKeeper when the current one fails).
  Master leader(&zk, "masterA", directory);
  Master standby(&zk, "masterB", directory);
  (void)leader.Campaign();
  (void)standby.Campaign();
  printf("masterA leader=%s, masterB leader=%s\n", leader.IsLeader() ? "yes" : "no",
         standby.IsLeader() ? "yes" : "no");

  auto map = RegionMap::CreateUniform(4, "user", 10, 1000000, {"server0", "server1", "server2"},
                                      /*replication_factor=*/2);
  (void)leader.Bootstrap(*map);

  TebisClient client(
      &fabric, "client0",
      [&](const std::string& name) -> ServerEndpoint* {
        auto it = directory.find(name);
        return (it == directory.end() || it->second->crashed()) ? nullptr
                                                                : it->second->client_endpoint();
      },
      {"server0", "server1", "server2"});
  client.set_rpc_timeout_ns(500'000'000ull);
  (void)client.Connect();

  printf("\nwriting 2000 keys (some will live only in L0s + RDMA buffers)...\n");
  std::map<std::string, std::string> acked;
  for (int i = 0; i < 2000; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "user%010d", i * 499 % 1000000);
    std::string value = "v-" + std::to_string(i);
    if (client.Put(key, value).ok()) {
      acked[key] = value;
    }
  }
  printf("acknowledged %zu distinct keys (map version %llu)\n", acked.size(),
         (unsigned long long)client.map_version());

  printf("\n*** crashing server0 (primary for 2 regions, backup for 2) ***\n");
  servers[0]->Crash();
  printf("master updated the map (version bumped):\n");
  for (const auto& region : leader.current_map()->regions()) {
    printf("  region %u: primary=%s backups=%s\n", region.region_id, region.primary.c_str(),
           region.backups.empty() ? "-" : region.backups[0].c_str());
  }

  printf("\nverifying every acknowledged write survived...\n");
  size_t verified = 0;
  for (const auto& [key, value] : acked) {
    auto got = client.Get(key);
    if (!got.ok() || *got != value) {
      printf("  LOST: %s (%s)\n", key.c_str(), got.status().ToString().c_str());
      return 1;
    }
    verified++;
  }
  printf("all %zu keys intact (client retried via %llu map refreshes)\n", verified,
         (unsigned long long)client.stats().map_refreshes);

  printf("\n*** killing the master; the standby takes over ***\n");
  leader.Fail();
  printf("masterB leader=%s\n", standby.IsLeader() ? "yes" : "no");

  printf("\n*** crashing server1 too — the standby handles it ***\n");
  servers[1]->Crash();
  size_t still_ok = 0;
  for (const auto& [key, value] : acked) {
    auto got = client.Get(key);
    if (got.ok() && *got == value) {
      still_ok++;
    }
  }
  printf("%zu/%zu keys readable after losing 2 of 3 servers and the master\n", still_ok,
         acked.size());

  for (auto& server : servers) {
    server->Stop();
  }
  printf("\ndone.\n");
  return still_ok == acked.size() ? 0 : 1;
}
