// Quickstart: a single-node Tebis/Kreon engine — put, get, scan, delete —
// plus a peek at the LSM internals (levels, compactions, value log).
//
//   ./build/examples/quickstart
#include <cstdio>

#include "src/lsm/kv_store.h"
#include "src/storage/block_device.h"

using namespace tebis;

int main() {
  // A simulated NVMe device with 64 KB segments (the paper uses 2 MB; small
  // segments keep this demo snappy).
  BlockDeviceOptions device_options;
  device_options.segment_size = 64 * 1024;
  device_options.max_segments = 1 << 16;
  auto device = BlockDevice::Create(device_options);
  if (!device.ok()) {
    fprintf(stderr, "device: %s\n", device.status().ToString().c_str());
    return 1;
  }

  KvStoreOptions options;
  options.l0_max_entries = 1024;  // small L0 so the demo compacts
  options.growth_factor = 4;
  options.max_levels = 3;
  auto store = KvStore::Create(device->get(), options);
  if (!store.ok()) {
    fprintf(stderr, "store: %s\n", store.status().ToString().c_str());
    return 1;
  }

  printf("== Tebis quickstart ==\n\n");

  // Basic puts and gets.
  (void)(*store)->Put("city:paris", "2.1M");
  (void)(*store)->Put("city:athens", "660K");
  (void)(*store)->Put("city:heraklion", "180K");  // where Tebis was built
  auto population = (*store)->Get("city:heraklion");
  printf("get city:heraklion -> %s\n", population.ok() ? population->c_str() : "miss");

  // Overwrites keep the newest version; deletes hide keys.
  (void)(*store)->Put("city:paris", "2.2M");
  (void)(*store)->Delete("city:athens");
  printf("get city:paris     -> %s (after overwrite)\n", (*store)->Get("city:paris")->c_str());
  printf("get city:athens    -> %s (after delete)\n",
         (*store)->Get("city:athens").status().ToString().c_str());

  // Load enough data to trigger L0 spills and level compactions.
  printf("\nLoading 10000 keys...\n");
  for (int i = 0; i < 10000; ++i) {
    char key[32], value[32];
    snprintf(key, sizeof(key), "user%010d", i);
    snprintf(value, sizeof(value), "profile-%d", i);
    if (Status s = (*store)->Put(key, value); !s.ok()) {
      fprintf(stderr, "put: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // Ordered scans merge L0 with every on-device level.
  auto scan = (*store)->Scan("user0000004997", 4);
  printf("scan from user0000004997:\n");
  for (const auto& kv : *scan) {
    printf("  %s -> %s\n", kv.key.c_str(), kv.value.c_str());
  }

  // A look inside the LSM.
  const KvStoreStats& stats = (*store)->stats();
  printf("\nLSM internals:\n");
  printf("  puts=%llu  compactions=%llu  L0 entries=%llu\n",
         (unsigned long long)stats.puts, (unsigned long long)stats.compactions,
         (unsigned long long)(*store)->l0_entries());
  for (uint32_t level = 1; level <= options.max_levels; ++level) {
    const BuiltTree& tree = (*store)->level(level);
    printf("  L%u: %llu entries, height %u, %zu segments\n", level,
           (unsigned long long)tree.num_entries, tree.height, tree.segments.size());
  }
  printf("  value log: %zu flushed segments + in-memory tail\n",
         (*store)->value_log()->flushed_segments().size());
  printf("  device traffic: %s\n", (*device)->stats().Summary().c_str());

  // Durability: checkpoint to a file-backed device, "crash", recover.
  printf("\nDurability demo (checkpoint -> restart -> recover):\n");
  const std::string image = "/tmp/tebis_quickstart.img";
  SegmentId superblock;
  {
    BlockDeviceOptions durable_options = device_options;
    durable_options.backing_file = image;
    auto durable_device = BlockDevice::Create(durable_options);
    KvStoreOptions durable_store_options = options;
    durable_store_options.auto_checkpoint = true;
    auto durable = KvStore::Create(durable_device->get(), durable_store_options);
    for (int i = 0; i < 2000; ++i) {
      (void)(*durable)->Put("durable:" + std::to_string(i), "survives-restarts");
    }
    (void)(*durable)->value_log()->FlushTail();
    superblock = *(*durable)->Checkpoint();
    printf("  wrote 2000 keys, checkpoint in segment %llu, process 'dies'...\n",
           (unsigned long long)superblock);
  }  // device + store destroyed; only the file remains
  {
    BlockDeviceOptions reopen_options = device_options;
    reopen_options.backing_file = image;
    reopen_options.reopen_existing = true;
    auto durable_device = BlockDevice::Create(reopen_options);
    KvStoreOptions durable_store_options = options;
    durable_store_options.auto_checkpoint = true;
    auto recovered = KvStore::Recover(durable_device->get(), durable_store_options, superblock);
    if (!recovered.ok()) {
      fprintf(stderr, "recover: %s\n", recovered.status().ToString().c_str());
      return 1;
    }
    auto back = (*recovered)->Get("durable:1999");
    printf("  recovered store get durable:1999 -> %s\n",
           back.ok() ? back->c_str() : "MISS");
  }
  return 0;
}
