// A full Tebis cluster over the simulated RDMA fabric: three region servers,
// a master, the coordinator, and a client talking through the RDMA-write
// message protocol (spinning threads, worker pools, region map routing).
// Shows Send-Index replication happening underneath and the client's
// transparent handling of a large value (reply-allocation round trip).
//
//   ./build/examples/replicated_cluster
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "src/cluster/client.h"
#include "src/cluster/coordinator.h"
#include "src/cluster/master.h"
#include "src/cluster/region_server.h"
#include "src/common/logging.h"

using namespace tebis;

int main() {
  SetLogLevel(LogLevel::kWarn);
  Fabric fabric;
  Coordinator zk;

  printf("== Tebis replicated cluster ==\n\n");

  // Three region servers, each with its own simulated NVMe device.
  RegionServerOptions options;
  options.device_options.segment_size = 64 * 1024;
  options.device_options.max_segments = 1 << 16;
  options.kv_options.l0_max_entries = 512;
  options.replication_mode = ReplicationMode::kSendIndex;
  std::vector<std::unique_ptr<RegionServer>> servers;
  std::map<std::string, RegionServer*> directory;
  for (int i = 0; i < 3; ++i) {
    servers.push_back(
        std::make_unique<RegionServer>(&fabric, &zk, "server" + std::to_string(i), options));
    if (Status s = servers.back()->Start(); !s.ok()) {
      fprintf(stderr, "start: %s\n", s.ToString().c_str());
      return 1;
    }
    directory[servers.back()->name()] = servers.back().get();
  }
  printf("started 3 region servers (2 spinning threads + 8 workers each)\n");

  // The master bootstraps 6 regions with 2-way replication: every server is
  // primary for two regions and backup for two others.
  Master master(&zk, "master0", directory);
  (void)master.Campaign();
  auto map = RegionMap::CreateUniform(6, "user", 10, 1000000, {"server0", "server1", "server2"},
                                      /*replication_factor=*/2);
  if (Status s = master.Bootstrap(*map); !s.ok()) {
    fprintf(stderr, "bootstrap: %s\n", s.ToString().c_str());
    return 1;
  }
  printf("master bootstrapped 6 regions, 2-way Send-Index replication\n");
  for (const auto& region : master.current_map()->regions()) {
    printf("  region %u [%s, %s): primary=%s backups=%s\n", region.region_id,
           region.start_key.empty() ? "-inf" : region.start_key.c_str(),
           region.end_key.empty() ? "+inf" : region.end_key.c_str(), region.primary.c_str(),
           region.backups[0].c_str());
  }

  // A client connects, caches the region map, and issues pipelined ops.
  TebisClient client(
      &fabric, "client0",
      [&](const std::string& name) -> ServerEndpoint* {
        auto it = directory.find(name);
        return (it == directory.end() || it->second->crashed()) ? nullptr
                                                                : it->second->client_endpoint();
      },
      {"server0", "server1", "server2"});
  if (Status s = client.Connect(); !s.ok()) {
    fprintf(stderr, "connect: %s\n", s.ToString().c_str());
    return 1;
  }

  printf("\nwriting 9000 keys through the RDMA-write protocol...\n");
  for (int i = 0; i < 9000; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "user%010d", i * 333 % 1000000);
    if (Status s = client.Put(key, "value-" + std::to_string(i)); !s.ok()) {
      fprintf(stderr, "put: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  auto value = client.Get("user0000000000");
  printf("get user0000000000 -> %s\n", value.ok() ? value->c_str() : "miss");

  // A value too large for the default reply allocation: the server replies
  // with the needed size and the client retries (paper section 3.4.1).
  std::string big(8000, 'X');
  (void)client.Put("user0000000777", big);
  auto big_read = client.Get("user0000000777");
  printf("8000-byte value read back: %s (%llu truncation retries)\n",
         big_read.ok() && *big_read == big ? "intact" : "BROKEN",
         (unsigned long long)client.stats().truncated_retries);

  // What the cluster did underneath.
  printf("\ncluster internals:\n");
  for (auto& server : servers) {
    RegionServerStats stats = server->Aggregate();
    printf("  %s: %llu puts, %llu compactions, rewrite cpu %.1f ms, shipped %.1f KB\n",
           server->name().c_str(), (unsigned long long)stats.puts,
           (unsigned long long)stats.compactions,
           static_cast<double>(stats.rewrite_index_cpu_ns) / 1e6,
           static_cast<double>(stats.index_bytes_shipped) / 1024.0);
  }
  printf("  fabric: %.1f KB moved\n", static_cast<double>(fabric.TotalBytes()) / 1024.0);

  for (auto& server : servers) {
    server->Stop();
  }
  printf("\ndone.\n");
  return 0;
}
