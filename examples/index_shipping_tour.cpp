// A guided tour of the paper's core mechanism (§3.3): watch a compaction on
// the primary ship its pre-built B+ tree segment by segment, and the backup
// rewrite device offsets through its log and index maps — then verify the
// backup serves the exact same data from its own device without ever having
// compacted, and promote it.
//
//   ./build/examples/index_shipping_tour
#include <cstdio>

#include "src/net/fabric.h"
#include "src/replication/local_backup_channel.h"
#include "src/replication/primary_region.h"
#include "src/replication/send_index_backup.h"
#include "src/storage/block_device.h"

using namespace tebis;

namespace {

std::unique_ptr<BlockDevice> MakeDevice() {
  BlockDeviceOptions options;
  options.segment_size = 64 * 1024;
  options.max_segments = 1 << 16;
  auto device = BlockDevice::Create(options);
  return std::move(*device);
}

}  // namespace

int main() {
  printf("== Send-Index shipping tour ==\n\n");

  Fabric fabric;
  auto primary_device = MakeDevice();
  auto backup_device = MakeDevice();

  KvStoreOptions options;
  options.l0_max_entries = 1024;
  options.max_levels = 3;

  auto primary_or = PrimaryRegion::Create(primary_device.get(), options,
                                          ReplicationMode::kSendIndex);
  auto primary = std::move(*primary_or);
  auto buffer = fabric.RegisterBuffer("backup0", "primary0", 64 * 1024);
  auto backup_or = SendIndexBackupRegion::Create(backup_device.get(), options, buffer);
  auto backup = std::move(*backup_or);
  primary->AddBackup(std::make_unique<LocalBackupChannel>(&fabric, "primary0", buffer,
                                                          backup.get(), nullptr));

  printf("step 1: 5000 puts — every record RDMA-written into the backup's buffer,\n");
  printf("        every full tail segment flushed and added to the backup log map\n");
  for (int i = 0; i < 5000; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "user%010d", i);
    (void)primary->Put(key, "value-" + std::to_string(i));
  }
  printf("        log map now has %zu <primary seg, backup seg> entries (%zu bytes)\n",
         backup->log_map().size(), backup->log_map().MemoryBytes());

  printf("\nstep 2: force the L0 compaction — the primary merges, builds L1 bottom-up\n");
  printf("        and ships each sealed index segment; the backup rewrites offsets\n");
  (void)primary->FlushL0();
  const ReplicationStats& replication = primary->replication_stats();
  const SendIndexBackupStats& rewriting = backup->stats();
  printf("        shipped %llu segments (%.1f KB); backup rewrote %llu offsets\n",
         (unsigned long long)replication.index_segments_shipped,
         static_cast<double>(replication.index_bytes_shipped) / 1024.0,
         (unsigned long long)rewriting.offsets_rewritten);

  printf("\nstep 3: the backup never compacted, yet serves the data from its device:\n");
  for (int i : {0, 2499, 4999}) {
    char key[32];
    snprintf(key, sizeof(key), "user%010d", i);
    auto value = backup->DebugGet(key);
    printf("        backup get %s -> %s\n", key, value.ok() ? value->c_str() : "MISS");
  }
  printf("        backup compaction reads: %llu bytes (Build-Index would pay these)\n",
         (unsigned long long)backup_device->stats().ReadBytes(IoClass::kCompactionRead));
  printf("        backup L0 memory: %llu bytes (the paper's 2x saving)\n",
         (unsigned long long)backup->l0_memory_bytes());

  printf("\nstep 4: the primary \"dies\"; promote the backup (replays the log tail\n");
  printf("        to rebuild L0, adopts the rewritten levels as-is)\n");
  auto promoted = backup->Promote();
  if (!promoted.ok()) {
    fprintf(stderr, "promotion failed: %s\n", promoted.status().ToString().c_str());
    return 1;
  }
  auto value = (*promoted)->Get("user0000004999");
  printf("        new primary get user0000004999 -> %s\n",
         value.ok() ? value->c_str() : "MISS");
  (void)(*promoted)->Put("user0000005000", "written-after-promotion");
  printf("        new primary accepts writes: %s\n",
         (*promoted)->Get("user0000005000")->c_str());

  printf("\nnetwork cost of all this: %.1f KB over the fabric (the Send-Index trade)\n",
         static_cast<double>(fabric.TotalBytes()) / 1024.0);
  printf("\ndone.\n");
  return 0;
}
